"""Tests for the offline GIS and user-clustering stages."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_gis, cluster_users
from repro.similarity import item_pcc


class TestBuildGis:
    def test_sim_matches_kernel(self, ml_small):
        gis = build_gis(ml_small)
        assert np.allclose(gis.sim, item_pcc(ml_small.values, ml_small.mask))

    def test_neighbours_sorted_descending(self, ml_small):
        gis = build_gis(ml_small)
        for item in (0, 7, 42):
            sims = gis.sim[item, gis.neighbours[item]]
            assert (np.diff(sims) <= 1e-12).all()

    def test_neighbours_exclude_self(self, ml_small):
        gis = build_gis(ml_small)
        for item in range(ml_small.n_items):
            assert item not in gis.neighbours[item]

    def test_top_m_positive_only(self, ml_small):
        gis = build_gis(ml_small)
        idx, sims = gis.top_m(3, 50)
        assert (sims > 0).all()
        assert len(idx) == len(sims) <= 50

    def test_top_m_bounds(self, ml_small):
        gis = build_gis(ml_small)
        with pytest.raises(ValueError):
            gis.top_m(-1, 5)
        with pytest.raises(ValueError):
            gis.top_m(0, 0)

    def test_threshold_reduces_density(self, ml_small):
        loose = build_gis(ml_small, threshold=0.0)
        tight = build_gis(ml_small, threshold=0.3)
        assert tight.sparsity() > loose.sparsity()
        # surviving entries unchanged
        surviving = tight.sim != 0.0
        assert np.allclose(tight.sim[surviving], loose.sim[surviving])

    def test_memory_accounting_positive(self, ml_small):
        assert build_gis(ml_small).memory_bytes() > 0


class TestClusterUsers:
    def test_every_user_assigned(self, ml_small):
        res = cluster_users(ml_small, 8, seed=0)
        assert res.labels.shape == (ml_small.n_users,)
        assert res.labels.min() >= 0 and res.labels.max() < 8

    def test_no_empty_clusters(self, ml_small):
        res = cluster_users(ml_small, 8, seed=0)
        assert (res.sizes() > 0).all()

    def test_centroids_dense_and_in_scale(self, ml_small):
        res = cluster_users(ml_small, 8, seed=0)
        assert res.centroids.shape == (8, ml_small.n_items)
        assert np.isfinite(res.centroids).all()
        lo, hi = ml_small.rating_scale
        assert res.centroids.min() >= lo and res.centroids.max() <= hi

    def test_deterministic_by_seed(self, ml_small):
        a = cluster_users(ml_small, 8, seed=4)
        b = cluster_users(ml_small, 8, seed=4)
        assert np.array_equal(a.labels, b.labels)

    def test_more_clusters_than_users_clamps(self, tiny_rm):
        res = cluster_users(tiny_rm, 10, seed=0)
        assert res.n_clusters == tiny_rm.n_users

    def test_members_partition_users(self, ml_small):
        res = cluster_users(ml_small, 8, seed=0)
        all_members = np.concatenate([res.members(c) for c in range(8)])
        assert sorted(all_members.tolist()) == list(range(ml_small.n_users))

    def test_members_bounds(self, ml_small):
        res = cluster_users(ml_small, 8, seed=0)
        with pytest.raises(ValueError):
            res.members(8)

    def test_objective_better_than_random_assignment(self, ml_small):
        res = cluster_users(ml_small, 8, seed=0, max_iter=20)
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 8, size=ml_small.n_users)
        random_obj = res.similarities[np.arange(ml_small.n_users), random_labels].mean()
        assert res.objective() > random_obj

    def test_converges_on_easy_data(self, ml_small):
        res = cluster_users(ml_small, 4, seed=0, max_iter=50)
        assert res.converged

    def test_recovers_planted_groups_better_than_chance(self):
        """On generated data, K-means at the planted granularity should
        produce clusters substantially purer than random assignment."""
        from repro.data import SyntheticConfig, make_movielens_like

        cfg = SyntheticConfig(
            n_users=90, n_items=120, mean_ratings_per_user=35,
            min_ratings_per_user=20, n_user_groups=4, user_group_noise=0.3,
        )
        ds = make_movielens_like(cfg, seed=2)
        res = cluster_users(ds.ratings, 4, seed=0)

        def purity(labels, truth):
            total = 0
            for c in np.unique(labels):
                members = truth[labels == c]
                total += np.bincount(members).max()
            return total / len(truth)

        p = purity(res.labels, ds.user_group)
        rng = np.random.default_rng(1)
        p_rand = purity(rng.integers(0, 4, size=90), ds.user_group)
        assert p > p_rand + 0.15
