"""Tests for the crossval/tune CLI commands (reduced workloads)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.data import clear_dataset_cache


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


class TestCrossvalCommand:
    @pytest.mark.slow
    def test_crossval_runs(self, capsys):
        code = main(["crossval", "--folds", "2", "--given-n", "10",
                     "--methods", "CFSF"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cross-validation" in out and "MAE mean" in out

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["crossval", "--methods", "Oracle"])


class TestTuneCommand:
    @pytest.mark.slow
    def test_tune_runs(self, capsys):
        code = main([
            "tune", "--train-size", "100", "--given-n", "10",
            "--lam", "0.4", "0.8", "--delta", "0.1", "--epsilon", "0.35",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Best of 2 trials" in out and "validation MAE" in out


class TestServeCommand:
    @pytest.mark.slow
    @pytest.mark.faults
    def test_serve_degrades_on_stage_failure(self, capsys):
        code = main([
            "serve", "--train-size", "100", "--given-n", "10",
            "--requests", "400", "--inject", "stage-failure",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Requests served per fallback stage" in out
        assert "item_knn" in out
        assert "CFSF=open" in out
        assert "MAE over served batch" in out

    @pytest.mark.slow
    @pytest.mark.faults
    def test_serve_corrupt_snapshot_keeps_model(self, capsys, tmp_path):
        code = main([
            "serve", "--train-size", "100", "--given-n", "10",
            "--requests", "40", "--inject", "corrupt-snapshot",
            "--snapshot", str(tmp_path / "model.npz"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "kept last-known-good model" in out
        assert "SnapshotCorruptError" in out

    @pytest.mark.slow
    def test_serve_healthy_with_deadline(self, capsys):
        code = main([
            "serve", "--train-size", "100", "--given-n", "10",
            "--requests", "60", "--deadline-ms", "60000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded: 0.0%" in out
        assert "deadline deferred: 0" in out
