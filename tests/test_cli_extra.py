"""Tests for the crossval/tune CLI commands (reduced workloads)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.data import clear_dataset_cache


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


class TestCrossvalCommand:
    @pytest.mark.slow
    def test_crossval_runs(self, capsys):
        code = main(["crossval", "--folds", "2", "--given-n", "10",
                     "--methods", "CFSF"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cross-validation" in out and "MAE mean" in out

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["crossval", "--methods", "Oracle"])


class TestTuneCommand:
    @pytest.mark.slow
    def test_tune_runs(self, capsys):
        code = main([
            "tune", "--train-size", "100", "--given-n", "10",
            "--lam", "0.4", "0.8", "--delta", "0.1", "--epsilon", "0.35",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Best of 2 trials" in out and "validation MAE" in out
