"""Tests for the crossval/tune/metrics CLI commands (reduced workloads)."""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import main
from repro.data import clear_dataset_cache


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


class TestCrossvalCommand:
    @pytest.mark.slow
    def test_crossval_runs(self, capsys):
        code = main(["crossval", "--folds", "2", "--given-n", "10",
                     "--methods", "CFSF"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cross-validation" in out and "MAE mean" in out

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            main(["crossval", "--methods", "Oracle"])


class TestTuneCommand:
    @pytest.mark.slow
    def test_tune_runs(self, capsys):
        code = main([
            "tune", "--train-size", "100", "--given-n", "10",
            "--lam", "0.4", "0.8", "--delta", "0.1", "--epsilon", "0.35",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Best of 2 trials" in out and "validation MAE" in out


@pytest.mark.obs
class TestMetricsCommand:
    ARGS = ["metrics", "--train-size", "80", "--given-n", "8",
            "--requests", "60", "--batches", "3"]

    def test_prometheus_exposition_is_parseable(self, capsys):
        code = main([*self.ARGS, "--format", "prometheus"])
        assert code == 0
        out = capsys.readouterr().out
        sample_re = re.compile(
            r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?\d+(\.\d+)?(e-?\d+)?|[+-]Inf|NaN)$'
        )
        seen_meta: set[str] = set()
        families: set[str] = set()
        for line in out.rstrip("\n").splitlines():
            if line.startswith("#"):
                # HELP/TYPE appear exactly once per family.
                kind, fam = line.split()[1:3]
                assert (kind, fam) not in seen_meta, line
                seen_meta.add((kind, fam))
                families.add(fam)
            else:
                assert sample_re.match(line), f"unparseable sample line: {line!r}"
        assert "serving_requests_total" in families
        assert "serving_request_latency" in families
        # Counters are non-negative (monotone from zero).
        for match in re.finditer(r"^(\w+_total)(?:\{[^}]*\})? (\S+)$", out, re.M):
            assert float(match.group(2)) >= 0, match.group(0)
        # Bucket series are cumulative and end at le="+Inf" == _count.
        buckets = re.findall(
            r'^serving_request_latency_bucket\{le="([^"]+)"\} (\d+)$', out, re.M
        )
        counts = [int(c) for _, c in buckets]
        assert buckets[-1][0] == "+Inf"
        assert counts == sorted(counts)
        assert f"serving_request_latency_count {counts[-1]}" in out

    def test_json_snapshot_has_serving_and_span_data(self, capsys):
        code = main(self.ARGS)
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        counters = {c["name"]: c["value"] for c in doc["counters"]}
        assert counters["serving.requests"] == 60
        (latency,) = [
            h for h in doc["histograms"] if h["name"] == "serving.request.latency"
        ]
        assert latency["count"] == 3
        span_names = {s["name"] for s in doc["spans"]}
        assert {"model.fit", "gis.build", "cluster.fit", "smooth.apply"} <= span_names


class TestServeCommand:
    @pytest.mark.slow
    @pytest.mark.faults
    def test_serve_degrades_on_stage_failure(self, capsys):
        code = main([
            "serve", "--train-size", "100", "--given-n", "10",
            "--requests", "400", "--inject", "stage-failure",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Requests served per fallback stage" in out
        assert "item_knn" in out
        assert "CFSF=open" in out
        assert "MAE over served batch" in out

    @pytest.mark.slow
    @pytest.mark.faults
    def test_serve_corrupt_snapshot_keeps_model(self, capsys, tmp_path):
        code = main([
            "serve", "--train-size", "100", "--given-n", "10",
            "--requests", "40", "--inject", "corrupt-snapshot",
            "--snapshot", str(tmp_path / "model.npz"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "kept last-known-good model" in out
        assert "SnapshotCorruptError" in out

    @pytest.mark.slow
    def test_serve_healthy_with_deadline(self, capsys):
        code = main([
            "serve", "--train-size", "100", "--given-n", "10",
            "--requests", "60", "--deadline-ms", "60000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded: 0.0%" in out
        assert "deadline deferred: 0" in out
