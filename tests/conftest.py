"""Shared fixtures for the test suite.

The expensive fixtures (generated datasets, fitted models) are
session-scoped: they are deterministic, read-only, and reused by many
test modules — regeneration per test would dominate suite runtime.

Also home to the per-test timeout shim: ``pyproject.toml`` sets a
global ``timeout`` so hung degraded paths fail fast.  When
``pytest-timeout`` is installed it enforces the limit; otherwise the
SIGALRM fallback below does (the container must not pip-install, so
the dependency is optional by design).
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

try:
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ModuleNotFoundError:
    _HAVE_PYTEST_TIMEOUT = False


if not _HAVE_PYTEST_TIMEOUT:

    def pytest_addoption(parser: pytest.Parser) -> None:
        # Registers the ini key pytest-timeout would own, so the
        # pyproject setting neither warns nor requires the plugin.
        parser.addini(
            "timeout",
            "per-test timeout in seconds (SIGALRM fallback shim; "
            "0 disables)",
            default="0",
        )

    def _resolve_timeout(item: pytest.Item) -> float:
        marker = item.get_closest_marker("timeout")
        if marker is not None and marker.args:
            return float(marker.args[0])
        try:
            return float(item.config.getini("timeout") or 0.0)
        except ValueError:
            return 0.0

    @pytest.hookimpl(wrapper=True)
    def pytest_runtest_call(item: pytest.Item):
        timeout = _resolve_timeout(item)
        if (
            timeout <= 0
            or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()
        ):
            return (yield)

        def _alarm(signum, frame):
            raise TimeoutError(
                f"test exceeded {timeout:.0f}s (conftest fallback timeout)"
            )

        previous = signal.signal(signal.SIGALRM, _alarm)
        signal.alarm(max(1, int(timeout)))
        try:
            return (yield)
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)

from repro.core import CFSF
from repro.data import (
    GivenNSplit,
    RatingMatrix,
    SyntheticConfig,
    make_movielens_like,
    make_split,
)

#: A small-but-structured generator config used across the suite:
#: large enough for clustering/smoothing to be meaningful, small enough
#: that a fit takes ~10ms.
SMALL_CONFIG = SyntheticConfig(
    n_users=120,
    n_items=150,
    n_genres=8,
    mean_ratings_per_user=30.0,
    min_ratings_per_user=12,
)


@pytest.fixture(scope="session")
def ml_small() -> RatingMatrix:
    """A 120x150 MovieLens-shaped matrix (session-scoped, read-only)."""
    return make_movielens_like(SMALL_CONFIG, seed=7).ratings


@pytest.fixture(scope="session")
def split_small(ml_small: RatingMatrix) -> GivenNSplit:
    """An 80-train / 30-test / Given8 split over ``ml_small``."""
    return make_split(ml_small, n_train_users=80, given_n=8, n_test_users=30, seed=3)


@pytest.fixture(scope="session")
def cfsf_small(split_small: GivenNSplit) -> CFSF:
    """A CFSF fitted on the small split (do not mutate: session scope).

    Uses a reduced geometry (C=8, M=30, K=10) appropriate for the
    small matrix.
    """
    model = CFSF(n_clusters=8, top_m_items=30, top_k_users=10)
    model.fit(split_small.train)
    return model


@pytest.fixture()
def tiny_rm() -> RatingMatrix:
    """A hand-written 4-user x 5-item matrix with known structure.

    Users 0/1 agree (parallel profiles), user 2 anti-agrees, user 3 is
    sparse.  0 encodes "unrated".
    """
    values = np.array(
        [
            [5.0, 4.0, 0.0, 2.0, 1.0],
            [4.0, 5.0, 0.0, 1.0, 2.0],
            [1.0, 2.0, 5.0, 4.0, 5.0],
            [0.0, 0.0, 3.0, 0.0, 0.0],
        ]
    )
    return RatingMatrix(values)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh seeded generator per test."""
    return np.random.default_rng(12345)
