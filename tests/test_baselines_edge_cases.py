"""Edge-case and failure-mode tests shared across all baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    EMDP,
    SCBPCC,
    AspectModel,
    ItemBasedCF,
    MatrixFactorization,
    MeanPredictor,
    NotFittedError,
    PersonalityDiagnosis,
    SimilarityFusion,
    SlopeOne,
    UserBasedCF,
)
from repro.data import RatingMatrix

ALL_FACTORIES = [
    lambda: ItemBasedCF(),
    lambda: UserBasedCF(),
    lambda: SimilarityFusion(top_k_users=5, top_m_items=5),
    lambda: SCBPCC(n_clusters=3, top_k=3),
    lambda: EMDP(),
    lambda: AspectModel(n_aspects=3, n_iter=5),
    lambda: PersonalityDiagnosis(),
    lambda: MeanPredictor("user_item"),
    lambda: SlopeOne(),
    lambda: MatrixFactorization(n_factors=3, n_epochs=5),
]

IDS = ["SIR", "SUR", "SF", "SCBPCC", "EMDP", "AM", "PD", "Mean", "SlopeOne", "MF"]


@pytest.fixture(scope="module")
def tiny_train():
    rng = np.random.default_rng(11)
    values = np.where(rng.random((12, 15)) < 0.45, rng.integers(1, 6, (12, 15)), 0)
    return RatingMatrix(values.astype(float))


@pytest.fixture(scope="module")
def tiny_given(tiny_train):
    rng = np.random.default_rng(13)
    values = np.where(rng.random((4, 15)) < 0.3, rng.integers(1, 6, (4, 15)), 0)
    # guarantee at least 2 ratings per active user
    values[:, 0] = rng.integers(1, 6, 4)
    values[:, 1] = rng.integers(1, 6, 4)
    return RatingMatrix(values.astype(float))


class TestUniformContracts:
    @pytest.mark.parametrize("factory", ALL_FACTORIES, ids=IDS)
    def test_unfitted_raises(self, factory, tiny_given):
        with pytest.raises(NotFittedError):
            factory().predict_many(tiny_given, [0], [0])

    @pytest.mark.parametrize("factory", ALL_FACTORIES, ids=IDS)
    def test_finite_in_scale_on_tiny_data(self, factory, tiny_train, tiny_given):
        model = factory().fit(tiny_train)
        users = np.repeat(np.arange(4), 15)
        items = np.tile(np.arange(15), 4)
        preds = model.predict_many(tiny_given, users, items)
        assert np.isfinite(preds).all()
        lo, hi = tiny_train.rating_scale
        assert preds.min() >= lo and preds.max() <= hi

    @pytest.mark.parametrize("factory", ALL_FACTORIES, ids=IDS)
    def test_empty_active_profile_served(self, factory, tiny_train):
        model = factory().fit(tiny_train)
        empty = RatingMatrix(
            np.zeros((1, tiny_train.n_items)),
            np.zeros((1, tiny_train.n_items), dtype=bool),
        )
        pred = model.predict(empty, 0, 3)
        assert np.isfinite(pred)

    @pytest.mark.parametrize("factory", ALL_FACTORIES, ids=IDS)
    def test_item_space_mismatch_rejected(self, factory, tiny_train, tiny_given):
        model = factory().fit(tiny_train)
        with pytest.raises(ValueError):
            model.predict_many(tiny_given.subset_items(range(5)), [0], [0])

    @pytest.mark.parametrize("factory", ALL_FACTORIES, ids=IDS)
    def test_empty_request(self, factory, tiny_train, tiny_given):
        model = factory().fit(tiny_train)
        out = model.predict_many(
            tiny_given, np.array([], dtype=int), np.array([], dtype=int)
        )
        assert out.shape == (0,)

    @pytest.mark.parametrize("factory", ALL_FACTORIES, ids=IDS)
    def test_refit_on_new_data(self, factory, tiny_train, tiny_given):
        """Refitting on different data must fully replace state."""
        model = factory()
        model.fit(tiny_train)
        p1 = model.predict(tiny_given, 0, 2)
        other = tiny_train.subset_users(range(8))
        model.fit(other)
        p2 = model.predict(tiny_given, 0, 2)
        assert np.isfinite(p1) and np.isfinite(p2)
