"""Tests for the parallel substrate: partitioning, shared memory, the
process-pool executors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CFSF
from repro.parallel import (
    ParallelPredictor,
    SharedArray,
    attach,
    block_partition,
    cyclic_partition,
    greedy_partition,
    parallel_item_pcc,
    recommended_workers,
)
from repro.serving.errors import WorkerCrashError
from repro.serving.faults import KillWorkerAlways, KillWorkerOnce, SleepInWorker
from repro.similarity import item_pcc


class TestBlockPartition:
    def test_covers_range_disjointly(self):
        parts = block_partition(10, 3)
        merged = np.concatenate(parts)
        assert sorted(merged.tolist()) == list(range(10))
        assert [len(p) for p in parts] == [4, 3, 3]

    def test_more_parts_than_items(self):
        parts = block_partition(2, 5)
        assert sum(len(p) for p in parts) == 2
        assert len(parts) == 5

    def test_zero_items(self):
        assert all(len(p) == 0 for p in block_partition(0, 3))

    def test_invalid(self):
        with pytest.raises(ValueError):
            block_partition(5, 0)
        with pytest.raises(ValueError):
            block_partition(-1, 2)


class TestCyclicPartition:
    def test_round_robin(self):
        parts = cyclic_partition(7, 3)
        assert parts[0].tolist() == [0, 3, 6]
        assert parts[1].tolist() == [1, 4]
        assert parts[2].tolist() == [2, 5]

    def test_covers_all(self):
        merged = np.concatenate(cyclic_partition(11, 4))
        assert sorted(merged.tolist()) == list(range(11))


class TestGreedyPartition:
    def test_covers_all_indices(self):
        costs = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        parts = greedy_partition(costs, 2)
        merged = np.concatenate(parts)
        assert sorted(merged.tolist()) == list(range(5))

    def test_balances_load(self):
        rng = np.random.default_rng(0)
        costs = rng.uniform(1, 10, 40)
        parts = greedy_partition(costs, 4)
        loads = [costs[p].sum() for p in parts]
        assert max(loads) / min(loads) < 1.3

    def test_lpt_beats_block_on_skewed_costs(self):
        costs = np.array([100.0] + [1.0] * 30)
        lpt = greedy_partition(costs, 4)
        blk = block_partition(31, 4)
        lpt_makespan = max(costs[p].sum() for p in lpt)
        blk_makespan = max(costs[p].sum() for p in blk)
        assert lpt_makespan <= blk_makespan

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            greedy_partition(np.array([-1.0]), 2)


class TestSharedArray:
    def test_roundtrip(self):
        src = np.arange(12.0).reshape(3, 4)
        with SharedArray.from_array(src) as sa:
            view, handle = attach(sa.spec)
            assert np.array_equal(view, src)
            handle.close()

    def test_zeros_alloc(self):
        with SharedArray.zeros((2, 3)) as sa:
            assert sa.array.shape == (2, 3)
            assert (sa.array == 0).all()

    def test_writes_visible_across_attach(self):
        with SharedArray.zeros((4,)) as sa:
            view, handle = attach(sa.spec)
            view[2] = 7.0
            assert sa.array[2] == 7.0
            handle.close()

    def test_close_idempotent(self):
        sa = SharedArray.from_array(np.ones(3))
        sa.close()
        sa.close()  # no raise

    def test_spec_nbytes(self):
        sa = SharedArray.from_array(np.ones((2, 5)))
        try:
            assert sa.spec.nbytes == 80
        finally:
            sa.close()

    def test_dtype_preserved(self):
        src = np.array([1, 2, 3], dtype=np.int32)
        with SharedArray.from_array(src) as sa:
            view, handle = attach(sa.spec)
            assert view.dtype == np.int32
            handle.close()


class TestParallelItemPcc:
    def test_matches_serial(self, ml_small):
        """Tile-blocked BLAS products are not bit-identical to the
        one-shot product (different summation order), so equality is
        asserted at float-rounding tolerance."""
        serial = item_pcc(ml_small.values, ml_small.mask)
        parallel = parallel_item_pcc(ml_small, n_workers=2)
        assert np.allclose(serial, parallel, atol=1e-12)

    def test_single_worker_path(self, ml_small):
        out = parallel_item_pcc(ml_small, n_workers=1)
        assert np.allclose(out, item_pcc(ml_small.values, ml_small.mask))

    def test_rejects_other_centering(self, ml_small):
        with pytest.raises(ValueError):
            parallel_item_pcc(ml_small, n_workers=2, centering="corated_mean")


class TestParallelPredictor:
    def test_matches_serial(self, cfsf_small, split_small):
        users, items, _ = split_small.targets_arrays()
        users, items = users[:120], items[:120]
        serial = cfsf_small.predict_many(split_small.given, users, items)
        with ParallelPredictor(cfsf_small, n_workers=2) as pp:
            par = pp.predict_many(split_small.given, users, items)
        assert np.allclose(serial, par)

    def test_single_worker_shortcut(self, cfsf_small, split_small):
        users, items, _ = split_small.targets_arrays()
        with ParallelPredictor(cfsf_small, n_workers=1) as pp:
            out = pp.predict_many(split_small.given, users[:10], items[:10])
        assert len(out) == 10

    def test_empty_request(self, cfsf_small, split_small):
        with ParallelPredictor(cfsf_small, n_workers=2) as pp:
            out = pp.predict_many(
                split_small.given, np.array([], dtype=int), np.array([], dtype=int)
            )
        assert out.shape == (0,)

    def test_pool_reuse_across_calls(self, cfsf_small, split_small):
        users, items, _ = split_small.targets_arrays()
        with ParallelPredictor(cfsf_small, n_workers=2) as pp:
            pp.predict_many(split_small.given, users[:20], items[:20])
            pool_first = pp._pool
            pp.predict_many(split_small.given, users[20:40], items[20:40])
            assert pp._pool is pool_first

    def test_shape_validation(self, cfsf_small, split_small):
        with ParallelPredictor(cfsf_small, n_workers=2) as pp:
            with pytest.raises(ValueError):
                pp.predict_many(split_small.given, np.array([0, 1]), np.array([0]))

    def test_invalid_start_method(self, cfsf_small):
        with pytest.raises(ValueError):
            ParallelPredictor(cfsf_small, start_method="thread")


@pytest.mark.faults
class TestWorkerCrashRecovery:
    """The executor's contract: a killed worker never loses a batch."""

    def test_killed_worker_batch_still_completes(
        self, cfsf_small, split_small, tmp_path
    ):
        users, items, _ = split_small.targets_arrays()
        users, items = users[:120], items[:120]
        serial = cfsf_small.predict_many(split_small.given, users, items)
        hook = KillWorkerOnce(str(tmp_path / "kill.flag")).arm()
        assert hook.armed
        with ParallelPredictor(cfsf_small, n_workers=2, worker_hook=hook) as pp:
            out = pp.predict_many(split_small.given, users, items)
            assert pp.crash_recoveries >= 1
            assert pp.inline_fallbacks == 0
        # The flag was consumed: exactly one worker died, the respawned
        # pool finished the batch, and the results are bit-identical.
        assert not hook.armed
        assert np.allclose(out, serial)

    def test_persistent_crashes_degrade_to_inline(self, cfsf_small, split_small):
        users, items, _ = split_small.targets_arrays()
        users, items = users[:60], items[:60]
        serial = cfsf_small.predict_many(split_small.given, users, items)
        with ParallelPredictor(
            cfsf_small,
            n_workers=2,
            max_pool_retries=1,
            worker_hook=KillWorkerAlways(),
        ) as pp:
            out = pp.predict_many(split_small.given, users, items)
            assert pp.crash_recoveries == 2  # initial pool + one respawn
            assert pp.inline_fallbacks == 1
        assert np.allclose(out, serial)

    def test_inline_fallback_disabled_raises_typed_error(
        self, cfsf_small, split_small
    ):
        users, items, _ = split_small.targets_arrays()
        with ParallelPredictor(
            cfsf_small,
            n_workers=2,
            max_pool_retries=0,
            inline_fallback=False,
            worker_hook=KillWorkerAlways(),
        ) as pp:
            with pytest.raises(WorkerCrashError) as excinfo:
                pp.predict_many(split_small.given, users[:40], items[:40])
        assert isinstance(excinfo.value, RuntimeError)

    def test_slow_workers_still_complete(self, cfsf_small, split_small):
        users, items, _ = split_small.targets_arrays()
        users, items = users[:40], items[:40]
        with ParallelPredictor(
            cfsf_small, n_workers=2, worker_hook=SleepInWorker(0.05)
        ) as pp:
            out = pp.predict_many(split_small.given, users, items)
        assert np.allclose(
            out, cfsf_small.predict_many(split_small.given, users, items)
        )

    def test_stats_counters(self, cfsf_small, split_small):
        users, items, _ = split_small.targets_arrays()
        with ParallelPredictor(cfsf_small, n_workers=2) as pp:
            pp.predict_many(split_small.given, users[:20], items[:20])
            stats = pp.stats()
            assert stats == {
                "crash_recoveries": 0,
                "inline_fallbacks": 0,
                "pool_alive": 1,
            }
        assert pp.stats()["pool_alive"] == 0

    def test_negative_retries_rejected(self, cfsf_small):
        with pytest.raises(ValueError):
            ParallelPredictor(cfsf_small, max_pool_retries=-1)


class TestRecommendedWorkers:
    def test_at_least_one(self):
        assert recommended_workers() >= 1

    def test_cap(self):
        assert recommended_workers(max_workers=1) == 1
