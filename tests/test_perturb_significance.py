"""Tests for failure injection (repro.data.perturb) and statistical
comparison (repro.eval.significance), including robustness checks of
the recommenders under injected failures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MeanPredictor, UserBasedCF
from repro.core import CFSF
from repro.data import (
    add_cold_items,
    add_cold_users,
    add_noise_ratings,
    drop_ratings,
    shill_items,
)
from repro.eval import bootstrap_mae_ci, mae, paired_comparison


class TestDropRatings:
    def test_fraction_removed(self, ml_small):
        out = drop_ratings(ml_small, 0.5, seed=0)
        assert out.n_ratings < ml_small.n_ratings * 0.6
        assert out.n_ratings > 0

    def test_keeps_min_per_user(self, ml_small):
        out = drop_ratings(ml_small, 0.99, seed=0, keep_min_per_user=2)
        assert out.user_counts().min() >= 2

    def test_survivors_unchanged(self, ml_small):
        out = drop_ratings(ml_small, 0.3, seed=0)
        kept = out.mask
        assert np.allclose(out.values[kept], ml_small.values[kept])

    def test_zero_fraction_identity(self, ml_small):
        out = drop_ratings(ml_small, 0.0, seed=0)
        assert out == ml_small


class TestNoiseRatings:
    def test_mask_unchanged_values_bounded(self, ml_small):
        out, corrupted = add_noise_ratings(ml_small, 0.2, seed=0)
        assert np.array_equal(out.mask, ml_small.mask)
        lo, hi = ml_small.rating_scale
        obs = out.values[out.mask]
        assert obs.min() >= lo and obs.max() <= hi

    def test_corruption_count(self, ml_small):
        _, corrupted = add_noise_ratings(ml_small, 0.25, seed=0)
        expected = round(ml_small.n_ratings * 0.25)
        assert corrupted.sum() == expected

    def test_uncorrupted_preserved(self, ml_small):
        out, corrupted = add_noise_ratings(ml_small, 0.25, seed=0)
        untouched = ml_small.mask & ~corrupted
        assert np.allclose(out.values[untouched], ml_small.values[untouched])


class TestColdEntities:
    def test_cold_items_shape(self, ml_small):
        out = add_cold_items(ml_small, 7)
        assert out.n_items == ml_small.n_items + 7
        assert out.item_counts()[-7:].sum() == 0

    def test_cold_users_shape(self, ml_small):
        out = add_cold_users(ml_small, 4)
        assert out.n_users == ml_small.n_users + 4
        assert out.user_counts()[-4:].sum() == 0


class TestShilling:
    def test_shill_rows_appended(self, ml_small):
        out = shill_items(ml_small, target_item=3, n_shills=10, seed=0)
        assert out.n_users == ml_small.n_users + 10
        assert (out.values[-10:, 3] == ml_small.rating_scale[1]).all()

    def test_camouflage_present(self, ml_small):
        out = shill_items(ml_small, target_item=3, n_shills=5, camouflage_items=8, seed=0)
        # each shill rates the target plus up to 8 popular items
        counts = out.user_counts()[-5:]
        assert (counts > 1).all() and (counts <= 9).all()

    def test_invalid_target(self, ml_small):
        with pytest.raises(ValueError):
            shill_items(ml_small, target_item=10_000, n_shills=3)


class TestRobustnessUnderFailures:
    """Every model must stay finite/in-scale under each corruption and
    degrade gracefully (not collapse to worse-than-global-mean)."""

    @pytest.mark.parametrize("factory", [
        lambda: CFSF(n_clusters=8, top_m_items=30, top_k_users=10),
        lambda: UserBasedCF(),
        lambda: MeanPredictor("user_item"),
    ])
    def test_sparsified_training(self, split_small, factory):
        sparse_train = drop_ratings(split_small.train, 0.5, seed=1)
        users, items, truth = split_small.targets_arrays()
        model = factory().fit(sparse_train)
        preds = model.predict_many(split_small.given, users, items)
        lo, hi = split_small.train.rating_scale
        assert np.isfinite(preds).all()
        assert preds.min() >= lo and preds.max() <= hi
        # graceful: at most modest degradation vs the global mean floor
        m_gm = mae(truth, np.full(truth.shape, sparse_train.global_mean()))
        assert mae(truth, preds) < m_gm + 0.05

    def test_cold_item_queries(self, split_small):
        """Queries against never-rated items must not crash or NaN."""
        train = add_cold_items(split_small.train, 3)
        from repro.data import RatingMatrix

        given = RatingMatrix(
            np.hstack([split_small.given.values, np.zeros((split_small.given.n_users, 3))]),
            np.hstack([split_small.given.mask,
                       np.zeros((split_small.given.n_users, 3), dtype=bool)]),
        )
        model = CFSF(n_clusters=8, top_m_items=30, top_k_users=10).fit(train)
        cold = np.arange(train.n_items - 3, train.n_items)
        preds = model.predict_many(given, np.zeros(3, dtype=int), cold)
        assert np.isfinite(preds).all()

    def test_noise_degrades_but_not_catastrophically(self, split_small):
        users, items, truth = split_small.targets_arrays()
        clean = CFSF(n_clusters=8, top_m_items=30, top_k_users=10).fit(split_small.train)
        m_clean = mae(truth, clean.predict_many(split_small.given, users, items))
        noisy_train, _ = add_noise_ratings(split_small.train, 0.3, seed=2)
        noisy = CFSF(n_clusters=8, top_m_items=30, top_k_users=10).fit(noisy_train)
        m_noisy = mae(truth, noisy.predict_many(split_small.given, users, items))
        assert m_noisy > m_clean          # noise hurts...
        assert m_noisy < m_clean + 0.25   # ...but does not explode


class TestPairedComparison:
    def test_detects_clear_winner(self, rng):
        truth = rng.uniform(1, 5, 400)
        good = truth + rng.normal(0, 0.3, 400)
        bad = truth + rng.normal(0, 1.0, 400)
        res = paired_comparison(truth, good, bad)
        assert res.a_wins
        assert res.significant()
        assert res.n_a_better > res.n_b_better

    def test_identical_predictions_not_significant(self, rng):
        truth = rng.uniform(1, 5, 100)
        preds = truth + rng.normal(0, 0.5, 100)
        res = paired_comparison(truth, preds, preds.copy())
        assert res.mean_diff == 0.0
        assert not res.significant()
        assert res.n_ties == 100

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            paired_comparison(np.zeros(3), np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            paired_comparison(np.zeros(1), np.zeros(1), np.zeros(1))


class TestBootstrapCI:
    def test_interval_contains_point(self, rng):
        truth = rng.uniform(1, 5, 300)
        preds = truth + rng.normal(0, 0.5, 300)
        point, low, high = bootstrap_mae_ci(truth, preds, seed=0)
        assert low <= point <= high
        assert high - low < 0.2

    def test_deterministic_by_seed(self, rng):
        truth = rng.uniform(1, 5, 100)
        preds = truth + rng.normal(0, 0.5, 100)
        a = bootstrap_mae_ci(truth, preds, seed=7)
        b = bootstrap_mae_ci(truth, preds, seed=7)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mae_ci(np.array([1.0]), np.array([1.0]), confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mae_ci(np.array([]), np.array([]))
