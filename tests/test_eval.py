"""Tests for the evaluation substrate: metrics, protocol, runner, report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MeanPredictor, UserBasedCF
from repro.core import CFSF
from repro.eval import (
    EvaluationResult,
    ascii_plot,
    coverage,
    evaluate,
    evaluate_fitted,
    format_comparison,
    format_paper_table,
    format_table,
    mae,
    ndcg_at_n,
    precision_recall_at_n,
    rmse,
    run_grid,
    scalability_sweep,
    sweep_cfsf_parameter,
)


class TestMetrics:
    def test_mae_hand_case(self):
        assert mae(np.array([4.0, 2.0, 3.0]), np.array([3.0, 2.0, 5.0])) == pytest.approx(1.0)

    def test_rmse_hand_case(self):
        assert rmse(np.array([4.0, 2.0]), np.array([2.0, 2.0])) == pytest.approx(np.sqrt(2.0))

    def test_rmse_ge_mae(self, rng):
        t = rng.uniform(1, 5, 100)
        p = rng.uniform(1, 5, 100)
        assert rmse(t, p) >= mae(t, p)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mae(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            rmse(np.array([]), np.array([]))

    def test_nan_predictions_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            mae(np.array([1.0]), np.array([np.nan]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mae(np.zeros(3), np.zeros(4))

    def test_coverage(self):
        cov = coverage(np.zeros(4), np.array([True, False, False, False]))
        assert cov == pytest.approx(0.75)

    def test_precision_recall(self):
        p, r = precision_recall_at_n(np.array([1, 2, 3]), np.array([1, 9, 2, 8]), n=4)
        assert p == pytest.approx(0.5)
        assert r == pytest.approx(2 / 3)

    def test_precision_recall_empty_rec(self):
        assert precision_recall_at_n(np.array([1]), np.array([]), n=5) == (0.0, 0.0)

    def test_ndcg_perfect_ranking(self):
        assert ndcg_at_n(np.array([1, 2]), np.array([1, 2, 9]), n=3) == pytest.approx(1.0)

    def test_ndcg_worst_nonzero(self):
        v = ndcg_at_n(np.array([1]), np.array([9, 8, 1]), n=3)
        assert 0.0 < v < 1.0


class TestProtocol:
    def test_evaluate_returns_sane_result(self, split_small):
        res = evaluate(MeanPredictor("item"), split_small)
        assert isinstance(res, EvaluationResult)
        assert res.n_targets == split_small.n_targets
        assert res.fit_seconds >= 0.0 and res.predict_seconds > 0.0
        assert 0.0 < res.mae < 2.0

    def test_evaluate_fitted_skips_fit_time(self, split_small):
        model = MeanPredictor("item").fit(split_small.train)
        res = evaluate_fitted(model, split_small)
        assert res.fit_seconds == 0.0

    def test_keep_predictions(self, split_small):
        res = evaluate(MeanPredictor("item"), split_small, keep_predictions=True)
        assert res.predictions is not None
        assert len(res.predictions) == res.n_targets
        assert res.light().predictions is None

    def test_throughput(self, split_small):
        res = evaluate(MeanPredictor("item"), split_small)
        assert res.throughput > 0


class TestRunner:
    def test_run_grid_covers_all_cells(self, ml_small):
        grid = run_grid(
            ml_small,
            {"Mean": lambda: MeanPredictor("item")},
            training_sizes=(40, 80),
            given_sizes=(5, 8),
            n_test_users=30,
        )
        assert len(grid.results) == 4
        maes = grid.mae_map()
        assert ("ML_40/Given5", "Mean") in maes

    def test_run_grid_progress_callback(self, ml_small):
        lines = []
        run_grid(
            ml_small,
            {"Mean": lambda: MeanPredictor("item")},
            training_sizes=(40,),
            given_sizes=(5,),
            n_test_users=30,
            progress=lines.append,
        )
        assert len(lines) == 1 and "MAE=" in lines[0]

    def test_best_method_per_split(self, ml_small):
        grid = run_grid(
            ml_small,
            {
                "Mean": lambda: MeanPredictor("global"),
                "SUR": lambda: UserBasedCF(),
            },
            training_sizes=(80,),
            given_sizes=(8,),
            n_test_users=30,
        )
        assert grid.best_method_per_split()["ML_80/Given8"] == "SUR"

    def test_sweep_online_parameter_no_refit(self, split_small):
        out = sweep_cfsf_parameter(
            split_small,
            "lam",
            [0.0, 0.5, 1.0],
            base_config=CFSF(n_clusters=8, top_m_items=30, top_k_users=10).config,
        )
        assert [v for v, _ in out] == [0.0, 0.5, 1.0]
        maes = [r.mae for _, r in out]
        assert len(set(maes)) > 1  # the parameter matters

    def test_sweep_offline_parameter_refits(self, split_small):
        out = sweep_cfsf_parameter(
            split_small,
            "n_clusters",
            [4, 8],
            base_config=CFSF(n_clusters=8, top_m_items=30, top_k_users=10).config,
        )
        assert all(r.fit_seconds > 0 for _, r in out)

    def test_scalability_sweep_shapes(self, split_small):
        out = scalability_sweep(
            split_small,
            {"Mean": lambda: MeanPredictor("item")},
            fractions=(0.5, 1.0),
        )
        assert set(out) == {"Mean"}
        assert [f for f, _ in out["Mean"]] == [0.5, 1.0]
        assert all(t > 0 for _, t in out["Mean"])


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1.23456, "x"], [2.0, "yy"]])
        lines = out.splitlines()
        assert "1.235" in out and len(lines) == 4

    def test_format_table_title(self):
        out = format_table(["a"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_format_paper_table_layout(self):
        results = {
            ("ML_80/Given5", "CFSF"): 0.7,
            ("ML_80/Given8", "CFSF"): 0.68,
            ("ML_80/Given5", "SUR"): 0.8,
            ("ML_80/Given8", "SUR"): 0.78,
        }
        out = format_paper_table(
            results,
            training_sets=("ML_80",),
            methods=("CFSF", "SUR"),
            given_labels=("Given5", "Given8"),
        )
        assert "CFSF" in out and "0.700" in out and "0.780" in out

    def test_format_paper_table_missing_is_nan(self):
        out = format_paper_table(
            {},
            training_sets=("ML_80",),
            methods=("CFSF",),
            given_labels=("Given5",),
        )
        assert "nan" in out

    def test_ascii_plot_contains_markers_and_legend(self):
        out = ascii_plot(
            [1, 2, 3],
            {"CFSF": [0.7, 0.68, 0.69], "SUR": [0.8, 0.79, 0.81]},
            title="Fig",
        )
        assert "Fig" in out and "o CFSF" in out and "x SUR" in out

    def test_ascii_plot_flat_series(self):
        out = ascii_plot([1, 2], {"s": [0.5, 0.5]})
        assert "0.500" in out

    def test_format_comparison(self):
        out = format_comparison({"a": 0.7}, {"a": 0.75})
        assert "0.050" in out and "Delta" in out
