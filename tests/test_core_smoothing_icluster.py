"""Tests for cluster smoothing (Eqs. 7-8) and the iCluster index (Eq. 9)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import cluster_deviations, cluster_users, smooth_ratings
from repro.core.icluster import build_icluster, user_cluster_affinity
from repro.data import RatingMatrix


@pytest.fixture(scope="module")
def clustered(ml_small):
    clusters = cluster_users(ml_small, 6, seed=0)
    smoothed = smooth_ratings(ml_small, clusters.labels, 6)
    return clusters, smoothed


class TestClusterDeviations:
    def test_hand_computed_case(self):
        # Two users, one cluster.  User means: u0 = 4, u1 = 2.
        rm = RatingMatrix(np.array([[5.0, 3.0, 0.0], [2.0, 0.0, 2.0]]))
        dev, counts = cluster_deviations(rm, np.array([0, 0]), 1)
        # Item 0 rated by both: ((5-4) + (2-2)) / 2 = 0.5
        assert dev[0, 0] == pytest.approx(0.5)
        # Item 1 rated by u0 only: (3-4)/1 = -1
        assert dev[0, 1] == pytest.approx(-1.0)
        # Item 2 rated by u1 only: (2-2)/1 = 0
        assert dev[0, 2] == pytest.approx(0.0)
        assert counts.tolist() == [[2.0, 1.0, 1.0]]

    def test_unrated_item_gets_zero(self):
        rm = RatingMatrix(np.array([[5.0, 0.0], [3.0, 0.0]]))
        dev, counts = cluster_deviations(rm, np.array([0, 0]), 1)
        assert dev[0, 1] == 0.0 and counts[0, 1] == 0.0

    def test_label_validation(self, tiny_rm):
        with pytest.raises(ValueError, match="labels"):
            cluster_deviations(tiny_rm, np.array([0, 0, 0]), 1)
        with pytest.raises(ValueError, match="out of range"):
            cluster_deviations(tiny_rm, np.array([0, 0, 0, 5]), 2)

    def test_shrinkage_scales_toward_zero(self, tiny_rm):
        labels = np.zeros(4, dtype=int)
        raw, counts = cluster_deviations(tiny_rm, labels, 1, shrinkage=0.0)
        shrunk, _ = cluster_deviations(tiny_rm, labels, 1, shrinkage=2.0)
        nz = raw != 0
        assert (np.abs(shrunk[nz]) < np.abs(raw[nz])).all()
        expected = raw * counts / (counts + 2.0)
        assert np.allclose(shrunk, expected)

    def test_negative_shrinkage_rejected(self, tiny_rm):
        with pytest.raises(ValueError):
            cluster_deviations(tiny_rm, np.zeros(4, dtype=int), 1, shrinkage=-1.0)


class TestSmoothRatings:
    def test_observed_entries_preserved(self, ml_small, clustered):
        _, smoothed = clustered
        assert np.allclose(
            smoothed.values[ml_small.mask], ml_small.values[ml_small.mask]
        )

    def test_dense_output_in_scale(self, ml_small, clustered):
        _, smoothed = clustered
        lo, hi = ml_small.rating_scale
        assert np.isfinite(smoothed.values).all()
        assert smoothed.values.min() >= lo and smoothed.values.max() <= hi

    def test_provenance_mask(self, ml_small, clustered):
        _, smoothed = clustered
        assert np.array_equal(smoothed.observed_mask, ml_small.mask)
        assert smoothed.smoothed_fraction() == pytest.approx(1.0 - ml_small.density)

    def test_smoothed_value_formula(self, ml_small, clustered):
        clusters, smoothed = clustered
        # pick an unrated cell and verify Eq. 7 by hand
        u = 0
        unrated = np.nonzero(~ml_small.mask[u])[0][0]
        c = clusters.labels[u]
        expected = smoothed.user_means[u] + smoothed.deviations[c, unrated]
        lo, hi = ml_small.rating_scale
        assert smoothed.values[u, unrated] == pytest.approx(np.clip(expected, lo, hi))

    def test_fully_rated_matrix_unchanged(self):
        rm = RatingMatrix(np.array([[1.0, 2.0], [3.0, 4.0]]))
        smoothed = smooth_ratings(rm, np.array([0, 0]), 1)
        assert np.allclose(smoothed.values, rm.values)
        assert smoothed.smoothed_fraction() == 0.0

    def test_weights_eq11(self, clustered):
        _, smoothed = clustered
        w = smoothed.weights(0.35)
        assert np.allclose(w[smoothed.observed_mask], 0.35)
        assert np.allclose(w[~smoothed.observed_mask], 0.65)
        with pytest.raises(ValueError):
            smoothed.weights(1.2)


class TestUserClusterAffinity:
    def test_member_prefers_own_style_cluster(self):
        """A user whose deviations exactly match a cluster's deviations
        must have affinity 1 with it."""
        dev = np.array([[1.0, -1.0, 0.5]])
        counts = np.ones((1, 3))
        user_vals = np.array([[4.0, 2.0, 3.5]])   # mean 3.1667? choose mean-consistent
        # Use explicit mean so deviations are exactly (1, -1, 0.5) around 3.
        aff = user_cluster_affinity(
            user_vals, np.ones((1, 3), dtype=bool), np.array([3.0]), dev, counts
        )
        assert aff[0, 0] == pytest.approx(1.0)

    def test_anti_style_negative(self):
        dev = np.array([[1.0, -1.0]])
        counts = np.ones((1, 2))
        aff = user_cluster_affinity(
            np.array([[2.0, 4.0]]), np.ones((1, 2), dtype=bool), np.array([3.0]),
            dev, counts,
        )
        assert aff[0, 0] == pytest.approx(-1.0)

    def test_no_common_items_zero(self):
        dev = np.array([[1.0, 0.0]])
        counts = np.array([[1.0, 0.0]])
        aff = user_cluster_affinity(
            np.array([[0.0, 4.0]]),
            np.array([[False, True]]),
            np.array([4.0]),
            dev,
            counts,
        )
        assert aff[0, 0] == 0.0


class TestIClusterIndex:
    def test_ranking_descends(self, ml_small, clustered):
        _, smoothed = clustered
        icl = build_icluster(smoothed, ml_small.mask, ml_small.values)
        for u in (0, 10, 50):
            affs = icl.affinity[u, icl.ranking[u]]
            assert (np.diff(affs) <= 1e-12).all()

    def test_members_partition(self, ml_small, clustered):
        _, smoothed = clustered
        icl = build_icluster(smoothed, ml_small.mask, ml_small.values)
        total = sum(m.size for m in icl.cluster_members)
        assert total == ml_small.n_users

    def test_candidate_walk_collects_pool(self, ml_small, clustered):
        _, smoothed = clustered
        icl = build_icluster(smoothed, ml_small.mask, ml_small.values)
        cand = icl.candidates_for_ranking(icl.ranking[0], pool_size=30)
        assert cand.size >= 30
        assert len(set(cand.tolist())) == cand.size  # no duplicates

    def test_candidate_walk_respects_max_clusters(self, ml_small, clustered):
        _, smoothed = clustered
        icl = build_icluster(smoothed, ml_small.mask, ml_small.values)
        first_cluster = int(icl.ranking[0][0])
        cand = icl.candidates_for_ranking(icl.ranking[0], pool_size=10_000, max_clusters=1)
        assert set(cand.tolist()) == set(icl.cluster_members[first_cluster].tolist())

    def test_candidate_walk_validates_pool(self, ml_small, clustered):
        _, smoothed = clustered
        icl = build_icluster(smoothed, ml_small.mask, ml_small.values)
        with pytest.raises(ValueError):
            icl.candidates_for_ranking(icl.ranking[0], pool_size=0)
