"""Documentation-coverage gate: every public item carries a docstring.

The deliverable standard for this library is "doc comments on every
public item"; this test makes the standard executable, so a future
undocumented addition fails CI instead of slipping through review.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

# Modules whose public surface is checked.  (Everything; listed
# explicitly so a new subpackage must be added consciously.)
PACKAGES = [
    "repro",
    "repro.baselines",
    "repro.core",
    "repro.data",
    "repro.eval",
    "repro.obs",
    "repro.parallel",
    "repro.similarity",
    "repro.utils",
]


def _iter_modules() -> list[str]:
    names = set(PACKAGES)
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__, prefix=f"{pkg_name}."):
                if info.name.endswith("__main__"):
                    continue  # importing __main__ executes the CLI
                names.add(info.name)
    return sorted(names)


ALL_MODULES = _iter_modules()


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing: list[str] = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if getattr(type(obj), "__module__", "").startswith("typing"):
            continue  # type aliases (e.g. Literal unions) carry no __doc__
        if not callable(obj) and not inspect.isclass(obj):
            continue  # constants (dicts, tuples) document themselves inline
        if not (getattr(obj, "__doc__", None) or "").strip():
            missing.append(name)
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if callable(attr) or isinstance(attr, property):
                    target = attr.fget if isinstance(attr, property) else attr
                    if (getattr(target, "__doc__", None) or "").strip():
                        continue
                    # An override with an unchanged contract may inherit
                    # its documentation from a base class.
                    inherited = False
                    for base in obj.__mro__[1:]:
                        base_attr = base.__dict__.get(attr_name)
                        if base_attr is None:
                            continue
                        base_target = (
                            base_attr.fget
                            if isinstance(base_attr, property)
                            else base_attr
                        )
                        if (getattr(base_target, "__doc__", None) or "").strip():
                            inherited = True
                            break
                    if not inherited:
                        missing.append(f"{name}.{attr_name}")
    assert not missing, f"{module_name}: undocumented public items: {missing}"
