"""Tests for rating-matrix persistence (npz + triplet CSV)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.io import load_matrix, load_triplets, save_matrix, save_triplets


class TestNpzRoundtrip:
    def test_matrix_roundtrip(self, tiny_rm, tmp_path):
        path = str(tmp_path / "m.npz")
        save_matrix(tiny_rm, path)
        loaded, times = load_matrix(path)
        assert loaded == tiny_rm
        assert times is None

    def test_with_timestamps(self, tiny_rm, tmp_path):
        path = str(tmp_path / "m.npz")
        stamps = np.arange(20, dtype=float).reshape(4, 5)
        save_matrix(tiny_rm, path, timestamps=stamps)
        loaded, times = load_matrix(path)
        assert loaded == tiny_rm
        assert np.array_equal(times, stamps)

    def test_rating_scale_preserved(self, tmp_path):
        from repro.data import RatingMatrix

        rm = RatingMatrix(np.array([[7.0, 0.0]]), rating_scale=(1.0, 10.0))
        path = str(tmp_path / "m.npz")
        save_matrix(rm, path)
        loaded, _ = load_matrix(path)
        assert loaded.rating_scale == (1.0, 10.0)

    def test_timestamp_shape_validated(self, tiny_rm, tmp_path):
        with pytest.raises(ValueError, match="shape"):
            save_matrix(tiny_rm, str(tmp_path / "m.npz"), timestamps=np.zeros((2, 2)))

    def test_version_check(self, tiny_rm, tmp_path):
        import json

        path = str(tmp_path / "m.npz")
        save_matrix(tiny_rm, path)
        with np.load(path, allow_pickle=False) as archive:
            data = {k: archive[k] for k in archive.files}
        meta = json.loads(str(data["meta"]))
        meta["format_version"] = 99
        data["meta"] = json.dumps(meta)
        bad = str(tmp_path / "bad.npz")
        np.savez_compressed(bad, **data)
        with pytest.raises(ValueError, match="unsupported"):
            load_matrix(bad)


class TestTripletsRoundtrip:
    def test_roundtrip(self, tiny_rm, tmp_path):
        path = str(tmp_path / "r.csv")
        n = save_triplets(tiny_rm, path)
        assert n == tiny_rm.n_ratings
        loaded, times = load_triplets(path, n_users=4, n_items=5)
        assert loaded == tiny_rm
        assert times is None

    def test_roundtrip_with_timestamps(self, tiny_rm, tmp_path):
        path = str(tmp_path / "r.csv")
        stamps = np.zeros(tiny_rm.shape)
        stamps[tiny_rm.mask] = np.arange(tiny_rm.n_ratings, dtype=float) + 1.0
        save_triplets(tiny_rm, path, timestamps=stamps)
        loaded, times = load_triplets(path, n_users=4, n_items=5)
        assert loaded == tiny_rm
        assert np.allclose(times[tiny_rm.mask], stamps[tiny_rm.mask])

    def test_headerless(self, tiny_rm, tmp_path):
        path = str(tmp_path / "r.csv")
        save_triplets(tiny_rm, path, header=False)
        loaded, _ = load_triplets(path, n_users=4, n_items=5)
        assert loaded == tiny_rm

    def test_interoperates_with_header_detection(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("user,item,rating\n0,0,4.0\n1,1,2.0\n")
        loaded, _ = load_triplets(str(path))
        assert loaded.n_ratings == 2
        assert loaded.values[0, 0] == 4.0

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("0,0\n")
        with pytest.raises(ValueError, match="columns"):
            load_triplets(str(path))
