"""Edge-case tests for the CFSF model: degenerate geometries, extreme
configurations, and the online/offline boundary."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CFSF
from repro.data import RatingMatrix


class TestDegenerateGeometries:
    def test_tiny_matrix(self):
        """3 users, 4 items — every stage must survive."""
        train = RatingMatrix(
            np.array(
                [
                    [5.0, 4.0, 0.0, 2.0],
                    [4.0, 5.0, 1.0, 0.0],
                    [1.0, 0.0, 5.0, 4.0],
                ]
            )
        )
        model = CFSF(n_clusters=2, top_m_items=2, top_k_users=2).fit(train)
        given = RatingMatrix(np.array([[5.0, 0.0, 0.0, 1.0]]))
        pred = model.predict(given, 0, 1)
        assert 1.0 <= pred <= 5.0

    def test_single_training_user(self):
        train = RatingMatrix(np.array([[5.0, 3.0, 4.0, 2.0, 1.0]]))
        model = CFSF(n_clusters=1, top_m_items=3, top_k_users=1).fit(train)
        given = RatingMatrix(np.array([[0.0, 3.0, 0.0, 0.0, 2.0]]))
        pred = model.predict(given, 0, 0)
        assert np.isfinite(pred)

    def test_more_clusters_than_users(self, split_small):
        sub = split_small.train.subset_users(range(5))
        model = CFSF(n_clusters=30, top_m_items=10, top_k_users=3).fit(sub)
        assert model.clusters.n_clusters == 5

    def test_constant_ratings_matrix(self):
        """All-identical ratings: similarities degenerate to 0, every
        prediction falls back to means — must not NaN."""
        values = np.where(np.random.default_rng(0).random((10, 12)) < 0.5, 3.0, 0.0)
        train = RatingMatrix(values)
        model = CFSF(n_clusters=3, top_m_items=5, top_k_users=3).fit(train)
        given = RatingMatrix(np.array([[3.0] + [0.0] * 11]))
        pred = model.predict(given, 0, 5)
        assert np.isfinite(pred)
        assert pred == pytest.approx(3.0, abs=0.5)


class TestExtremeConfigurations:
    @pytest.mark.parametrize("overrides", [
        dict(lam=0.0, delta=0.0),
        dict(lam=1.0, delta=0.0),
        dict(delta=1.0),
        dict(epsilon=1.0),
        dict(epsilon=0.0),
        dict(gis_threshold=0.9),
        dict(top_m_items=1, top_k_users=1),
        dict(candidate_clusters=1),
        dict(candidate_pool=2),
    ])
    def test_extreme_configs_stay_finite(self, split_small, overrides):
        base = dict(n_clusters=8, top_m_items=20, top_k_users=8)
        model = CFSF(**{**base, **overrides})
        model.fit(split_small.train)
        users, items, _ = split_small.targets_arrays()
        preds = model.predict_many(split_small.given, users[:60], items[:60])
        lo, hi = split_small.train.rating_scale
        assert np.isfinite(preds).all()
        assert preds.min() >= lo and preds.max() <= hi

    def test_heavy_gis_threshold_starves_sir_gracefully(self, split_small):
        """A 0.95 threshold leaves almost no GIS entries; SIR'/SUIR'
        fall back and the model leans on SUR' — prediction survives."""
        model = CFSF(
            n_clusters=8, top_m_items=20, top_k_users=8, gis_threshold=0.95
        ).fit(split_small.train)
        assert model.gis.sparsity() > 0.9
        users, items, _ = split_small.targets_arrays()
        preds = model.predict_many(split_small.given, users[:40], items[:40])
        assert np.isfinite(preds).all()


class TestActiveUserBoundary:
    def test_active_user_given_matrix_not_mutated(self, cfsf_small, split_small):
        before_vals = split_small.given.values.copy()
        before_mask = split_small.given.mask.copy()
        users, items, _ = split_small.targets_arrays()
        cfsf_small.predict_many(split_small.given, users[:50], items[:50])
        assert np.array_equal(split_small.given.values, before_vals)
        assert np.array_equal(split_small.given.mask, before_mask)

    def test_querying_a_given_item_is_allowed(self, cfsf_small, split_small):
        """Predicting an item the user already rated is a legal query
        (e.g. for explanation); the result must be finite, and the own
        rating must not echo back through a self-similarity."""
        user = 0
        rated = np.nonzero(split_small.given.mask[user])[0]
        pred = cfsf_small.predict(split_small.given, user, int(rated[0]))
        assert np.isfinite(pred)

    def test_all_active_users_servable(self, cfsf_small, split_small):
        """Every active user must get finite predictions for every
        item — the coverage guarantee the paper contrasts with EMDP."""
        items = np.arange(0, split_small.train.n_items, 17)
        for user in range(split_small.given.n_users):
            preds = cfsf_small.predict_many(
                split_small.given,
                np.full(items.shape, user, dtype=np.intp),
                items,
            )
            assert np.isfinite(preds).all()


class TestStateIntrospection:
    def test_active_state_shapes(self, cfsf_small, split_small):
        state = cfsf_small.active_user_state(split_small.given, 0)
        Q = split_small.train.n_items
        assert state.profile.shape == (Q,)
        assert state.observed.shape == (Q,)
        assert state.cluster_ranking.shape == (cfsf_small.clusters.n_clusters,)
        assert len(state.top_k) <= cfsf_small.config.top_k_users

    def test_active_profile_respects_given(self, cfsf_small, split_small):
        state = cfsf_small.active_user_state(split_small.given, 2)
        rated = split_small.given.mask[2]
        assert np.allclose(state.profile[rated], split_small.given.values[2][rated])
        assert state.observed[rated].all()
        assert not state.observed[~rated].any()

    def test_build_local_shapes(self, cfsf_small, split_small):
        local = cfsf_small.build_local(split_small.given, 0, 7)
        K, M = local.shape
        assert K <= cfsf_small.config.top_k_users
        assert M <= cfsf_small.config.top_m_items
        assert local.ratings.shape == (K, M)
        assert local.weights.shape == (K, M)
        assert local.item_means.shape == (M,)

    def test_build_local_bounds(self, cfsf_small, split_small):
        with pytest.raises(ValueError):
            cfsf_small.build_local(split_small.given, 0, 10_000)
