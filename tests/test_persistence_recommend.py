"""Tests for model persistence and the top-N recommendation layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MeanPredictor
from repro.core import CFSF, load_model, recommend_for_all, recommend_top_n, save_model
from repro.core.persistence import FORMAT_VERSION


class TestPersistence:
    def test_roundtrip_predictions_identical(self, cfsf_small, split_small, tmp_path):
        path = str(tmp_path / "model.npz")
        save_model(cfsf_small, path)
        restored = load_model(path)
        users, items, _ = split_small.targets_arrays()
        a = cfsf_small.predict_many(split_small.given, users[:120], items[:120])
        b = restored.predict_many(split_small.given, users[:120], items[:120])
        assert np.array_equal(a, b)

    def test_roundtrip_config(self, split_small, tmp_path):
        model = CFSF(n_clusters=8, top_m_items=30, top_k_users=10, lam=0.65)
        model.fit(split_small.train)
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        restored = load_model(path)
        assert restored.config == model.config

    def test_roundtrip_offline_summary(self, cfsf_small, split_small, tmp_path):
        path = str(tmp_path / "model.npz")
        save_model(cfsf_small, path)
        restored = load_model(path)
        a = cfsf_small.offline_summary()
        b = restored.offline_summary()
        for key in ("n_users", "n_items", "n_clusters", "gis_sparsity", "smoothed_fraction"):
            assert a[key] == b[key], key

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_model(CFSF(), str(tmp_path / "x.npz"))

    def test_bad_version_rejected(self, cfsf_small, tmp_path):
        import json

        path = str(tmp_path / "model.npz")
        save_model(cfsf_small, path)
        with np.load(path, allow_pickle=False) as archive:
            data = {k: archive[k] for k in archive.files}
        meta = json.loads(str(data["meta"]))
        meta["format_version"] = FORMAT_VERSION + 1
        data["meta"] = json.dumps(meta)
        bad = str(tmp_path / "bad.npz")
        np.savez_compressed(bad, **data)
        with pytest.raises(ValueError, match="version"):
            load_model(bad)

    def test_missing_array_rejected(self, cfsf_small, tmp_path):
        path = str(tmp_path / "model.npz")
        save_model(cfsf_small, path)
        with np.load(path, allow_pickle=False) as archive:
            data = {k: archive[k] for k in archive.files}
        del data["gis_sim"]
        bad = str(tmp_path / "bad.npz")
        np.savez_compressed(bad, **data)
        with pytest.raises(ValueError, match="missing"):
            load_model(bad)

    def test_no_pickle_in_snapshot(self, cfsf_small, tmp_path):
        """The snapshot must load with allow_pickle=False (safety)."""
        path = str(tmp_path / "model.npz")
        save_model(cfsf_small, path)
        with np.load(path, allow_pickle=False) as archive:
            assert "meta" in archive.files


class TestRecommendTopN:
    def test_list_length_and_order(self, cfsf_small, split_small):
        rec = recommend_top_n(cfsf_small, split_small.given, 0, n=10)
        assert len(rec) == 10
        assert (np.diff(rec.scores) <= 1e-12).all()

    def test_excludes_given_items(self, cfsf_small, split_small):
        rec = recommend_top_n(cfsf_small, split_small.given, 0, n=20)
        rated = np.nonzero(split_small.given.mask[0])[0]
        assert not np.isin(rec.items, rated).any()

    def test_include_given_when_asked(self, cfsf_small, split_small):
        rec = recommend_top_n(
            cfsf_small, split_small.given, 0, n=split_small.given.n_items,
            exclude_given=False,
        )
        assert len(rec) == split_small.given.n_items

    def test_candidate_restriction(self, cfsf_small, split_small):
        candidates = np.arange(25)
        rec = recommend_top_n(
            cfsf_small, split_small.given, 1, n=10, candidate_items=candidates
        )
        assert np.isin(rec.items, candidates).all()

    def test_candidate_out_of_range(self, cfsf_small, split_small):
        with pytest.raises(ValueError):
            recommend_top_n(
                cfsf_small, split_small.given, 0, n=5,
                candidate_items=np.array([99999]),
            )

    def test_user_out_of_range(self, cfsf_small, split_small):
        with pytest.raises(ValueError):
            recommend_top_n(cfsf_small, split_small.given, 999, n=5)

    def test_as_pairs(self, cfsf_small, split_small):
        rec = recommend_top_n(cfsf_small, split_small.given, 0, n=3)
        pairs = rec.as_pairs()
        assert len(pairs) == 3 and isinstance(pairs[0][0], int)

    def test_recommend_for_all(self, split_small):
        model = MeanPredictor("item").fit(split_small.train)
        recs = recommend_for_all(model, split_small.given, n=5)
        assert len(recs) == split_small.given.n_users
        assert all(len(r) == 5 for r in recs)

    def test_ranking_quality_beats_random(self, cfsf_small, split_small):
        """CFSF's top-N must hit held-out 'liked' items (rating >= 4)
        more often than a random ranking — the ranking analogue of
        beating the mean predictor."""
        from repro.eval import precision_recall_at_n

        rng = np.random.default_rng(0)
        n = 20
        prec_model, prec_random = [], []
        for user in range(split_small.given.n_users):
            heldout = np.nonzero(split_small.heldout.mask[user])[0]
            liked = heldout[split_small.heldout.values[user, heldout] >= 4.0]
            if liked.size < 3:
                continue
            rec = recommend_top_n(
                cfsf_small, split_small.given, user, n=n, candidate_items=heldout
            )
            p, _ = precision_recall_at_n(liked, rec.items, n)
            prec_model.append(p)
            p_rand, _ = precision_recall_at_n(
                liked, rng.permutation(heldout), n
            )
            prec_random.append(p_rand)
        assert np.mean(prec_model) > np.mean(prec_random)
