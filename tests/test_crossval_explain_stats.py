"""Tests for cross-validation, prediction explanations, and dataset
diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MeanPredictor
from repro.core import CFSF, explain
from repro.data import (
    RatingMatrix,
    gini_coefficient,
    popularity_curve,
    popularity_quality_correlation,
    rating_histogram,
    summarize,
)
from repro.data.stats import activity_histogram
from repro.eval import cross_validate, user_kfold_splits


class TestUserKFold:
    def test_folds_partition_users(self, ml_small):
        splits = user_kfold_splits(ml_small, n_folds=4, given_n=6, seed=0)
        assert len(splits) == 4
        sizes = [s.n_active_users for s in splits]
        assert sum(sizes) == ml_small.n_users

    def test_train_test_disjoint_within_fold(self, ml_small):
        splits = user_kfold_splits(ml_small, n_folds=4, given_n=6, seed=0)
        for s in splits:
            assert s.train.n_users + s.n_active_users == ml_small.n_users

    def test_each_fold_preserves_ratings(self, ml_small):
        splits = user_kfold_splits(ml_small, n_folds=4, given_n=6, seed=0)
        for s in splits:
            total = s.train.n_ratings + s.given.n_ratings + s.heldout.n_ratings
            assert total == ml_small.n_ratings

    def test_deterministic(self, ml_small):
        a = user_kfold_splits(ml_small, n_folds=3, given_n=6, seed=5)
        b = user_kfold_splits(ml_small, n_folds=3, given_n=6, seed=5)
        assert all(x.given == y.given for x, y in zip(a, b))

    def test_too_few_users(self, tiny_rm):
        with pytest.raises(ValueError, match="users"):
            user_kfold_splits(tiny_rm, n_folds=3, given_n=1)

    def test_min_two_folds(self, ml_small):
        with pytest.raises(ValueError):
            user_kfold_splits(ml_small, n_folds=1, given_n=6)


class TestCrossValidate:
    def test_aggregates(self, ml_small):
        result = cross_validate(
            lambda: MeanPredictor("item"), ml_small, n_folds=3, given_n=6, seed=0
        )
        assert result.n_folds == 3
        assert 0.4 < result.mae_mean < 1.2
        assert result.mae_std >= 0.0
        assert "folds" in result.summary()

    def test_fresh_model_per_fold(self, ml_small):
        created = []

        def factory():
            created.append(1)
            return MeanPredictor("item")

        cross_validate(factory, ml_small, n_folds=3, given_n=6, seed=0)
        assert len(created) == 3


class TestExplain:
    def test_explanation_matches_prediction(self, cfsf_small, split_small):
        users, items, _ = split_small.targets_arrays()
        u, i = int(users[0]), int(items[0])
        exp = explain(cfsf_small, split_small.given, u, i)
        pred = cfsf_small.predict(split_small.given, u, i)
        assert exp.prediction == pytest.approx(pred, abs=1e-9)

    def test_contributions_ranked_and_bounded(self, cfsf_small, split_small):
        exp = explain(cfsf_small, split_small.given, 0, 5, top_n=3)
        for contribs in (exp.top_items, exp.top_users):
            assert len(contribs) <= 3
            shares = [c.weight_share for c in contribs]
            assert all(0.0 < s <= 1.0 for s in shares)
            assert shares == sorted(shares, reverse=True)

    def test_component_weights_convex(self, cfsf_small, split_small):
        exp = explain(cfsf_small, split_small.given, 0, 5)
        assert sum(exp.component_weights) == pytest.approx(1.0)

    def test_render_is_readable(self, cfsf_small, split_small):
        text = explain(cfsf_small, split_small.given, 1, 7).render()
        assert "prediction for user 1, item 7" in text
        assert "SIR'" in text and "SUR'" in text

    def test_top_n_validated(self, cfsf_small, split_small):
        with pytest.raises(ValueError):
            explain(cfsf_small, split_small.given, 0, 5, top_n=0)


class TestDatasetStats:
    def test_rating_histogram_totals(self, tiny_rm):
        hist = rating_histogram(tiny_rm)
        assert sum(hist.values()) == tiny_rm.n_ratings

    def test_popularity_curve_descending(self, ml_small):
        curve = popularity_curve(ml_small)
        assert (np.diff(curve) <= 0).all()
        assert curve.sum() == ml_small.n_ratings

    def test_gini_uniform_zero(self):
        assert gini_coefficient(np.full(10, 7.0)) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_high(self):
        counts = np.zeros(100)
        counts[0] = 1000
        assert gini_coefficient(counts) > 0.9

    def test_gini_validation(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([]))
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0]))
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_activity_histogram_sums_to_users(self, ml_small):
        _, hist = activity_histogram(ml_small)
        assert hist.sum() == ml_small.n_users

    def test_popularity_quality_positive_on_generator(self, ml_small):
        assert popularity_quality_correlation(ml_small) > 0.0

    def test_popularity_quality_needs_items(self):
        rm = RatingMatrix(np.array([[1.0, 0.0], [0.0, 2.0]]))
        with pytest.raises(ValueError):
            popularity_quality_correlation(rm, min_count=5)

    def test_summarize_keys(self, ml_small):
        report = summarize(ml_small)
        for key in (
            "table1",
            "rating_histogram",
            "popularity_gini",
            "top10_item_share",
            "popularity_quality_corr",
            "median_user_activity",
        ):
            assert key in report
        assert 0.0 <= report["popularity_gini"] <= 1.0
