"""Worker metrics crossing the process boundary (drain/merge deltas).

The reconciliation invariant under test: whatever happens to the pool
— clean run, a killed worker mid-batch, or full inline degradation —
``parallel.task.requests`` ends up exactly equal to the number of
requests served, and the task-latency histogram holds exactly one
sample per completed task.  Crashed attempts must contribute nothing
(their deltas die with the worker or are thrown away un-merged) and
the retry must merge exactly once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.parallel import ParallelPredictor
from repro.serving.faults import KillWorkerAlways, KillWorkerOnce

pytestmark = pytest.mark.obs


def _multi_user_slice(split, n_users=6, per_user=20):
    """Requests spanning several users, so partitioning yields >1 task.

    ``targets_arrays`` is grouped by user — a naive ``[:n]`` prefix can
    land on a single user and collapse the batch to one pool task.
    """
    users, items, _ = split.targets_arrays()
    picked_users, picked_items = [], []
    for uid in np.unique(users)[:n_users]:
        idx = np.flatnonzero(users == uid)[:per_user]
        picked_users.append(users[idx])
        picked_items.append(items[idx])
    return np.concatenate(picked_users), np.concatenate(picked_items)


class TestWorkerDeltaMerge:
    def test_clean_run_reconciles_and_matches_serial(self, cfsf_small, split_small):
        users, items = _multi_user_slice(split_small)
        serial = cfsf_small.predict_many(split_small.given, users, items)
        registry = MetricsRegistry()
        with ParallelPredictor(cfsf_small, n_workers=2, metrics=registry) as pp:
            out = pp.predict_many(split_small.given, users, items)
        assert np.allclose(out, serial)
        assert registry.counter_value("parallel.task.requests") == users.size
        latency = registry.histogram("parallel.task.latency")
        queue_wait = registry.histogram("parallel.task.queue_wait")
        assert latency.count == queue_wait.count == 2  # one sample per task
        assert registry.histogram("parallel.batch.latency").count == 1
        assert registry.counter_value("parallel.pool.respawn") == 0
        assert registry.counter_value("parallel.inline.fallback") == 0

    def test_consecutive_batches_accumulate(self, cfsf_small, split_small):
        users, items = _multi_user_slice(split_small)
        registry = MetricsRegistry()
        with ParallelPredictor(cfsf_small, n_workers=2, metrics=registry) as pp:
            pp.predict_many(split_small.given, users, items)
            pp.predict_many(split_small.given, users, items)
        assert registry.counter_value("parallel.task.requests") == 2 * users.size
        assert registry.histogram("parallel.batch.latency").count == 2

    def test_disabled_registry_ships_no_deltas(self, cfsf_small, split_small):
        users, items = _multi_user_slice(split_small)
        registry = MetricsRegistry()
        with ParallelPredictor(cfsf_small, n_workers=2) as pp:  # ambient: disabled
            out = pp.predict_many(split_small.given, users, items)
        assert out.size == users.size
        assert registry.snapshot()["counters"] == []


@pytest.mark.faults
class TestCrashReconciliation:
    def test_killed_worker_loses_and_double_counts_nothing(
        self, cfsf_small, split_small, tmp_path
    ):
        users, items = _multi_user_slice(split_small)
        serial = cfsf_small.predict_many(split_small.given, users, items)
        registry = MetricsRegistry()
        hook = KillWorkerOnce(str(tmp_path / "kill.flag")).arm()
        with ParallelPredictor(
            cfsf_small, n_workers=2, worker_hook=hook, metrics=registry
        ) as pp:
            out = pp.predict_many(split_small.given, users, items)
            assert pp.crash_recoveries >= 1
            assert pp.inline_fallbacks == 0
        assert np.allclose(out, serial)
        # The respawn shows up in the registry, mirroring the attribute.
        assert registry.counter_value("parallel.pool.respawn") == pp.crash_recoveries
        # Reconciliation: the killed attempt's partial work contributed
        # no deltas; the successful retry merged exactly once.
        assert registry.counter_value("parallel.task.requests") == users.size
        latency = registry.histogram("parallel.task.latency")
        assert latency.count == 2  # the surviving attempt's tasks, once each
        assert registry.counter_value("parallel.inline.fallback") == 0

    def test_inline_degradation_still_reconciles(self, cfsf_small, split_small):
        users, items = _multi_user_slice(split_small)
        serial = cfsf_small.predict_many(split_small.given, users, items)
        registry = MetricsRegistry()
        with ParallelPredictor(
            cfsf_small,
            n_workers=2,
            max_pool_retries=1,
            worker_hook=KillWorkerAlways(),
            metrics=registry,
        ) as pp:
            out = pp.predict_many(split_small.given, users, items)
            assert pp.inline_fallbacks == 1
        assert np.allclose(out, serial)
        # Every request was ultimately predicted inline, exactly once.
        assert registry.counter_value("parallel.task.requests") == users.size
        assert registry.histogram("parallel.task.latency").count == 2
        assert registry.counter_value("parallel.inline.fallback") == 1
        assert (
            registry.counter_value("parallel.pool.respawn") == pp.crash_recoveries
        )
