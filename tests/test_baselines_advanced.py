"""Tests for the state-of-the-art baselines: SF, SCBPCC, EMDP, AM, PD,
SlopeOne."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    EMDP,
    SCBPCC,
    AspectModel,
    MeanPredictor,
    PersonalityDiagnosis,
    SimilarityFusion,
    SlopeOne,
)
from repro.data import RatingMatrix
from repro.eval import mae


def _score(model, split):
    users, items, truth = split.targets_arrays()
    model.fit(split.train)
    return mae(truth, model.predict_many(split.given, users, items))


@pytest.fixture(scope="module")
def baseline_mae(split_small):
    users, items, truth = split_small.targets_arrays()
    base = MeanPredictor("user_item").fit(split_small.train)
    return mae(truth, base.predict_many(split_small.given, users, items))


class TestSimilarityFusion:
    def test_finite_in_scale(self, split_small):
        users, items, _ = split_small.targets_arrays()
        preds = SimilarityFusion().fit(split_small.train).predict_many(
            split_small.given, users, items
        )
        lo, hi = split_small.train.rating_scale
        assert np.isfinite(preds).all() and preds.min() >= lo and preds.max() <= hi

    def test_beats_mean_baseline(self, split_small, baseline_mae):
        assert _score(SimilarityFusion(), split_small) < baseline_mae

    def test_lambda_extremes_differ(self, split_small):
        users, items, _ = split_small.targets_arrays()
        a = SimilarityFusion(lam=0.0, delta=0.0).fit(split_small.train)
        b = SimilarityFusion(lam=1.0, delta=0.0).fit(split_small.train)
        assert not np.allclose(
            a.predict_many(split_small.given, users[:40], items[:40]),
            b.predict_many(split_small.given, users[:40], items[:40]),
        )

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SimilarityFusion(lam=2.0)
        with pytest.raises(ValueError):
            SimilarityFusion(top_k_users=0)


class TestSCBPCC:
    def test_beats_mean_baseline(self, split_small, baseline_mae):
        assert _score(SCBPCC(n_clusters=8, top_k=10), split_small) < baseline_mae

    def test_cluster_preselection_reduces_candidates(self, split_small):
        users, items, _ = split_small.targets_arrays()
        full = SCBPCC(n_clusters=8, top_k=10).fit(split_small.train)
        narrow = SCBPCC(n_clusters=8, top_k=10, n_candidate_clusters=1).fit(
            split_small.train
        )
        pf = full.predict_many(split_small.given, users[:40], items[:40])
        pn = narrow.predict_many(split_small.given, users[:40], items[:40])
        assert not np.allclose(pf, pn)

    def test_shares_smoothing_with_cfsf(self, split_small):
        """SCBPCC's smoothed matrix must be the same object type and
        semantics as CFSF's (shared machinery, per DESIGN.md)."""
        from repro.core import CFSF

        s = SCBPCC(n_clusters=8, top_k=10, seed=0).fit(split_small.train)
        c = CFSF(n_clusters=8, kmeans_seed=0).fit(split_small.train)
        assert np.allclose(s.smoothed.values, c.smoothed.values)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SCBPCC(n_clusters=0)
        with pytest.raises(ValueError):
            SCBPCC(epsilon=1.2)


class TestEMDP:
    def test_fill_adds_values(self, split_small):
        model = EMDP(eta=0.1, theta=0.1).fit(split_small.train)
        assert model._filled_mask.sum() > split_small.train.mask.sum()
        # originals preserved
        tm = split_small.train.mask
        assert np.allclose(model._filled_values[tm], split_small.train.values[tm])

    def test_filled_values_in_scale(self, split_small):
        model = EMDP(eta=0.1, theta=0.1).fit(split_small.train)
        filled_only = model._filled_mask & ~split_small.train.mask
        vals = model._filled_values[filled_only]
        lo, hi = split_small.train.rating_scale
        assert vals.min() >= lo and vals.max() <= hi

    def test_no_fill_mode(self, split_small):
        model = EMDP(fill_training=False).fit(split_small.train)
        assert model._filled_mask.sum() == split_small.train.mask.sum()

    def test_loose_thresholds_beat_mean(self, split_small, baseline_mae):
        assert _score(EMDP(eta=0.1, theta=0.1), split_small) < baseline_mae

    def test_threshold_sensitivity_is_real(self, split_small):
        """The CFSF paper's critique: EMDP's accuracy must move
        materially with its thresholds."""
        loose = _score(EMDP(eta=0.05, theta=0.05), split_small)
        tight = _score(EMDP(eta=0.6, theta=0.6), split_small)
        assert abs(loose - tight) > 0.01

    def test_finite_even_with_extreme_thresholds(self, split_small):
        users, items, _ = split_small.targets_arrays()
        model = EMDP(eta=0.99, theta=0.99).fit(split_small.train)
        preds = model.predict_many(split_small.given, users, items)
        assert np.isfinite(preds).all()


class TestAspectModel:
    def test_em_log_likelihood_nondecreasing(self, split_small):
        model = AspectModel(n_aspects=5, n_iter=15, seed=0).fit(split_small.train)
        ll = np.array(model.log_likelihood_trace)
        assert len(ll) == 15
        assert (np.diff(ll) > -1e-6 * np.abs(ll[:-1])).all()

    def test_fold_in_mixtures_are_distributions(self, split_small):
        model = AspectModel(n_aspects=5, n_iter=10, seed=0).fit(split_small.train)
        p = model.fold_in(split_small.given)
        assert p.shape == (split_small.given.n_users, 5)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert (p >= 0).all()

    def test_predictions_in_scale(self, split_small):
        users, items, _ = split_small.targets_arrays()
        model = AspectModel(n_aspects=5, n_iter=10, seed=0).fit(split_small.train)
        preds = model.predict_many(split_small.given, users, items)
        lo, hi = split_small.train.rating_scale
        assert preds.min() >= lo and preds.max() <= hi

    def test_beats_global_mean(self, split_small):
        users, items, truth = split_small.targets_arrays()
        model = AspectModel(n_aspects=8, n_iter=20, seed=0).fit(split_small.train)
        m_am = mae(truth, model.predict_many(split_small.given, users, items))
        m_gm = mae(truth, np.full(truth.shape, split_small.train.global_mean()))
        assert m_am < m_gm

    def test_seed_determinism(self, split_small):
        users, items, _ = split_small.targets_arrays()
        a = AspectModel(n_aspects=4, n_iter=8, seed=1).fit(split_small.train)
        b = AspectModel(n_aspects=4, n_iter=8, seed=1).fit(split_small.train)
        assert np.allclose(
            a.predict_many(split_small.given, users[:30], items[:30]),
            b.predict_many(split_small.given, users[:30], items[:30]),
        )

    def test_param_validation(self):
        with pytest.raises(ValueError):
            AspectModel(min_sigma=0.0)
        with pytest.raises(ValueError):
            AspectModel(prior_strength=-1.0)


class TestPersonalityDiagnosis:
    def test_mean_mode_in_scale(self, split_small):
        users, items, _ = split_small.targets_arrays()
        preds = PersonalityDiagnosis().fit(split_small.train).predict_many(
            split_small.given, users, items
        )
        lo, hi = split_small.train.rating_scale
        assert preds.min() >= lo and preds.max() <= hi

    def test_argmax_mode_discrete(self, split_small):
        users, items, _ = split_small.targets_arrays()
        preds = PersonalityDiagnosis(mode="argmax").fit(split_small.train).predict_many(
            split_small.given, users[:50], items[:50]
        )
        assert set(np.unique(preds)).issubset({1.0, 2.0, 3.0, 4.0, 5.0})

    def test_copycat_personality_dominates(self):
        """If one training user matches the active profile exactly and
        everyone else is far, PD must predict (near) that user's rating."""
        train = RatingMatrix(
            np.array(
                [
                    [5.0, 1.0, 5.0, 1.0, 4.0],
                    [3.0, 3.0, 3.0, 3.0, 1.0],
                ]
            )
        )
        model = PersonalityDiagnosis(sigma=0.5).fit(train)
        given = RatingMatrix(np.array([[5.0, 1.0, 5.0, 1.0, 0.0]]))
        assert model.predict(given, 0, 4) == pytest.approx(4.0, abs=0.2)

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            PersonalityDiagnosis(sigma=0.0)
        with pytest.raises(ValueError):
            PersonalityDiagnosis(mode="median")


class TestSlopeOne:
    def test_hand_computed(self):
        """Classic slope-one example."""
        train = RatingMatrix(np.array([[1.0, 1.5], [2.0, 0.0]]), np.array([[True, True], [True, False]]))
        model = SlopeOne().fit(train)
        given = RatingMatrix(np.array([[2.0, 0.0]]), np.array([[True, False]]))
        # dev(1, 0) = 0.5 from the one co-rater; prediction = 2.0 + 0.5.
        assert model.predict(given, 0, 1) == pytest.approx(2.5)

    def test_beats_global_mean(self, split_small):
        users, items, truth = split_small.targets_arrays()
        m_s1 = _score(SlopeOne(), split_small)
        m_gm = mae(truth, np.full(truth.shape, split_small.train.global_mean()))
        assert m_s1 < m_gm

    def test_antisymmetric_devs(self, split_small):
        model = SlopeOne().fit(split_small.train)
        assert np.allclose(model._dev, -model._dev.T)
