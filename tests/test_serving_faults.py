"""Tests for the fault-injection harness and snapshot durability.

Two halves:

* the injectors themselves (:mod:`repro.serving.faults`) — they must
  be deterministic, or a failing robustness test would not reproduce;
* the persistence guarantees they attack — atomic saves (no torn
  writes, no stray tmp files) and checksum-verified loads
  (:func:`repro.core.persistence.load_model` rejects damage with a
  typed :class:`~repro.serving.errors.SnapshotCorruptError`).
"""

from __future__ import annotations

import json
import os
import shutil

import numpy as np
import pytest

from repro.baselines import MeanPredictor
from repro.core import CFSF, load_model, save_model
from repro.data import RatingMatrix
from repro.serving import SnapshotCorruptError, SnapshotVersionError
from repro.serving.faults import (
    FlakyRecommender,
    ManualClock,
    SlowRecommender,
    corrupt_snapshot,
    poison_given,
    truncate_snapshot,
)

pytestmark = pytest.mark.faults


@pytest.fixture()
def snap(cfsf_small, tmp_path) -> str:
    path = str(tmp_path / "model.npz")
    save_model(cfsf_small, path)
    return path


def _rewrite_snapshot(src: str, dst: str, mutate) -> None:
    """Re-pack a snapshot with its members altered by *mutate*."""
    with np.load(src, allow_pickle=False) as archive:
        data = {name: archive[name] for name in archive.files}
    mutate(data)
    with open(dst, "wb") as fh:
        np.savez(fh, **data)


class TestAtomicSave:
    def test_no_tmp_sibling_left_behind(self, snap):
        assert os.path.exists(snap)
        assert not os.path.exists(snap + ".tmp")
        assert os.listdir(os.path.dirname(snap)) == [os.path.basename(snap)]

    def test_snapshot_carries_checksum_member(self, snap):
        with np.load(snap, allow_pickle=False) as archive:
            assert "checksum" in archive.files
            assert len(str(archive["checksum"])) == 64  # SHA-256 hex

    def test_failed_save_keeps_previous_snapshot(
        self, cfsf_small, snap, monkeypatch
    ):
        def boom(*args, **kwargs):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(np, "savez_compressed", boom)
        with pytest.raises(RuntimeError, match="disk on fire"):
            save_model(cfsf_small, snap)
        # The tmp file was cleaned up and the published snapshot is the
        # previous, intact one.
        assert not os.path.exists(snap + ".tmp")
        model = load_model(snap)
        assert model.config == cfsf_small.config

    def test_failed_first_save_publishes_nothing(
        self, cfsf_small, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "new.npz")

        def boom(*args, **kwargs):
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(np, "savez_compressed", boom)
        with pytest.raises(RuntimeError):
            save_model(cfsf_small, path)
        assert os.listdir(tmp_path) == []

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_model(CFSF(), str(tmp_path / "m.npz"))


class TestCorruptionInjectors:
    def test_corrupt_changes_bytes_in_place(self, snap):
        before = open(snap, "rb").read()
        corrupt_snapshot(snap, seed=1)
        after = open(snap, "rb").read()
        assert len(after) == len(before)
        assert after != before

    def test_corruption_is_deterministic(self, snap, tmp_path):
        twin = str(tmp_path / "twin.npz")
        shutil.copyfile(snap, twin)
        corrupt_snapshot(snap, seed=3)
        corrupt_snapshot(twin, seed=3)
        assert open(snap, "rb").read() == open(twin, "rb").read()

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.npz"
        empty.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            corrupt_snapshot(str(empty))

    def test_truncate_shrinks_file(self, snap):
        size = os.path.getsize(snap)
        truncate_snapshot(snap, keep_fraction=0.25)
        assert os.path.getsize(snap) == int(size * 0.25)

    def test_truncate_rejects_bad_fraction(self, snap):
        with pytest.raises(ValueError):
            truncate_snapshot(snap, keep_fraction=1.0)


class TestCorruptionDetection:
    def test_flipped_bytes_raise_typed_error(self, snap):
        corrupt_snapshot(snap)
        with pytest.raises(SnapshotCorruptError) as excinfo:
            load_model(snap)
        assert excinfo.value.path == snap
        assert isinstance(excinfo.value, ValueError)  # legacy callers

    def test_truncation_raises_typed_error(self, snap):
        truncate_snapshot(snap)
        with pytest.raises(SnapshotCorruptError):
            load_model(snap)

    def test_stale_checksum_reports_both_digests(self, snap, tmp_path):
        """Tampered content under a valid zip: only the digest catches it."""
        tampered = str(tmp_path / "tampered.npz")

        def bump_gis(data):
            data["gis_sim"] = data["gis_sim"] + 0.25

        _rewrite_snapshot(snap, tampered, bump_gis)
        with pytest.raises(SnapshotCorruptError, match="checksum mismatch") as excinfo:
            load_model(tampered)
        err = excinfo.value
        assert err.expected_checksum is not None
        assert err.actual_checksum is not None
        assert err.expected_checksum != err.actual_checksum
        assert err.expected_checksum[:12] in str(err)

    def test_missing_array_detected(self, snap, tmp_path):
        broken = str(tmp_path / "broken.npz")
        _rewrite_snapshot(snap, broken, lambda d: d.pop("gis_sim"))
        with pytest.raises(SnapshotCorruptError, match="missing"):
            load_model(broken)

    def test_unknown_version_detected(self, snap, tmp_path):
        future = str(tmp_path / "future.npz")

        def bump_version(data):
            meta = json.loads(str(data["meta"]))
            meta["format_version"] = 99
            data["meta"] = json.dumps(meta)

        _rewrite_snapshot(snap, future, bump_version)
        with pytest.raises(SnapshotVersionError, match="version"):
            load_model(future)

    def test_pre_checksum_snapshot_still_loads(
        self, cfsf_small, split_small, snap, tmp_path
    ):
        """Back-compat: archives written before the digest existed load."""
        legacy = str(tmp_path / "legacy.npz")
        _rewrite_snapshot(snap, legacy, lambda d: d.pop("checksum"))
        model = load_model(legacy)
        users, items, _ = split_small.targets_arrays()
        assert np.allclose(
            model.predict_many(split_small.given, users[:20], items[:20]),
            cfsf_small.predict_many(split_small.given, users[:20], items[:20]),
        )

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(str(tmp_path / "never-saved.npz"))


class TestPoisonGiven:
    def test_injects_unvalidated_values(self, split_small):
        poisoned = poison_given(
            split_small.given, [(0, 0, float("nan")), (1, 1, 99.0)]
        )
        assert isinstance(poisoned, RatingMatrix)
        assert np.isnan(poisoned.values[0, 0]) and poisoned.mask[0, 0]
        assert poisoned.values[1, 1] == 99.0 and poisoned.mask[1, 1]

    def test_original_untouched(self, split_small):
        given = split_small.given
        values_before = given.values.copy()
        mask_before = given.mask.copy()
        poison_given(given, [(0, 0, float("nan"))])
        assert np.array_equal(given.values, values_before)
        assert np.array_equal(given.mask, mask_before)

    def test_result_is_frozen(self, split_small):
        poisoned = poison_given(split_small.given, [(0, 0, float("inf"))])
        with pytest.raises(ValueError):
            poisoned.values[0, 0] = 3.0

    def test_constructor_would_have_rejected_it(self, split_small):
        poisoned = poison_given(split_small.given, [(0, 0, float("nan"))])
        with pytest.raises(ValueError):
            RatingMatrix(poisoned.values, poisoned.mask)


class TestRecommenderWrappers:
    @pytest.fixture()
    def mean_model(self, split_small):
        return MeanPredictor().fit(split_small.train)

    def test_flaky_fails_then_heals(self, mean_model, split_small):
        users, items, _ = split_small.targets_arrays()
        users, items = users[:5], items[:5]
        flaky = FlakyRecommender(mean_model, fail_times=2)
        for _ in range(2):
            with pytest.raises(RuntimeError, match="injected"):
                flaky.predict_many(split_small.given, users, items)
        out = flaky.predict_many(split_small.given, users, items)
        assert np.allclose(
            out, mean_model.predict_many(split_small.given, users, items)
        )
        assert flaky.calls == 3 and flaky.failures_injected == 2

    def test_flaky_forever(self, mean_model, split_small):
        users, items, _ = split_small.targets_arrays()
        flaky = FlakyRecommender(mean_model, fail_times=None)
        for _ in range(5):
            with pytest.raises(RuntimeError):
                flaky.predict_many(split_small.given, users[:3], items[:3])
        assert flaky.failures_injected == 5

    def test_flaky_custom_exception(self, mean_model, split_small):
        users, items, _ = split_small.targets_arrays()
        flaky = FlakyRecommender(
            mean_model, fail_times=1, exc_factory=lambda: OSError("io blip")
        )
        with pytest.raises(OSError, match="io blip"):
            flaky.predict_many(split_small.given, users[:3], items[:3])

    def test_wrappers_proxy_attributes(self, cfsf_small):
        flaky = FlakyRecommender(cfsf_small)
        assert flaky.name == cfsf_small.name
        assert flaky.gis is cfsf_small.gis
        assert flaky._train is cfsf_small._train

    def test_slow_sleeps_then_delegates(self, mean_model, split_small):
        users, items, _ = split_small.targets_arrays()
        users, items = users[:5], items[:5]
        clock = ManualClock()
        slow = SlowRecommender(mean_model, delay=0.5, sleep=clock.sleep)
        out = slow.predict_many(split_small.given, users, items)
        assert clock.now == pytest.approx(0.5)
        assert clock.sleeps == [pytest.approx(0.5)]
        assert np.allclose(
            out, mean_model.predict_many(split_small.given, users, items)
        )


class TestManualClock:
    def test_advances(self):
        clock = ManualClock(start=10.0)
        assert clock() == 10.0
        clock.advance(2.5)
        assert clock() == 12.5

    def test_time_only_moves_forward(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)

    def test_sleep_records_and_advances(self):
        clock = ManualClock()
        clock.sleep(0.3)
        clock.sleep(0.6)
        assert clock.sleeps == [pytest.approx(0.3), pytest.approx(0.6)]
        assert clock() == pytest.approx(0.9)
