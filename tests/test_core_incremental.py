"""Tests for the incremental GIS (Section VI extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IncrementalGIS
from repro.data import RatingMatrix
from repro.similarity import pairwise_pcc


@pytest.fixture()
def small_matrix(ml_small):
    return ml_small.subset_users(range(40)).subset_items(range(50))


def full_rebuild_sim(gis: IncrementalGIS) -> np.ndarray:
    rm = gis.matrix()
    return pairwise_pcc(rm.values, rm.mask, centering="corated_mean", min_overlap=gis.min_overlap)


class TestExactness:
    def test_initial_state_matches_batch(self, small_matrix):
        gis = IncrementalGIS(small_matrix)
        ref = full_rebuild_sim(gis)
        got = np.vstack([gis.sim_row(i) for i in range(gis.n_items)])
        assert np.allclose(got, ref, atol=1e-10)

    def test_add_matches_batch(self, small_matrix):
        gis = IncrementalGIS(small_matrix)
        # add to an unrated cell
        u, i = np.argwhere(~small_matrix.mask)[0]
        gis.add_rating(int(u), int(i), 4.0)
        ref = full_rebuild_sim(gis)
        got = np.vstack([gis.sim_row(j) for j in range(gis.n_items)])
        assert np.allclose(got, ref, atol=1e-10)

    def test_remove_matches_batch(self, small_matrix):
        gis = IncrementalGIS(small_matrix)
        u, i = np.argwhere(small_matrix.mask)[5]
        gis.remove_rating(int(u), int(i))
        ref = full_rebuild_sim(gis)
        got = np.vstack([gis.sim_row(j) for j in range(gis.n_items)])
        assert np.allclose(got, ref, atol=1e-10)

    def test_rerate_is_remove_plus_add(self, small_matrix):
        gis = IncrementalGIS(small_matrix)
        u, i = np.argwhere(small_matrix.mask)[3]
        gis.add_rating(int(u), int(i), 1.0)   # re-rate
        assert gis.matrix().values[u, i] == 1.0
        ref = full_rebuild_sim(gis)
        got = np.vstack([gis.sim_row(j) for j in range(gis.n_items)])
        assert np.allclose(got, ref, atol=1e-10)

    def test_long_mixed_stream_stays_exact(self, small_matrix, rng):
        gis = IncrementalGIS(small_matrix)
        for _ in range(150):
            u = int(rng.integers(0, gis.n_users))
            i = int(rng.integers(0, gis.n_items))
            if gis.matrix().mask[u, i] and rng.random() < 0.3:
                gis.remove_rating(u, i)
            else:
                gis.add_rating(u, i, float(rng.integers(1, 6)))
        ref = full_rebuild_sim(gis)
        got = np.vstack([gis.sim_row(j) for j in range(gis.n_items)])
        assert np.abs(got - ref).max() < 1e-9

    def test_rebuild_is_noop_numerically(self, small_matrix, rng):
        gis = IncrementalGIS(small_matrix)
        for _ in range(40):
            u = int(rng.integers(0, gis.n_users))
            i = int(rng.integers(0, gis.n_items))
            gis.add_rating(u, i, float(rng.integers(1, 6)))
        before = np.vstack([gis.sim_row(j) for j in range(gis.n_items)])
        gis.rebuild()
        after = np.vstack([gis.sim_row(j) for j in range(gis.n_items)])
        assert np.abs(before - after).max() < 1e-9


class TestUserFoldIn:
    def test_add_user_grows_matrix(self, small_matrix):
        gis = IncrementalGIS(small_matrix)
        row = gis.add_user(np.array([0, 1, 2]), np.array([5.0, 3.0, 4.0]))
        assert row == small_matrix.n_users
        assert gis.n_users == small_matrix.n_users + 1
        assert gis.matrix().values[row, 0] == 5.0

    def test_fold_in_stays_exact(self, small_matrix):
        gis = IncrementalGIS(small_matrix)
        gis.add_user(np.array([0, 1, 2, 3]), np.array([5.0, 3.0, 4.0, 1.0]))
        ref = full_rebuild_sim(gis)
        got = np.vstack([gis.sim_row(j) for j in range(gis.n_items)])
        assert np.allclose(got, ref, atol=1e-10)


class TestTopM:
    def test_lazy_refresh_after_update(self, small_matrix):
        gis = IncrementalGIS(small_matrix)
        idx_before, _ = gis.top_m(0, 10)
        # Hammer item 0's co-ratings to change its neighbourhood.
        rng = np.random.default_rng(0)
        for u in range(gis.n_users):
            if not gis.matrix().mask[u, 0]:
                gis.add_rating(u, 0, float(rng.integers(1, 6)))
        idx_after, sims_after = gis.top_m(0, 10)
        assert (np.diff(sims_after) <= 1e-12).all()
        # fresh ranking agrees with a from-scratch argsort
        sims = gis.sim_row(0)
        sims[0] = -np.inf
        expected = np.argsort(-sims, kind="stable")[:10]
        keep = np.sort(sims[expected])[::-1] > 0
        assert np.array_equal(idx_after, expected[: keep.sum()])

    def test_errors(self, small_matrix):
        gis = IncrementalGIS(small_matrix)
        with pytest.raises(ValueError):
            gis.add_rating(999, 0, 3.0)
        with pytest.raises(ValueError):
            gis.add_rating(0, 999, 3.0)
        u, i = np.argwhere(~small_matrix.mask)[0]
        with pytest.raises(ValueError, match="no rating"):
            gis.remove_rating(int(u), int(i))

    def test_update_counter(self, small_matrix):
        gis = IncrementalGIS(small_matrix)
        u, i = np.argwhere(~small_matrix.mask)[0]
        gis.add_rating(int(u), int(i), 3.0)
        assert gis.n_updates == 1
