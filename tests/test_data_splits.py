"""Tests for the GivenN experimental protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import GivenNSplit, RatingMatrix, make_split, paper_grid, subsample_heldout


class TestMakeSplit:
    def test_shapes_follow_protocol(self, ml_small):
        sp = make_split(ml_small, n_train_users=80, given_n=8, n_test_users=30)
        assert sp.train.n_users == 80
        assert sp.given.n_users == 30 and sp.heldout.n_users == 30
        assert sp.train.n_items == ml_small.n_items

    def test_test_users_are_the_last_rows(self, ml_small):
        sp = make_split(ml_small, n_train_users=80, given_n=8, n_test_users=30)
        assert sp.active_user_ids.tolist() == list(range(90, 120))
        combined = sp.given.values + sp.heldout.values
        assert np.allclose(combined, ml_small.values[90:])

    def test_exactly_given_n_revealed(self, ml_small):
        sp = make_split(ml_small, n_train_users=80, given_n=8, n_test_users=30)
        assert (sp.given.user_counts() == 8).all()

    def test_given_heldout_partition_ratings(self, ml_small):
        sp = make_split(ml_small, n_train_users=80, given_n=8, n_test_users=30)
        active_mask = ml_small.mask[90:]
        assert np.array_equal(sp.given.mask | sp.heldout.mask, active_mask)
        assert not (sp.given.mask & sp.heldout.mask).any()

    def test_overlap_rejected(self, ml_small):
        with pytest.raises(ValueError, match="overlap"):
            make_split(ml_small, n_train_users=100, given_n=5, n_test_users=30)

    def test_too_few_ratings_rejected(self):
        rm = RatingMatrix.from_triplets(
            [(0, i, 3.0) for i in range(10)] + [(1, 0, 4.0), (1, 1, 4.0)],
            n_users=2,
            n_items=10,
        )
        with pytest.raises(ValueError, match="needs > given_n"):
            make_split(rm, n_train_users=1, given_n=5, n_test_users=1)

    def test_deterministic_by_seed(self, ml_small):
        a = make_split(ml_small, n_train_users=80, given_n=8, n_test_users=30, seed=1)
        b = make_split(ml_small, n_train_users=80, given_n=8, n_test_users=30, seed=1)
        assert a.given == b.given

    def test_name_default(self, ml_small):
        sp = make_split(ml_small, n_train_users=80, given_n=8, n_test_users=30)
        assert sp.name == "ML_80/Given8"

    def test_validation_in_dataclass(self, ml_small):
        sp = make_split(ml_small, n_train_users=80, given_n=8, n_test_users=30)
        with pytest.raises(ValueError, match="both given and held out"):
            GivenNSplit(
                train=sp.train, given=sp.given, heldout=sp.given, given_n=8
            )


class TestTargets:
    def test_targets_arrays_consistent(self, split_small):
        users, items, ratings = split_small.targets_arrays()
        assert users.shape == items.shape == ratings.shape
        assert len(users) == split_small.n_targets
        assert np.all(split_small.heldout.values[users, items] == ratings)

    def test_iter_targets_matches_arrays(self, split_small):
        listed = list(split_small.iter_targets())
        users, items, ratings = split_small.targets_arrays()
        assert len(listed) == len(users)
        assert listed[0] == (users[0], items[0], ratings[0])


class TestPaperGrid:
    def test_grid_keys(self, ml_small):
        grid = paper_grid(
            ml_small, training_sizes=(40, 80), given_sizes=(5, 8), n_test_users=30
        )
        assert set(grid) == {(40, 5), (40, 8), (80, 5), (80, 8)}

    def test_same_given_shares_targets_across_training_sizes(self, ml_small):
        grid = paper_grid(
            ml_small, training_sizes=(40, 80), given_sizes=(5,), n_test_users=30
        )
        assert grid[(40, 5)].given == grid[(80, 5)].given
        assert grid[(40, 5)].heldout == grid[(80, 5)].heldout

    def test_different_given_different_reveals(self, ml_small):
        grid = paper_grid(
            ml_small, training_sizes=(80,), given_sizes=(5, 8), n_test_users=30
        )
        assert grid[(80, 5)].given.n_ratings != grid[(80, 8)].given.n_ratings


class TestSubsampleHeldout:
    def test_full_fraction_is_identity(self, split_small):
        assert subsample_heldout(split_small, 1.0) is split_small

    def test_fraction_scales_users(self, split_small):
        sub = subsample_heldout(split_small, 0.5, seed=0)
        assert sub.n_active_users == 15
        assert sub.train is split_small.train

    def test_rows_align(self, split_small):
        sub = subsample_heldout(split_small, 0.4, seed=0)
        assert sub.given.n_users == sub.heldout.n_users
        assert not (sub.given.mask & sub.heldout.mask).any()

    def test_invalid_fraction(self, split_small):
        for frac in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                subsample_heldout(split_small, frac)

    def test_name_annotated(self, split_small):
        assert "@" in subsample_heldout(split_small, 0.3).name
