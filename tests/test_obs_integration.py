"""Observability wired through the offline pipeline and the serving layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CFSF
from repro.obs import MetricsRegistry, NULL_REGISTRY, use_registry
from repro.serving import PredictionService
from repro.serving.breaker import CircuitBreaker, CircuitState
from repro.serving.faults import FlakyRecommender, ManualClock
from repro.utils.timing import TimingResult, time_call

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def fit_registry(split_small):
    """A registry observing one full offline fit."""
    registry = MetricsRegistry()
    with use_registry(registry):
        model = CFSF(n_clusters=8, top_m_items=30, top_k_users=10).fit(
            split_small.train
        )
    return registry, model


class TestOfflineSpans:
    def test_fit_produces_the_nested_span_tree(self, fit_registry):
        registry, _ = fit_registry
        by_name = {rec["name"]: rec for rec in registry.spans()}
        assert set(by_name) >= {
            "model.fit",
            "gis.build",
            "cluster.fit",
            "smooth.apply",
            "icluster.build",
        }
        root = by_name["model.fit"]
        assert root["parent"] is None and root["depth"] == 0
        for child in ("gis.build", "cluster.fit", "smooth.apply", "icluster.build"):
            assert by_name[child]["parent"] == "model.fit", child
            assert by_name[child]["depth"] == 1
        # Children are nested in time, not just in name.
        assert root["duration"] >= sum(
            by_name[c]["duration"]
            for c in ("gis.build", "cluster.fit", "smooth.apply", "icluster.build")
        ) * 0.99

    def test_spans_carry_stage_attributes(self, fit_registry, split_small):
        registry, _ = fit_registry
        by_name = {rec["name"]: rec for rec in registry.spans()}
        assert by_name["gis.build"]["attrs"]["n_items"] == split_small.train.n_items
        assert "sparsity" in by_name["gis.build"]["attrs"]
        assert by_name["cluster.fit"]["attrs"]["n_clusters"] == 8
        assert by_name["cluster.fit"]["attrs"]["n_iter"] >= 1
        assert 0.0 <= by_name["smooth.apply"]["attrs"]["smoothed_fraction"] <= 1.0

    def test_span_durations_surface_as_histograms(self, fit_registry):
        registry, _ = fit_registry
        for name in ("span.model.fit", "span.gis.build", "span.cluster.fit"):
            assert registry.histogram(name).count == 1, name

    def test_fit_without_registry_records_nothing(self, split_small):
        before = len(NULL_REGISTRY.spans())
        CFSF(n_clusters=4, top_m_items=20, top_k_users=5).fit(split_small.train)
        assert len(NULL_REGISTRY.spans()) == before == 0


class TestServiceMetrics:
    @pytest.fixture()
    def served(self, cfsf_small, split_small):
        registry = MetricsRegistry()
        service = PredictionService(cfsf_small, metrics=registry)
        users, items, _ = split_small.targets_arrays()
        for start in (0, 40, 80):
            service.predict_many(
                split_small.given, users[start : start + 40], items[start : start + 40]
            )
        return registry, service

    def test_request_counters_and_latency(self, served):
        registry, _ = served
        assert registry.counter_value("serving.requests") == 120
        latency = registry.histogram("serving.request.latency")
        assert latency.count == 3  # one observation per predict_many batch
        assert latency.sum > 0.0

    def test_fallback_counters_account_for_every_request(self, served):
        registry, service = served
        total = sum(
            registry.counter_value("serving.fallback", stage=name)
            for name in service.stage_names
        )
        assert total == 120
        assert registry.counter_value("serving.fallback", stage="CFSF") == 120

    def test_stage_failures_counted(self, cfsf_small, split_small):
        registry = MetricsRegistry()
        service = PredictionService(
            FlakyRecommender(cfsf_small, fail_times=1),
            metrics=registry,
            failure_threshold=3,
        )
        users, items, _ = split_small.targets_arrays()
        service.predict_many(split_small.given, users[:20], items[:20])
        # The injected failure hits the whole-batch fast path; the
        # per-user-block retry then reaches the healed CFSF, so the
        # failure is counted but every request still serves at level 0.
        assert registry.counter_value("serving.stage.failures", stage="CFSF") == 1
        assert registry.counter_value("serving.fallback", stage="CFSF") == 20
        assert registry.counter_value("serving.degraded") == 0

    def test_health_extension_and_backward_compat(self, served):
        registry, service = served
        health = service.health()
        # Pre-observability keys survive untouched.
        for key in (
            "model",
            "model_version",
            "stages",
            "breakers",
            "requests_total",
            "invalid_total",
            "deadline_deferred_total",
            "reloads_ok",
            "reloads_failed",
            "last_reload_error",
        ):
            assert key in health, key
        # New cumulative keys, sourced from the registry.
        assert health["metrics_enabled"] is True
        assert health["requests_total"] == 120
        assert health["sanitized_total"] == 0
        assert health["degraded_total"] == 0
        assert set(health["breaker_open_seconds"]) == set(service.stage_names)
        latency = health["latency"]
        assert latency["count"] == 3
        assert 0.0 < latency["p50"] <= latency["p95"] <= latency["p99"]

    def test_health_without_registry_keeps_working(self, cfsf_small, split_small):
        service = PredictionService(cfsf_small)  # ambient default: disabled
        users, items, _ = split_small.targets_arrays()
        service.predict_many(split_small.given, users[:20], items[:20])
        health = service.health()
        assert health["metrics_enabled"] is False
        assert health["requests_total"] == 20  # attribute counter still counts
        assert "latency" not in health

    def test_attribute_counters_match_registry(self, served):
        _, service = served
        health = service.health()
        assert service.requests_total == health["requests_total"]
        assert service.degraded_total == health["degraded_total"]


class TestBreakerMetrics:
    def _failing_breaker(self, registry, clock):
        return CircuitBreaker(
            "CFSF",
            failure_threshold=2,
            reset_timeout=1.0,
            jitter=0.0,
            clock=clock,
            metrics=registry,
        )

    def test_transitions_counted_per_state(self):
        registry = MetricsRegistry()
        clock = ManualClock()
        breaker = self._failing_breaker(registry, clock)
        breaker.record_failure()
        breaker.record_failure()  # trips: closed -> open
        assert breaker.state is CircuitState.OPEN
        clock.advance(1.0)
        assert breaker.allow()  # open -> half_open
        breaker.record_success()  # half_open -> closed
        value = lambda to: registry.counter_value(
            "breaker.transitions", breaker="CFSF", to=to
        )
        assert value("open") == 1
        assert value("half_open") == 1
        assert value("closed") == 1

    def test_open_seconds_accumulate_exactly(self):
        registry = MetricsRegistry()
        clock = ManualClock()
        breaker = self._failing_breaker(registry, clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(0.75)
        assert breaker.open_seconds() == pytest.approx(0.75)
        clock.advance(0.25)
        breaker.allow()  # half-open after the full 1.0s delay
        breaker.record_success()
        assert breaker.open_seconds() == pytest.approx(1.0)
        assert breaker.snapshot()["open_seconds"] == pytest.approx(1.0)
        gauge = registry.gauge("breaker.open.seconds", breaker="CFSF")
        assert gauge.value == pytest.approx(1.0)

    def test_reopen_extends_cumulative_open_time(self):
        registry = MetricsRegistry()
        clock = ManualClock()
        breaker = self._failing_breaker(registry, clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_failure()  # half-open probe fails: re-open
        clock.advance(0.5)
        assert breaker.open_seconds() == pytest.approx(1.5)
        assert (
            registry.counter_value("breaker.transitions", breaker="CFSF", to="open")
            == 2
        )

    def test_unnamed_breaker_gets_a_label(self):
        registry = MetricsRegistry()
        breaker = CircuitBreaker(failure_threshold=1, metrics=registry)
        breaker.record_failure()
        assert (
            registry.counter_value("breaker.transitions", breaker="unnamed", to="open")
            == 1
        )


class TestTimeCallRegistry:
    def test_records_each_repeat(self):
        registry = MetricsRegistry()
        result = time_call(sum, range(100), repeats=4, registry=registry)
        assert isinstance(result, TimingResult)
        assert result.value == 4950 and len(result.seconds) == 4
        hist = registry.histogram("timing.time_call")
        assert hist.count == 4
        assert hist.sum == pytest.approx(result.total, rel=0.05)

    def test_custom_metric_name(self):
        registry = MetricsRegistry()
        time_call(sum, range(10), repeats=2, registry=registry, metric="fig5.online")
        assert registry.histogram("fig5.online").count == 2

    def test_disabled_or_absent_registry_records_nothing(self):
        result = time_call(sum, range(10), repeats=2, registry=NULL_REGISTRY)
        assert len(result.seconds) == 2
        assert NULL_REGISTRY.histogram("timing.time_call").count == 0
        # And the default (no registry) path is unchanged.
        assert len(time_call(sum, range(10), repeats=2).seconds) == 2


class TestDisabledOverheadPath:
    def test_disabled_predictions_are_bit_identical(self, cfsf_small, split_small):
        users, items, _ = split_small.targets_arrays()
        baseline = PredictionService(cfsf_small).predict_many(
            split_small.given, users[:60], items[:60]
        )
        observed = PredictionService(
            cfsf_small, metrics=MetricsRegistry()
        ).predict_many(split_small.given, users[:60], items[:60])
        np.testing.assert_array_equal(
            baseline.predictions, observed.predictions
        )
        np.testing.assert_array_equal(
            baseline.fallback_level, observed.fallback_level
        )
