"""Tests for :class:`repro.serving.PredictionService`.

The service's contract is the acceptance criterion of the robustness
work: **every request gets a prediction**, no matter which layers are
down, and the result reports *how* each answer was produced
(``fallback_level`` / ``invalid`` / ``sanitized`` /
``deadline_deferred``).

The chain serves per-user blocks, so tests that need several
primary-stage attempts within one batch use requests spanning several
distinct users (the split's target arrays are user-sorted; a
single-user slice would exercise only one block).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CFSF, save_model
from repro.parallel import ParallelPredictor
from repro.serving import (
    InvalidRequestError,
    ModelUnavailableError,
    PredictionService,
    SnapshotCorruptError,
)
from repro.serving.faults import (
    FlakyRecommender,
    KillWorkerOnce,
    ManualClock,
    SlowRecommender,
    corrupt_snapshot,
    poison_given,
)


@pytest.fixture(scope="module")
def reqs(split_small):
    """One request per active user for eight distinct users.

    Eight distinct users means eight per-user blocks, i.e. eight
    independent walks of the fallback chain per ``predict_many`` call.
    """
    users, items, _ = split_small.targets_arrays()
    _, first = np.unique(users, return_index=True)
    idx = np.sort(first[:8])
    return users[idx], items[idx]


@pytest.fixture(scope="module")
def batch(split_small):
    """A shuffled 60-request batch spanning many users."""
    users, items, _ = split_small.targets_arrays()
    sel = np.random.default_rng(5).permutation(users.size)[:60]
    return users[sel], items[sel]


def make_service(model, **overrides) -> PredictionService:
    """A service with deterministic breaker timing (no jitter)."""
    kwargs = dict(jitter=0.0, reset_timeout=1.0, failure_threshold=3)
    kwargs.update(overrides)
    return PredictionService(model, **kwargs)


class TestHealthyPath:
    def test_matches_bare_model(self, cfsf_small, split_small, batch):
        users, items = batch
        service = make_service(cfsf_small)
        result = service.predict_many(split_small.given, users, items)
        expected = cfsf_small.predict_many(split_small.given, users, items)
        assert np.allclose(result.predictions, expected)
        assert (result.fallback_level == 0).all()
        assert not result.degraded.any()
        assert result.degraded_fraction == 0.0

    def test_stage_names(self, cfsf_small):
        service = make_service(cfsf_small)
        assert service.stage_names == (
            str(cfsf_small.name), "item_knn", "user_mean", "global_mean"
        )

    def test_level_counts_cover_batch(self, cfsf_small, split_small, batch):
        users, items = batch
        service = make_service(cfsf_small)
        result = service.predict_many(split_small.given, users, items)
        counts = result.level_counts()
        assert counts[str(cfsf_small.name)] == len(result) == users.size
        assert sum(counts.values()) == users.size

    def test_single_request_wrapper(self, cfsf_small, split_small, reqs):
        users, items = reqs
        service = make_service(cfsf_small)
        single = service.predict(split_small.given, int(users[0]), int(items[0]))
        many = service.predict_many(split_small.given, users[:1], items[:1])
        assert single == pytest.approx(float(many.predictions[0]))

    def test_counters_accumulate(self, cfsf_small, split_small, reqs):
        users, items = reqs
        service = make_service(cfsf_small)
        service.predict_many(split_small.given, users, items)
        service.predict_many(split_small.given, users, items)
        assert service.requests_total == 2 * users.size
        health = service.health()
        assert health["requests_total"] == 2 * users.size
        assert health["model_version"] == 1
        assert health["breakers"][str(cfsf_small.name)]["state"] == "closed"

    def test_no_gis_model_gets_shorter_chain(self, split_small):
        from repro.baselines import MeanPredictor

        model = MeanPredictor().fit(split_small.train)
        service = make_service(model)
        assert "item_knn" not in service.stage_names
        assert service.stage_names[-2:] == ("user_mean", "global_mean")


class TestValidation:
    def test_mismatched_shapes_raise(self, cfsf_small, split_small):
        service = make_service(cfsf_small)
        with pytest.raises(InvalidRequestError):
            service.predict_many(split_small.given, np.array([0, 1]), np.array([0]))

    def test_non_integer_requests_raise(self, cfsf_small, split_small):
        service = make_service(cfsf_small)
        with pytest.raises(InvalidRequestError):
            service.predict_many(split_small.given, ["zero"], ["one"])

    def test_out_of_range_ids_are_answered_and_flagged(self, cfsf_small, split_small):
        service = make_service(cfsf_small)
        users = np.array([0, 10_000, -1])
        items = np.array([0, 0, 0])
        result = service.predict_many(split_small.given, users, items)
        assert result.invalid.tolist() == [False, True, True]
        assert np.isfinite(result.predictions).all()
        lo, hi = split_small.given.rating_scale
        assert ((result.predictions >= lo) & (result.predictions <= hi)).all()
        # Invalid requests come from the terminal stage; valid one is primary.
        assert result.fallback_level[0] == 0
        assert (result.fallback_level[1:] == len(service.stage_names) - 1).all()
        assert service.invalid_total == 2

    def test_strict_mode_raises_on_bad_id(self, cfsf_small, split_small):
        service = make_service(cfsf_small, strict=True)
        with pytest.raises(InvalidRequestError, match="out of range"):
            service.predict_many(
                split_small.given, np.array([10_000]), np.array([0])
            )

    def test_wrong_item_space_all_invalid(self, cfsf_small, tiny_rm):
        service = make_service(cfsf_small)
        result = service.predict_many(tiny_rm, np.array([0, 1]), np.array([0, 1]))
        assert result.invalid.all()
        assert np.isfinite(result.predictions).all()

    def test_wrong_item_space_strict_raises(self, cfsf_small, tiny_rm):
        service = make_service(cfsf_small, strict=True)
        with pytest.raises(InvalidRequestError, match="items"):
            service.predict_many(tiny_rm, np.array([0]), np.array([0]))

    def test_invalid_request_error_is_value_error(self):
        assert issubclass(InvalidRequestError, ValueError)


class TestConstruction:
    def test_requires_model_or_snapshot(self):
        with pytest.raises(ModelUnavailableError):
            PredictionService()

    def test_rejects_unfitted_model(self):
        with pytest.raises(ModelUnavailableError, match="not fitted"):
            PredictionService(CFSF())

    def test_boots_from_snapshot(self, cfsf_small, split_small, reqs, tmp_path):
        snap = str(tmp_path / "model.npz")
        save_model(cfsf_small, snap)
        service = PredictionService(snapshot_path=snap)
        users, items = reqs
        result = service.predict_many(split_small.given, users, items)
        expected = cfsf_small.predict_many(split_small.given, users, items)
        assert np.allclose(result.predictions, expected)
        assert (result.fallback_level == 0).all()

    @pytest.mark.faults
    def test_corrupt_initial_snapshot_raises(self, cfsf_small, tmp_path):
        snap = str(tmp_path / "model.npz")
        save_model(cfsf_small, snap)
        corrupt_snapshot(snap)
        clock = ManualClock()
        with pytest.raises(ModelUnavailableError):
            PredictionService(snapshot_path=snap, sleep=clock.sleep)


@pytest.mark.faults
class TestFallbackChain:
    def test_dead_primary_served_by_item_knn(self, cfsf_small, split_small, batch):
        users, items = batch
        flaky = FlakyRecommender(cfsf_small, fail_times=None)
        service = make_service(flaky)
        result = service.predict_many(split_small.given, users, items)
        assert (result.fallback_level == 1).all()
        assert result.level_counts()["item_knn"] == users.size
        assert result.degraded.all()
        assert np.isfinite(result.predictions).all()
        lo, hi = split_small.given.rating_scale
        assert ((result.predictions >= lo) & (result.predictions <= hi)).all()

    def test_stage_failures_reported(self, cfsf_small, split_small, reqs):
        users, items = reqs
        service = make_service(FlakyRecommender(cfsf_small, fail_times=None))
        result = service.predict_many(split_small.given, users, items)
        assert result.errors
        assert all(f.stage == str(cfsf_small.name) for f in result.errors)
        assert "injected stage failure" in result.errors[0].error

    def test_breaker_opens_after_threshold_and_recovers(
        self, cfsf_small, split_small, reqs
    ):
        """The acceptance-criterion breaker scenario, deterministically.

        Three consecutive primary failures (three per-user blocks) trip
        the circuit; subsequent blocks and batches skip the primary
        without calling it; after the backoff elapses, a half-open
        probe succeeds and the whole chain is healthy again.
        """
        users, items = reqs
        clock = ManualClock()
        flaky = FlakyRecommender(cfsf_small, fail_times=3)
        service = make_service(flaky, clock=clock, sleep=clock.sleep)
        primary = str(cfsf_small.name)

        result = service.predict_many(split_small.given, users, items)
        # Blocks 1-3 failed the primary (tripping the breaker); the
        # remaining blocks skipped it.  All were answered by item-KNN.
        assert flaky.failures_injected == 3
        assert service.breaker_states()[primary] == "open"
        assert (result.fallback_level == 1).all()
        assert np.isfinite(result.predictions).all()

        # While open, the primary is not even attempted.
        calls_before = flaky.calls
        result2 = service.predict_many(split_small.given, users, items)
        assert flaky.calls == calls_before
        assert (result2.fallback_level == 1).all()

        # After the backoff the probe is let through; the stage has
        # healed, so the breaker closes and level 0 serves again.
        clock.advance(1.01)
        result3 = service.predict_many(split_small.given, users, items)
        assert service.breaker_states()[primary] == "closed"
        assert (result3.fallback_level == 0).all()
        expected = cfsf_small.predict_many(split_small.given, users, items)
        assert np.allclose(result3.predictions, expected)

    def test_no_gis_chain_falls_to_user_mean(self, split_small, reqs):
        from repro.baselines import MeanPredictor

        users, items = reqs
        # No gis attribute -> no item_knn stage; a dead primary drops
        # straight to the user-mean stage.
        flaky = FlakyRecommender(
            MeanPredictor().fit(split_small.train), fail_times=None
        )
        service = make_service(flaky)
        result = service.predict_many(split_small.given, users, items)
        cheap = service.stage_names.index("user_mean")
        assert (result.fallback_level == cheap).all()
        assert np.isfinite(result.predictions).all()


@pytest.mark.faults
class TestSanitization:
    def test_poisoned_given_is_sanitized_and_served(
        self, cfsf_small, split_small, reqs
    ):
        users, items = reqs
        bad_users = [int(users[0]), int(users[1])]
        poisoned = poison_given(
            split_small.given,
            [(bad_users[0], 0, float("nan")), (bad_users[1], 1, 99.0)],
        )
        service = make_service(cfsf_small)
        result = service.predict_many(poisoned, users, items)
        assert np.isfinite(result.predictions).all()
        assert result.sanitized.tolist() == [u in bad_users for u in users]
        assert result.degraded.tolist() == [u in bad_users for u in users]
        # Sanitisation repairs only the poisoned rows: everyone else is
        # served exactly as from the clean matrix.
        clean = make_service(cfsf_small).predict_many(split_small.given, users, items)
        untouched = ~result.sanitized
        assert np.allclose(
            result.predictions[untouched], clean.predictions[untouched]
        )

    def test_bare_model_rejects_poisoned_given(self, cfsf_small, split_small, reqs):
        users, items = reqs
        poisoned = poison_given(split_small.given, [(int(users[0]), 0, float("nan"))])
        with pytest.raises(InvalidRequestError, match="non-finite"):
            cfsf_small.predict_many(poisoned, users, items)

    def test_bare_model_rejects_out_of_scale(self, cfsf_small, split_small, reqs):
        users, items = reqs
        poisoned = poison_given(split_small.given, [(int(users[0]), 0, 99.0)])
        with pytest.raises(InvalidRequestError):
            cfsf_small.predict_many(poisoned, users, items)

    def test_sanitisation_memoised_by_identity(self, cfsf_small, split_small, reqs):
        users, items = reqs
        poisoned = poison_given(split_small.given, [(int(users[0]), 0, float("nan"))])
        service = make_service(cfsf_small)
        first = service.predict_many(poisoned, users, items)
        memo = service._sanitize_memo
        second = service.predict_many(poisoned, users, items)
        assert service._sanitize_memo is memo
        assert np.array_equal(first.predictions, second.predictions)

    def test_clean_given_not_copied(self, cfsf_small, split_small, reqs):
        service = make_service(cfsf_small)
        cleaned, flagged = service._sanitize_given(split_small.given)
        assert cleaned is split_small.given
        assert not flagged.any()


@pytest.mark.faults
class TestDeadline:
    def test_partial_batch_defers_to_user_mean(self, cfsf_small, split_small, reqs):
        users, items = reqs
        clock = ManualClock()
        slow = SlowRecommender(cfsf_small, delay=0.1, sleep=clock.sleep)
        service = make_service(slow, clock=clock)
        result = service.predict_many(
            split_small.given, users, items, deadline=0.25
        )
        # Three 0.1s blocks fit the 0.25s budget (the check precedes
        # each block); the remaining five are deferred.
        assert result.deadline_hit
        assert int(result.deadline_deferred.sum()) == 5
        served = ~result.deadline_deferred
        assert (result.fallback_level[served] == 0).all()
        cheap = service.stage_names.index("user_mean")
        assert (result.fallback_level[result.deadline_deferred] == cheap).all()
        assert np.isfinite(result.predictions).all()
        assert service.deadline_deferred_total == 5

    def test_zero_deadline_defers_everything(self, cfsf_small, split_small, reqs):
        users, items = reqs
        clock = ManualClock()
        service = make_service(cfsf_small, clock=clock)
        result = service.predict_many(split_small.given, users, items, deadline=0.0)
        assert result.deadline_deferred.all()
        assert result.degraded.all()
        assert np.isfinite(result.predictions).all()

    def test_generous_deadline_serves_everything(self, cfsf_small, split_small, reqs):
        users, items = reqs
        service = make_service(cfsf_small)
        result = service.predict_many(split_small.given, users, items, deadline=60.0)
        assert not result.deadline_hit
        assert not result.deadline_deferred.any()
        assert (result.fallback_level == 0).all()


@pytest.mark.faults
class TestReload:
    def _snapshot(self, model, tmp_path, name="model.npz") -> str:
        path = str(tmp_path / name)
        save_model(model, path)
        return path

    def test_corrupt_snapshot_keeps_last_known_good(
        self, cfsf_small, split_small, reqs, tmp_path
    ):
        snap = self._snapshot(cfsf_small, tmp_path)
        clock = ManualClock()
        service = make_service(cfsf_small, snapshot_path=snap, sleep=clock.sleep)
        corrupt_snapshot(snap)
        assert service.reload() is False
        assert service.reloads_failed == 1
        assert isinstance(service.last_reload_error, SnapshotCorruptError)
        assert service.model_version == 1
        # Still serving, at full quality, from the last-known-good model.
        users, items = reqs
        result = service.predict_many(split_small.given, users, items)
        assert (result.fallback_level == 0).all()
        assert service.health()["last_reload_error"] is not None

    def test_successful_reload_bumps_version(self, cfsf_small, tmp_path):
        snap = self._snapshot(cfsf_small, tmp_path)
        service = make_service(cfsf_small, snapshot_path=snap)
        assert service.reload() is True
        assert service.reloads_ok == 1
        assert service.model_version == 2
        # Breakers survive the swap (operational history is not reset).
        assert set(service.breaker_states()) == set(service.stage_names)

    def test_missing_snapshot_keeps_serving(self, cfsf_small, tmp_path):
        clock = ManualClock()
        service = make_service(cfsf_small, sleep=clock.sleep)
        assert service.reload(str(tmp_path / "nope.npz")) is False
        assert service.reloads_failed == 1
        assert isinstance(service.last_reload_error, FileNotFoundError)

    def test_reload_without_path_raises(self, cfsf_small):
        service = make_service(cfsf_small)
        with pytest.raises(ValueError, match="no snapshot path"):
            service.reload()

    def test_retry_backoff_doubles(self, cfsf_small, tmp_path):
        clock = ManualClock()
        service = make_service(
            cfsf_small, reload_retries=3, reload_backoff=0.05, sleep=clock.sleep
        )
        assert service.reload(str(tmp_path / "nope.npz")) is False
        # Three attempts -> two sleeps, doubling.
        assert clock.sleeps == [pytest.approx(0.05), pytest.approx(0.1)]


@pytest.mark.faults
class TestAcceptanceScenario:
    def test_faults_everywhere_every_request_answered(
        self, cfsf_small, split_small, reqs, tmp_path
    ):
        """The issue's acceptance criterion, end to end.

        Corrupted snapshot + killed pool worker + three consecutive
        primary-stage failures: every request still gets a finite
        in-scale prediction, each one reports its fallback level, and
        the breaker demonstrably opens and then recovers.
        """
        users, items = reqs
        lo, hi = split_small.given.rating_scale

        # Fault 1: the snapshot on disk is corrupted -> reload fails,
        # the service keeps the last-known-good model.
        snap = str(tmp_path / "model.npz")
        save_model(cfsf_small, snap)
        corrupt_snapshot(snap)
        clock = ManualClock()
        flaky = FlakyRecommender(cfsf_small, fail_times=3)
        service = make_service(
            flaky, snapshot_path=snap, clock=clock, sleep=clock.sleep
        )
        assert service.reload() is False
        assert isinstance(service.last_reload_error, SnapshotCorruptError)

        # Fault 2: the primary stage fails three consecutive times ->
        # the breaker opens, the batch degrades to item-KNN, and every
        # request is still answered.
        result = service.predict_many(split_small.given, users, items)
        assert len(result) == users.size
        assert np.isfinite(result.predictions).all()
        assert ((result.predictions >= lo) & (result.predictions <= hi)).all()
        assert (result.fallback_level == 1).all()
        assert result.degraded.all()
        assert service.breaker_states()[str(cfsf_small.name)] == "open"

        # Fault 3: a pool worker is killed mid-batch -> the batch is
        # retried on a respawned pool and completes bit-identically.
        hook = KillWorkerOnce(str(tmp_path / "kill.flag")).arm()
        with ParallelPredictor(cfsf_small, n_workers=2, worker_hook=hook) as pp:
            par = pp.predict_many(split_small.given, users, items)
            assert pp.crash_recoveries >= 1
        assert np.allclose(
            par, cfsf_small.predict_many(split_small.given, users, items)
        )

        # Recovery: once the backoff elapses the healed primary serves
        # at level 0 again.
        clock.advance(1.5)
        recovered = service.predict_many(split_small.given, users, items)
        assert service.breaker_states()[str(cfsf_small.name)] == "closed"
        assert (recovered.fallback_level == 0).all()
