"""Additional coverage for GridResult and protocol result helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.protocol import EvaluationResult
from repro.eval.runner import GridResult


def _result(name: str, split: str, mae: float, predict_s: float = 0.1) -> EvaluationResult:
    return EvaluationResult(
        model_name=name,
        split_name=split,
        mae=mae,
        rmse=mae * 1.2,
        n_targets=100,
        fit_seconds=0.5,
        predict_seconds=predict_s,
    )


class TestGridResult:
    def test_mae_map(self):
        grid = GridResult(results=(_result("A", "s1", 0.7), _result("B", "s1", 0.8)))
        assert grid.mae_map() == {("s1", "A"): 0.7, ("s1", "B"): 0.8}

    def test_by_method_preserves_order(self):
        grid = GridResult(
            results=(
                _result("A", "s1", 0.7),
                _result("B", "s1", 0.8),
                _result("A", "s2", 0.6),
            )
        )
        a_results = grid.by_method("A")
        assert [r.split_name for r in a_results] == ["s1", "s2"]

    def test_best_method_per_split(self):
        grid = GridResult(
            results=(
                _result("A", "s1", 0.7),
                _result("B", "s1", 0.65),
                _result("A", "s2", 0.6),
                _result("B", "s2", 0.61),
            )
        )
        assert grid.best_method_per_split() == {"s1": "B", "s2": "A"}

    def test_empty_grid(self):
        grid = GridResult(results=())
        assert grid.mae_map() == {}
        assert grid.best_method_per_split() == {}


class TestEvaluationResult:
    def test_throughput(self):
        res = _result("A", "s", 0.7, predict_s=0.5)
        assert res.throughput == pytest.approx(200.0)

    def test_throughput_zero_time(self):
        res = EvaluationResult(
            model_name="A", split_name="s", mae=0.7, rmse=0.8,
            n_targets=10, fit_seconds=0.0, predict_seconds=0.0,
        )
        assert res.throughput == 0.0

    def test_light_strips_payload(self):
        res = EvaluationResult(
            model_name="A", split_name="s", mae=0.7, rmse=0.8,
            n_targets=3, fit_seconds=0.1, predict_seconds=0.1,
            predictions=np.zeros(3),
        )
        light = res.light()
        assert light.predictions is None
        assert light.mae == res.mae and light.model_name == res.model_name
