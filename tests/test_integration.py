"""Integration tests: the paper's headline claims, end to end, on the
small fixture (a scaled-down Table II/III plus the Fig. 5 contract)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    EMDP,
    SCBPCC,
    AspectModel,
    ItemBasedCF,
    MeanPredictor,
    PersonalityDiagnosis,
    SimilarityFusion,
    SlopeOne,
    UserBasedCF,
)
from repro.core import CFSF
from repro.eval import evaluate, mae, run_grid


SMALL_CFSF = dict(n_clusters=8, top_m_items=30, top_k_users=10)


@pytest.fixture(scope="module")
def lineup_maes(split_small):
    users, items, truth = split_small.targets_arrays()
    out = {}
    models = {
        "CFSF": CFSF(**SMALL_CFSF),
        "SIR": ItemBasedCF(),
        "SUR": UserBasedCF(mean_offset=False),
        "SF": SimilarityFusion(top_k_users=15, top_m_items=20),
        "SCBPCC": SCBPCC(n_clusters=8, top_k=10),
        "EMDP": EMDP(),
        "AM": AspectModel(n_aspects=8, n_iter=15),
        "PD": PersonalityDiagnosis(),
        "Mean": MeanPredictor("user_item"),
        "SlopeOne": SlopeOne(),
    }
    for name, model in models.items():
        model.fit(split_small.train)
        out[name] = mae(truth, model.predict_many(split_small.given, users, items))
    return out


class TestHeadlineOrderings:
    def test_cfsf_beats_traditional_memory_cf(self, lineup_maes):
        """Table II's claim: CFSF < SUR and CFSF < SIR."""
        assert lineup_maes["CFSF"] < lineup_maes["SUR"]
        assert lineup_maes["CFSF"] < lineup_maes["SIR"]

    def test_cfsf_best_of_paper_lineup(self, lineup_maes):
        """Table III's claim: CFSF wins against the state of the art."""
        paper_methods = ("SIR", "SUR", "SF", "SCBPCC", "EMDP", "AM", "PD")
        for method in paper_methods:
            assert lineup_maes["CFSF"] <= lineup_maes[method] + 1e-9, method

    def test_every_method_in_sane_band(self, lineup_maes):
        for name, value in lineup_maes.items():
            assert 0.4 < value < 1.3, (name, value)


class TestTrendsAcrossProtocol:
    """The Tables II/III trends (MAE falls with training size and
    GivenN) are sparsity effects; they need the paper-scale matrix, so
    these two tests run on the full 500x1000 generator output with a
    reduced test population for speed."""

    @pytest.fixture(scope="class")
    def paper_scale(self):
        from repro.data import make_movielens_like

        return make_movielens_like(seed=0).ratings

    def test_mae_improves_with_training_size(self, paper_scale):
        grid = run_grid(
            paper_scale,
            {"CFSF": lambda: CFSF()},
            training_sizes=(100, 300),
            given_sizes=(10,),
            n_test_users=60,
        )
        maes = grid.mae_map()
        assert maes[("ML_300/Given10", "CFSF")] < maes[("ML_100/Given10", "CFSF")]

    def test_mae_improves_with_given_n(self, paper_scale):
        grid = run_grid(
            paper_scale,
            {"CFSF": lambda: CFSF()},
            training_sizes=(300,),
            given_sizes=(5, 20),
            n_test_users=60,
        )
        maes = grid.mae_map()
        assert maes[("ML_300/Given20", "CFSF")] < maes[("ML_300/Given5", "CFSF")]


class TestScalabilityContract:
    def test_online_time_grows_with_testset(self, split_small):
        """Fig. 5's x-axis contract: more active users => more online
        time, and the relationship is near-linear (sublinear allowed
        through caching, superquadratic not)."""
        from repro.data import subsample_heldout
        from repro.eval import evaluate_fitted

        model = CFSF(**SMALL_CFSF).fit(split_small.train)
        times = {}
        for frac in (0.25, 1.0):
            sub = subsample_heldout(split_small, frac, seed=0)
            best = min(
                evaluate_fitted(model, sub).predict_seconds for _ in range(3)
            )
            times[frac] = best
        assert times[1.0] > times[0.25]
        assert times[1.0] < times[0.25] * 16  # far below quadratic blowup

    def test_offline_dominates_online_for_cfsf(self, split_small):
        res = evaluate(CFSF(**SMALL_CFSF), split_small)
        assert res.fit_seconds > 0
        # the design point: per-request online work is tiny
        per_request_ms = res.predict_seconds / res.n_targets * 1e3
        assert per_request_ms < 10.0


class TestActiveUserFoldIn:
    def test_prediction_uses_given_profile(self, split_small):
        """An active user's given ratings must influence their
        predictions (protocol sanity: the model is personalising, not
        just predicting item averages)."""
        model = CFSF(**SMALL_CFSF).fit(split_small.train)
        users, items, _ = split_small.targets_arrays()
        preds = model.predict_many(split_small.given, users, items)
        item_means = split_small.train.item_means()
        baseline = item_means[items]
        # Not identical to the unpersonalised item means.
        assert not np.allclose(preds, np.clip(baseline, 1, 5), atol=0.05)

    def test_two_active_users_differ(self, split_small):
        model = CFSF(**SMALL_CFSF).fit(split_small.train)
        item = int(np.nonzero(~split_small.given.mask[0] & ~split_small.given.mask[1])[0][0])
        p0 = model.predict(split_small.given, 0, item)
        p1 = model.predict(split_small.given, 1, item)
        # Distinct profiles should (generically) give distinct scores.
        assert p0 != pytest.approx(p1, abs=1e-12)
