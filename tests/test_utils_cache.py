"""Unit tests for the LRU cache behind CFSF's online phase."""

from __future__ import annotations

import pytest

from repro.utils.cache import LRUCache


class TestBasics:
    def test_put_get_roundtrip(self):
        c = LRUCache(4)
        c.put("a", 1)
        assert c.get("a") == 1

    def test_missing_returns_default(self):
        c = LRUCache(4)
        assert c.get("nope") is None
        assert c.get("nope", 42) == 42

    def test_len_and_contains(self):
        c = LRUCache(4)
        c.put("a", 1)
        assert len(c) == 1 and "a" in c and "b" not in c

    def test_overwrite_does_not_grow(self):
        c = LRUCache(4)
        c.put("a", 1)
        c.put("a", 2)
        assert len(c) == 1 and c.get("a") == 2

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)


class TestEviction:
    def test_lru_order(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")          # refresh a
        c.put("c", 3)       # evicts b
        assert "a" in c and "c" in c and "b" not in c

    def test_put_refreshes_recency(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)      # refresh a by overwrite
        c.put("c", 3)       # evicts b
        assert c.get("a") == 10 and "b" not in c

    def test_zero_capacity_disables_caching(self):
        c = LRUCache(0)
        c.put("a", 1)
        assert len(c) == 0 and c.get("a") is None


class TestCounters:
    def test_hit_miss_accounting(self):
        c = LRUCache(4)
        c.put("a", 1)
        c.get("a")
        c.get("b")
        assert (c.hits, c.misses) == (1, 1)
        assert c.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert LRUCache(4).hit_rate == 0.0

    def test_clear_resets_everything(self):
        c = LRUCache(4)
        c.put("a", 1)
        c.get("a")
        c.clear()
        assert len(c) == 0 and c.hits == 0 and c.misses == 0


class TestGetOrCompute:
    def test_computes_once(self):
        c = LRUCache(4)
        calls = []
        for _ in range(3):
            v = c.get_or_compute("k", lambda: calls.append(1) or "value")
        assert v == "value" and len(calls) == 1

    def test_caches_none_values(self):
        """A factory returning None must still be cached (sentinel test)."""
        c = LRUCache(4)
        calls = []
        for _ in range(2):
            c.get_or_compute("k", lambda: calls.append(1))
        assert len(calls) == 1
