"""Unit tests for repro.utils.rng and repro.utils.timing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_seeds
from repro.utils.timing import Stopwatch, time_call


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_generator(42).integers(0, 100, 10)
        b = as_generator(42).integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_numpy_int_accepted(self):
        assert isinstance(as_generator(np.int64(3)), np.random.Generator)

    def test_rejects_bool_and_str(self):
        with pytest.raises(TypeError):
            as_generator(True)
        with pytest.raises(TypeError):
            as_generator("7")


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        assert spawn_seeds(0, 5) == spawn_seeds(0, 5)
        assert len(spawn_seeds(0, 5)) == 5

    def test_distinct(self):
        seeds = spawn_seeds(0, 16)
        assert len(set(seeds)) == 16

    def test_zero_ok_negative_raises(self):
        assert spawn_seeds(0, 0) == []
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_shared_generator_advances(self):
        g = np.random.default_rng(0)
        a = spawn_seeds(g, 3)
        b = spawn_seeds(g, 3)
        assert a != b


class TestStopwatch:
    def test_accumulates_laps(self):
        sw = Stopwatch()
        for _ in range(3):
            with sw:
                sum(range(100))
        assert sw.laps == 3 and sw.elapsed > 0.0
        assert sw.mean == pytest.approx(sw.elapsed / 3)

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.laps == 0 and sw.elapsed == 0.0 and sw.mean == 0.0


class TestTimeCall:
    def test_returns_value_and_times(self):
        res = time_call(lambda a, b: a + b, 2, b=3, repeats=4)
        assert res.value == 5
        assert len(res.seconds) == 4
        assert res.best <= res.mean <= res.total
        assert res.total == pytest.approx(sum(res.seconds))

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)
