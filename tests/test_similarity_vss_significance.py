"""Tests for cosine similarity and similarity post-processing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.similarity import (
    apply_threshold,
    item_cosine,
    overlap_counts,
    pairwise_cosine,
    significance_weight,
    top_k_indices,
    user_cosine,
)


@pytest.fixture(scope="module")
def masked_case():
    rng = np.random.default_rng(5)
    values = rng.integers(1, 6, size=(25, 10)).astype(float)
    mask = rng.random((25, 10)) < 0.55
    return values, mask


class TestCosine:
    def test_brute_force_corated(self, masked_case):
        values, mask = masked_case
        sim = pairwise_cosine(values, mask, corated=True)
        a, b = 1, 4
        co = mask[:, a] & mask[:, b]
        x, y = values[co, a], values[co, b]
        ref = (x @ y) / (np.linalg.norm(x) * np.linalg.norm(y))
        assert sim[a, b] == pytest.approx(ref, abs=1e-12)

    def test_brute_force_full_norm(self, masked_case):
        values, mask = masked_case
        sim = pairwise_cosine(values, mask, corated=False)
        a, b = 2, 7
        co = mask[:, a] & mask[:, b]
        x_full = values[mask[:, a], a]
        y_full = values[mask[:, b], b]
        num = (values[co, a] @ values[co, b])
        ref = num / (np.linalg.norm(x_full) * np.linalg.norm(y_full))
        assert sim[a, b] == pytest.approx(ref, abs=1e-12)

    def test_symmetric_unit_diag(self, masked_case):
        values, mask = masked_case
        sim = pairwise_cosine(values, mask)
        assert np.allclose(sim, sim.T)
        assert np.allclose(np.diag(sim), 1.0)

    def test_nonnegative_for_positive_ratings(self, masked_case):
        values, mask = masked_case
        assert pairwise_cosine(values, mask).min() >= 0.0

    def test_popularity_bias_vs_pcc(self):
        """Cosine rewards a shared positive offset that PCC removes —
        the paper's argument for PCC in the GIS."""
        from repro.similarity import pairwise_pcc

        rng = np.random.default_rng(0)
        # Two items rated high by everyone but with *independent*
        # preference deviations: cosine sees near-1, PCC sees ~0.
        base = np.full((60, 2), 4.0)
        noise = rng.normal(0, 0.5, size=(60, 2))
        values = np.clip(base + noise, 1, 5)
        mask = np.ones((60, 2), dtype=bool)
        cos = pairwise_cosine(values, mask)[0, 1]
        pcc = pairwise_pcc(values, mask, centering="corated_mean")[0, 1]
        assert cos > 0.95
        assert abs(pcc) < 0.5

    def test_wrappers(self, masked_case):
        values, mask = masked_case
        assert np.allclose(item_cosine(values, mask), pairwise_cosine(values, mask))
        assert np.allclose(
            user_cosine(values, mask),
            pairwise_cosine(np.ascontiguousarray(values.T), np.ascontiguousarray(mask.T)),
        )


class TestOverlapCounts:
    def test_columns(self, masked_case):
        _, mask = masked_case
        n = overlap_counts(mask, axis="columns")
        assert n[3, 5] == (mask[:, 3] & mask[:, 5]).sum()

    def test_rows(self, masked_case):
        _, mask = masked_case
        n = overlap_counts(mask, axis="rows")
        assert n[2, 9] == (mask[2] & mask[9]).sum()

    def test_bad_axis(self, masked_case):
        _, mask = masked_case
        with pytest.raises(ValueError):
            overlap_counts(mask, axis="diagonal")


class TestSignificanceWeight:
    def test_full_strength_at_gamma(self):
        sim = np.array([[0.8]])
        assert significance_weight(sim, np.array([[30]]), gamma=30)[0, 0] == pytest.approx(0.8)
        assert significance_weight(sim, np.array([[60]]), gamma=30)[0, 0] == pytest.approx(0.8)

    def test_linear_below_gamma(self):
        sim = np.array([[0.9]])
        out = significance_weight(sim, np.array([[10]]), gamma=30)
        assert out[0, 0] == pytest.approx(0.3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            significance_weight(np.ones((2, 2)), np.ones((3, 3)))


class TestApplyThreshold:
    def test_zeroes_small_values_keeps_diagonal(self):
        sim = np.array([[1.0, 0.2, -0.6], [0.2, 1.0, 0.5], [-0.6, 0.5, 1.0]])
        out = apply_threshold(sim, 0.4)
        assert out[0, 1] == 0.0
        assert out[0, 2] == -0.6  # |.| >= threshold survives, sign kept
        assert np.allclose(np.diag(out), 1.0)

    def test_zero_threshold_is_identity(self):
        sim = np.eye(3)
        assert apply_threshold(sim, 0.0) is sim

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            apply_threshold(np.eye(2), 1.5)


class TestTopKIndices:
    def test_descending_order(self):
        scores = np.array([0.1, 0.9, 0.5, 0.7])
        assert top_k_indices(scores, 3).tolist() == [1, 3, 2]

    def test_exclude_self(self):
        scores = np.array([0.1, 0.9, 0.5])
        assert top_k_indices(scores, 2, exclude=1).tolist() == [2, 0]

    def test_k_larger_than_array(self):
        assert len(top_k_indices(np.array([0.3, 0.1]), 10)) == 2

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            top_k_indices(np.ones((2, 2)), 1)
