"""Tests for the temporal decay extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import apply_time_decay
from repro.core.temporal import decay_weights
from repro.data import RatingMatrix, SyntheticConfig, make_timestamped


class TestDecayWeights:
    def test_zero_age_full_weight(self):
        w = decay_weights(np.array([10.0]), now=10.0, half_life=1.0)
        assert w[0] == pytest.approx(1.0)

    def test_half_life_halves(self):
        w = decay_weights(np.array([0.0]), now=1.0, half_life=1.0)
        assert w[0] == pytest.approx(0.5)

    def test_future_clamped(self):
        w = decay_weights(np.array([5.0]), now=1.0, half_life=1.0)
        assert w[0] == pytest.approx(1.0)

    def test_monotone_in_age(self):
        ages = np.linspace(0, 3, 10)
        w = decay_weights(-ages, now=0.0, half_life=0.7)
        assert (np.diff(w) < 0).all()

    def test_half_life_validated(self):
        with pytest.raises(ValueError):
            decay_weights(np.array([0.0]), now=1.0, half_life=0.0)


class TestApplyTimeDecay:
    def _case(self):
        values = np.array([[5.0, 1.0, 0.0], [2.0, 4.0, 3.0]])
        rm = RatingMatrix(values)
        times = np.array([[0.0, 1.0, 0.0], [1.0, 0.5, 0.0]])
        return rm, times

    def test_mask_preserved(self):
        rm, times = self._case()
        out = apply_time_decay(rm, times, half_life=0.5)
        assert np.array_equal(out.mask, rm.mask)

    def test_fresh_ratings_unchanged(self):
        rm, times = self._case()
        out = apply_time_decay(rm, times, now=1.0, half_life=0.5)
        assert out.values[0, 1] == pytest.approx(1.0)   # age 0
        assert out.values[1, 0] == pytest.approx(2.0)

    def test_old_ratings_shrink_to_user_mean(self):
        rm, times = self._case()
        out = apply_time_decay(rm, times, now=1.0, half_life=0.1)
        mean0 = rm.user_means()[0]
        # age-1 rating with tiny half-life ≈ user mean
        assert out.values[0, 0] == pytest.approx(mean0, abs=0.01)

    def test_values_stay_in_scale(self):
        rm, times = self._case()
        out = apply_time_decay(rm, times, half_life=0.3)
        obs = out.values[out.mask]
        lo, hi = rm.rating_scale
        assert obs.min() >= lo and obs.max() <= hi

    def test_shape_mismatch_rejected(self):
        rm, _ = self._case()
        with pytest.raises(ValueError, match="shape"):
            apply_time_decay(rm, np.zeros((3, 3)))

    def test_default_now_is_newest(self):
        rm, times = self._case()
        explicit = apply_time_decay(rm, times, now=1.0, half_life=0.5)
        default = apply_time_decay(rm, times, half_life=0.5)
        assert np.allclose(explicit.values, default.values)


class TestOnDriftedData:
    def test_decay_helps_when_old_ratings_are_noise(self):
        """The scenario time decay is for: early ratings carry no taste
        signal (a cold-start/exploration era), later ratings do.
        Shrinking the stale deviations toward the user mean must then
        beat training on the raw matrix."""
        from repro.baselines import ItemBasedCF
        from repro.eval import mae

        rng = np.random.default_rng(4)
        cfg = SyntheticConfig(
            n_users=120, n_items=150, mean_ratings_per_user=40,
            min_ratings_per_user=20,
        )
        from repro.data import make_movielens_like

        ds = make_movielens_like(cfg, seed=1)
        rm = ds.ratings
        times = np.zeros(rm.shape)
        times[rm.mask] = rng.uniform(0.0, 1.0, size=rm.n_ratings)
        # Corrupt the oldest third of every user's ratings into noise.
        values = rm.values.copy()
        noise_era = rm.mask & (times < 0.33)
        values[noise_era] = rng.integers(1, 6, size=int(noise_era.sum()))
        corrupted = RatingMatrix(values, rm.mask)

        # Targets: a held-out slice of the *clean* era.
        target_mask = rm.mask & (times > 0.85)
        train_mask = corrupted.mask & ~target_mask
        train = RatingMatrix(np.where(train_mask, corrupted.values, 0.0), train_mask)
        decayed = apply_time_decay(train, times, now=1.0, half_life=0.2)

        users, items = np.nonzero(target_mask)
        truth = rm.values[users, items]
        mae_plain = mae(
            truth, ItemBasedCF(adjust_item_means=True).fit(train).predict_many(train, users, items)
        )
        mae_decay = mae(
            truth,
            ItemBasedCF(adjust_item_means=True).fit(decayed).predict_many(decayed, users, items),
        )
        assert mae_decay < mae_plain

    def test_generator_and_decay_integrate(self):
        """Smoke: the timestamped generator's output feeds the decay
        transform without shape or scale violations."""
        cfg = SyntheticConfig(
            n_users=40, n_items=60, mean_ratings_per_user=15, min_ratings_per_user=5
        )
        ds = make_timestamped(cfg, seed=0)
        out = apply_time_decay(ds.ratings, ds.timestamps, half_life=0.5)
        assert out.shape == ds.ratings.shape
        assert np.array_equal(out.mask, ds.ratings.mask)
