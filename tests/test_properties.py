"""Property-based tests (hypothesis) on the core data structures and
invariants: masked similarities, smoothing, fusion, splits, the LRU
cache, partitioning, and the incremental GIS."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import cluster_deviations, fuse, fusion_weights, pair_similarity, smooth_ratings
from repro.core.incremental import IncrementalGIS
from repro.data import RatingMatrix, make_split
from repro.parallel import block_partition, cyclic_partition, greedy_partition
from repro.similarity import pairwise_pcc, pairwise_cosine, top_k_indices
from repro.utils.cache import LRUCache

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def masked_matrices(draw, max_rows=12, max_cols=8, min_rows=2, min_cols=2):
    """A small rating matrix (1..5 integers) with a random mask that
    leaves at least one rating per row."""
    rows = draw(st.integers(min_rows, max_rows))
    cols = draw(st.integers(min_cols, max_cols))
    values = draw(
        hnp.arrays(
            np.float64,
            (rows, cols),
            elements=st.integers(1, 5).map(float),
        )
    )
    mask = draw(
        hnp.arrays(np.bool_, (rows, cols), elements=st.booleans())
    )
    # Guarantee each row has at least one observation.
    for r in range(rows):
        if not mask[r].any():
            mask[r, draw(st.integers(0, cols - 1))] = True
    return RatingMatrix(np.where(mask, values, 0.0), mask)


# ---------------------------------------------------------------------------
# Similarity invariants
# ---------------------------------------------------------------------------


class TestSimilarityProperties:
    @given(masked_matrices())
    @settings(max_examples=60, deadline=None)
    def test_pcc_symmetric_bounded_unit_diag(self, rm):
        for centering in ("global_mean", "corated_mean"):
            sim = pairwise_pcc(rm.values, rm.mask, centering=centering)
            assert np.allclose(sim, sim.T)
            assert (sim >= -1.0 - 1e-12).all() and (sim <= 1.0 + 1e-12).all()
            assert np.allclose(np.diag(sim), 1.0)
            assert np.isfinite(sim).all()

    @given(masked_matrices())
    @settings(max_examples=60, deadline=None)
    def test_cosine_symmetric_bounded(self, rm):
        sim = pairwise_cosine(rm.values, rm.mask)
        assert np.allclose(sim, sim.T)
        assert np.isfinite(sim).all()
        assert (sim >= -1.0 - 1e-12).all() and (sim <= 1.0 + 1e-12).all()

    @given(masked_matrices(), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_top_k_descending_and_within_bounds(self, rm, k):
        sim = pairwise_pcc(rm.values, rm.mask)
        idx = top_k_indices(sim[0], k, exclude=0)
        assert len(idx) <= k
        assert all(0 <= i < rm.n_items for i in idx)
        vals = sim[0][idx]
        assert (np.diff(vals) <= 1e-12).all()
        assert 0 not in idx


# ---------------------------------------------------------------------------
# Smoothing invariants
# ---------------------------------------------------------------------------


class TestSmoothingProperties:
    @given(masked_matrices(), st.integers(1, 4), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_smoothing_invariants(self, rm, n_clusters, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, n_clusters, size=rm.n_users)
        out = smooth_ratings(rm, labels, n_clusters)
        # 1. observed entries preserved
        assert np.allclose(out.values[rm.mask], rm.values[rm.mask])
        # 2. dense & in scale
        lo, hi = rm.rating_scale
        assert np.isfinite(out.values).all()
        assert (out.values >= lo).all() and (out.values <= hi).all()
        # 3. provenance equals the original mask
        assert np.array_equal(out.observed_mask, rm.mask)

    @given(masked_matrices())
    @settings(max_examples=40, deadline=None)
    def test_fully_rated_idempotent(self, rm):
        dense = RatingMatrix(
            np.where(rm.mask, rm.values, 3.0), np.ones(rm.shape, dtype=bool)
        )
        out = smooth_ratings(dense, np.zeros(rm.n_users, dtype=int), 1)
        assert np.allclose(out.values, dense.values)

    @given(masked_matrices(), st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_shrinkage_never_amplifies(self, rm, beta):
        labels = np.zeros(rm.n_users, dtype=int)
        raw, _ = cluster_deviations(rm, labels, 1)
        shrunk, _ = cluster_deviations(rm, labels, 1, shrinkage=beta)
        assert (np.abs(shrunk) <= np.abs(raw) + 1e-12).all()


# ---------------------------------------------------------------------------
# Fusion invariants
# ---------------------------------------------------------------------------


class TestFusionProperties:
    @given(st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=100, deadline=None)
    def test_weights_convex(self, lam, delta):
        w = fusion_weights(lam, delta)
        assert sum(w) == pytest.approx(1.0)
        assert all(x >= -1e-12 for x in w)

    @given(
        hnp.arrays(np.float64, (4,), elements=st.floats(0, 1)),
        hnp.arrays(np.float64, (3,), elements=st.floats(0, 1)),
    )
    @settings(max_examples=100, deadline=None)
    def test_pair_similarity_soft_min(self, si, su):
        out = pair_similarity(si, su)
        assert out.shape == (3, 4)
        assert np.isfinite(out).all()
        cap = np.minimum(si[None, :], su[:, None])
        assert (out <= cap + 1e-12).all()
        assert (out >= 0.0).all()


# ---------------------------------------------------------------------------
# Split invariants
# ---------------------------------------------------------------------------


class TestSplitProperties:
    @given(st.integers(0, 2**31 - 1), st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_given_heldout_partition(self, seed, given_n):
        from repro.data import SyntheticConfig, make_movielens_like

        rm = make_movielens_like(
            SyntheticConfig(
                n_users=30, n_items=40, mean_ratings_per_user=12, min_ratings_per_user=8
            ),
            seed=11,
        ).ratings
        sp = make_split(rm, n_train_users=20, given_n=given_n, n_test_users=8, seed=seed)
        active = rm.mask[-8:]
        assert np.array_equal(sp.given.mask | sp.heldout.mask, active)
        assert not (sp.given.mask & sp.heldout.mask).any()
        assert (sp.given.user_counts() == given_n).all()


# ---------------------------------------------------------------------------
# Cache invariants
# ---------------------------------------------------------------------------


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from("abcdefgh"), st.integers(0, 100)),
            max_size=60,
        ),
        st.integers(1, 5),
    )
    @settings(max_examples=80, deadline=None)
    def test_never_exceeds_capacity_and_agrees_with_dict(self, ops, maxsize):
        cache = LRUCache(maxsize)
        shadow: dict = {}
        for key, value in ops:
            cache.put(key, value)
            shadow[key] = value
            assert len(cache) <= maxsize
            got = cache.get(key)
            assert got == shadow[key]  # most-recent insert always resident

    @given(st.lists(st.sampled_from("abc"), max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses_equals_lookups(self, keys):
        cache = LRUCache(2)
        for k in keys:
            cache.get(k)
            cache.put(k, 1)
        assert cache.hits + cache.misses == len(keys)


# ---------------------------------------------------------------------------
# Partitioning invariants
# ---------------------------------------------------------------------------


class TestPartitionProperties:
    @given(st.integers(0, 200), st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_block_and_cyclic_partition_range(self, n, parts):
        for fn in (block_partition, cyclic_partition):
            out = fn(n, parts)
            merged = np.concatenate(out) if out else np.array([])
            assert sorted(merged.tolist()) == list(range(n))

    @given(
        hnp.arrays(np.float64, st.integers(1, 40), elements=st.floats(0, 100)),
        st.integers(1, 6),
    )
    @settings(max_examples=80, deadline=None)
    def test_greedy_partition_is_partition(self, costs, parts):
        out = greedy_partition(costs, parts)
        merged = np.concatenate(out)
        assert sorted(merged.tolist()) == list(range(len(costs)))


# ---------------------------------------------------------------------------
# Incremental GIS vs batch
# ---------------------------------------------------------------------------


class TestIncrementalProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 7), st.integers(1, 5)),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_stream_matches_batch(self, stream):
        base = RatingMatrix.from_triplets(
            [(0, 0, 3.0), (1, 1, 4.0), (2, 2, 2.0)], n_users=10, n_items=8
        )
        gis = IncrementalGIS(base, min_overlap=2)
        for u, i, r in stream:
            gis.add_rating(u, i, float(r))
        rebuilt = pairwise_pcc(
            gis.matrix().values, gis.matrix().mask, centering="corated_mean", min_overlap=2
        )
        got = np.vstack([gis.sim_row(j) for j in range(8)])
        assert np.allclose(got, rebuilt, atol=1e-9)
