"""Tests for the command-line interface.

The heavy commands (table2/table3 on the full grid) are exercised with
reduced grids; the CLI plumbing (parsing, dispatch, output format) is
what is under test, not the experiments themselves.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.data import clear_dataset_cache


@pytest.fixture(autouse=True)
def _fresh_dataset_cache():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_sweep_requires_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "lambda"])

    def test_seed_is_global(self):
        args = build_parser().parse_args(["--seed", "7", "stats"])
        assert args.seed == 7 and args.command == "stats"


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "No. of Users" in out

    def test_table2_reduced(self, capsys):
        code = main(
            ["table2", "--train-sizes", "100", "--given", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CFSF" in out and "SIR" in out and "Given10" in out

    def test_sweep_lambda(self, capsys):
        code = main(
            ["sweep", "lambda", "0.2", "0.8", "--train-size", "100", "--given-n", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sensitivity" in out and "0.2" in out

    def test_sweep_integer_parameter_coerced(self, capsys):
        code = main(
            ["sweep", "K", "10", "25", "--train-size", "100", "--given-n", "10"]
        )
        assert code == 0
        assert "MAE" in capsys.readouterr().out

    def test_recommend(self, capsys):
        code = main(
            ["recommend", "--user", "0", "--n", "5", "--train-size", "100",
             "--given-n", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Top-5" in out and "rank" in out

    def test_scalability_small(self, capsys):
        code = main(
            ["scalability", "--train-size", "100", "--fractions", "0.2", "0.4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CFSF (s)" in out and "SCBPCC (s)" in out
