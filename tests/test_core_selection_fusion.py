"""Tests for the online selection (Eqs. 10-11) and fusion (Eqs. 12-14)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    cluster_users,
    fuse,
    fusion_weights,
    pair_similarity,
    select_top_k_users,
    smooth_ratings,
    weighted_user_similarity,
)
from repro.core.local_matrix import LocalMatrix


@pytest.fixture(scope="module")
def smoothed_small(ml_small):
    clusters = cluster_users(ml_small, 6, seed=0)
    return smooth_ratings(ml_small, clusters.labels, 6)


class TestWeightedUserSimilarity:
    def test_perfect_match_near_one(self, smoothed_small):
        """A candidate whose deviations align perfectly with the active
        profile gets similarity 1 — exactly 1 when every weight is
        equal, i.e. over items the candidate originally rated (Eq. 10's
        asymmetric weighting caps mixed-provenance matches below 1 by
        Cauchy-Schwarz)."""
        cand = np.array([5])
        items = np.nonzero(smoothed_small.observed_mask[5])[0][:6]
        vals = smoothed_small.values[5, items]
        dev = vals - smoothed_small.user_means[5]
        sims = weighted_user_similarity(items, dev, cand, smoothed_small, 0.35)
        assert sims[0] == pytest.approx(1.0, abs=1e-9)

    def test_mixed_provenance_match_below_one(self, smoothed_small):
        """The Cauchy-Schwarz cap: identical deviations with unequal
        weights score strictly below 1."""
        cand = np.array([5])
        obs = np.nonzero(smoothed_small.observed_mask[5])[0][:3]
        smo = np.nonzero(~smoothed_small.observed_mask[5])[0][:3]
        items = np.concatenate([obs, smo])
        dev = smoothed_small.values[5, items] - smoothed_small.user_means[5]
        if np.allclose(dev, 0):
            pytest.skip("degenerate deviations for this fixture user")
        sims = weighted_user_similarity(items, dev, cand, smoothed_small, 0.35)
        assert sims[0] < 1.0

    def test_empty_inputs_zero(self, smoothed_small):
        out = weighted_user_similarity(
            np.array([], dtype=int), np.array([]), np.array([1, 2]), smoothed_small, 0.35
        )
        assert np.allclose(out, 0.0)
        out2 = weighted_user_similarity(
            np.array([0]), np.array([1.0]), np.array([], dtype=int), smoothed_small, 0.35
        )
        assert out2.shape == (0,)

    def test_epsilon_changes_result(self, smoothed_small):
        items = np.array([0, 1, 2, 3, 4])
        dev = np.array([1.0, -0.5, 0.2, 0.8, -1.0])
        cand = np.arange(20)
        a = weighted_user_similarity(items, dev, cand, smoothed_small, 0.1)
        b = weighted_user_similarity(items, dev, cand, smoothed_small, 0.9)
        assert not np.allclose(a, b)

    def test_range(self, smoothed_small):
        items = np.array([0, 1, 2, 3, 4])
        dev = np.array([1.0, -0.5, 0.2, 0.8, -1.0])
        sims = weighted_user_similarity(items, dev, np.arange(80), smoothed_small, 0.35)
        assert sims.min() >= -1.0 and sims.max() <= 1.0

    def test_epsilon_validated(self, smoothed_small):
        with pytest.raises(ValueError):
            weighted_user_similarity(
                np.array([0]), np.array([1.0]), np.array([0]), smoothed_small, 1.5
            )


class TestSelectTopK:
    def test_k_and_descending(self, smoothed_small):
        items = np.array([0, 1, 2, 3, 4])
        dev = np.array([1.0, -0.5, 0.2, 0.8, -1.0])
        top = select_top_k_users(items, dev, np.arange(80), smoothed_small, k=10, epsilon=0.35)
        assert len(top) == 10
        assert (np.diff(top.similarities) <= 1e-12).all()
        assert top.pool_size == 80

    def test_positive_filter(self, smoothed_small):
        items = np.array([0, 1, 2, 3, 4])
        dev = np.array([1.0, -0.5, 0.2, 0.8, -1.0])
        top = select_top_k_users(items, dev, np.arange(80), smoothed_small, k=80, epsilon=0.35)
        assert (top.similarities > 0).all()

    def test_all_negative_fallback(self, smoothed_small):
        """When every candidate anticorrelates, selection still returns
        k users with small positive weights."""
        items = np.array([0, 1])
        dev = np.array([1.0, -1.0])
        # craft candidates by flipping: use min_sim=2 to force the fallback path
        top = select_top_k_users(
            items, dev, np.arange(10), smoothed_small, k=3, epsilon=0.35, min_sim=2.0
        )
        assert len(top) == 3
        assert (top.similarities > 0).all()


class TestFusionWeights:
    @pytest.mark.parametrize("lam,delta", [(0.8, 0.1), (0.0, 0.0), (1.0, 1.0), (0.3, 0.7)])
    def test_convex(self, lam, delta):
        w = fusion_weights(lam, delta)
        assert sum(w) == pytest.approx(1.0)
        assert all(x >= 0 for x in w)

    def test_paper_defaults(self):
        w_sir, w_sur, w_suir = fusion_weights(0.8, 0.1)
        assert w_sir == pytest.approx(0.18)
        assert w_sur == pytest.approx(0.72)
        assert w_suir == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            fusion_weights(1.2, 0.1)


class TestPairSimilarity:
    def test_formula(self):
        out = pair_similarity(np.array([0.6]), np.array([0.8]))
        assert out[0, 0] == pytest.approx(0.48 / np.sqrt(0.36 + 0.64))

    def test_shape(self):
        out = pair_similarity(np.ones(5) * 0.5, np.ones(3) * 0.5)
        assert out.shape == (3, 5)

    def test_zero_pair_safe(self):
        out = pair_similarity(np.array([0.0]), np.array([0.0]))
        assert out[0, 0] == 0.0

    def test_soft_minimum_property(self):
        """The pair weight never exceeds min(s_i, s_u)."""
        rng = np.random.default_rng(0)
        si = rng.random(20)
        su = rng.random(20)
        out = pair_similarity(si, su)
        cap = np.minimum(si[None, :], su[:, None])
        assert (out <= cap + 1e-12).all()


def _local(
    item_sims, user_sims, ratings, weights, air, aiw, aur, auw, umeans, amean,
    imeans=None, aimean=3.0, gmean=3.0,
):
    M = len(item_sims)
    K = len(user_sims)
    return LocalMatrix(
        item_indices=np.arange(M),
        item_sims=np.asarray(item_sims, dtype=float),
        user_indices=np.arange(K),
        user_sims=np.asarray(user_sims, dtype=float),
        ratings=np.asarray(ratings, dtype=float),
        weights=np.asarray(weights, dtype=float),
        active_item_ratings=np.asarray(air, dtype=float),
        active_item_weights=np.asarray(aiw, dtype=float),
        active_user_ratings=np.asarray(aur, dtype=float),
        active_user_weights=np.asarray(auw, dtype=float),
        user_means=np.asarray(umeans, dtype=float),
        active_user_mean=amean,
        item_means=np.full(M, 3.0) if imeans is None else np.asarray(imeans, dtype=float),
        active_item_mean=aimean,
        global_mean=gmean,
    )


class TestFuse:
    def test_hand_computed_sur(self):
        """SUR' with one user: r̄_b + (r(u,a) − r̄_u)."""
        local = _local(
            item_sims=[0.5], user_sims=[1.0],
            ratings=[[4.0]], weights=[[0.35]],
            air=[5.0], aiw=[0.35], aur=[3.0], auw=[0.35],
            umeans=[4.5], amean=3.0,
        )
        out = fuse(local, lam=1.0, delta=0.0)
        assert out.value == pytest.approx(3.0 + (5.0 - 4.5))
        assert out.sur_ok

    def test_hand_computed_sir_unadjusted(self):
        """Literal Eq. 12 SIR' = weighted average of the user's ratings."""
        local = _local(
            item_sims=[0.5, 1.0], user_sims=[1.0],
            ratings=[[4.0, 2.0]], weights=[[0.35, 0.65]],
            air=[5.0], aiw=[0.35],
            aur=[4.0, 2.0], auw=[0.35, 0.35],
            umeans=[3.0], amean=3.0,
        )
        out = fuse(local, lam=0.0, delta=0.0, adjust_biases=False)
        expected = (0.35 * 0.5 * 4.0 + 0.35 * 1.0 * 2.0) / (0.35 * 0.5 + 0.35 * 1.0)
        assert out.value == pytest.approx(expected)

    def test_hand_computed_sir_adjusted(self):
        local = _local(
            item_sims=[1.0], user_sims=[1.0],
            ratings=[[4.0]], weights=[[0.35]],
            air=[5.0], aiw=[0.35],
            aur=[4.0], auw=[0.35],
            umeans=[3.0], amean=3.0,
            imeans=[3.5], aimean=2.5,
        )
        out = fuse(local, lam=0.0, delta=0.0, adjust_biases=True)
        # deviation (4.0 - 3.5) anchored at the active item's mean 2.5
        assert out.value == pytest.approx(2.5 + 0.5)

    def test_suir_only(self):
        local = _local(
            item_sims=[1.0], user_sims=[1.0],
            ratings=[[4.0]], weights=[[0.65]],
            air=[4.0], aiw=[0.65], aur=[3.0], auw=[0.35],
            umeans=[3.0], amean=3.0,
            imeans=[3.0], aimean=3.0, gmean=3.0,
        )
        out = fuse(local, lam=0.8, delta=1.0)
        # adjusted SUIR': amean + (aimean − gmean) + (4 − 3 − 0) = 4.0
        assert out.value == pytest.approx(4.0)
        assert out.suir_ok

    def test_fusion_is_convex_combination(self):
        local = _local(
            item_sims=[0.9, 0.4], user_sims=[0.7, 0.5],
            ratings=[[4.0, 2.0], [3.0, 5.0]],
            weights=[[0.35, 0.65], [0.65, 0.35]],
            air=[4.5, 2.5], aiw=[0.35, 0.65],
            aur=[4.0, 1.5], auw=[0.35, 0.65],
            umeans=[3.5, 3.0], amean=3.2,
        )
        out = fuse(local, lam=0.8, delta=0.1)
        lo = min(out.sir, out.sur, out.suir)
        hi = max(out.sir, out.sur, out.suir)
        assert lo - 1e-9 <= out.value <= hi + 1e-9

    def test_degenerate_components_fall_back_to_mean(self):
        local = _local(
            item_sims=[0.0], user_sims=[0.0],
            ratings=[[4.0]], weights=[[0.35]],
            air=[4.0], aiw=[0.35], aur=[4.0], auw=[0.35],
            umeans=[3.0], amean=2.7,
        )
        out = fuse(local, lam=0.8, delta=0.1)
        assert not (out.sir_ok or out.sur_ok or out.suir_ok)
        assert out.value == pytest.approx(2.7)

    def test_negative_similarities_ignored(self):
        local = _local(
            item_sims=[-0.9, 0.5], user_sims=[0.6],
            ratings=[[1.0, 4.0]], weights=[[0.35, 0.35]],
            air=[4.0], aiw=[0.35],
            aur=[1.0, 4.0], auw=[0.35, 0.35],
            umeans=[3.0], amean=3.0,
        )
        out = fuse(local, lam=0.0, delta=0.0, adjust_biases=False)
        # only the 0.5-similarity item participates
        assert out.value == pytest.approx(4.0)
