"""KernelPool: checkout/return, lazy growth, blocking and exhaustion.

The pool is the concurrency throttle for the fusion stage: every
dispatch borrows a private clone of the non-re-entrant kernel, so
these tests pin the accounting (created/in_use/free), the laziness
(clones materialise on demand, never beyond ``max_workers``) and the
blocking contract (exhausted pool waits; timeout raises).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serving import KernelPool


@pytest.fixture(scope="module")
def template(cfsf_small):
    cfsf_small.warm_online()
    return cfsf_small.kernel


def test_rejects_missing_template():
    with pytest.raises(ValueError, match="template"):
        KernelPool(None)


def test_checkout_lends_a_clone_and_returns_it(template):
    pool = KernelPool(template, max_workers=2)
    with pool.checkout() as kernel:
        assert kernel is not template
        # Clones share the O(P·Q) derived matrices by reference...
        assert kernel.weight_matrix is template.weight_matrix
        assert kernel.deviation_matrix is template.deviation_matrix
        # ...but own their scratch, so concurrent fusing cannot race.
        assert kernel is not template
        assert pool.in_use == 1
    assert pool.in_use == 0
    assert pool.available == 1


def test_lazy_growth_reuses_returned_kernels(template):
    pool = KernelPool(template, max_workers=8)
    for _ in range(5):
        with pool.checkout():
            pass
    # Serial checkouts never need a second clone.
    assert pool.created == 1

    with pool.checkout() as a:
        with pool.checkout() as b:
            assert a is not b
            assert pool.created == 2
    # Both kernels came back; further checkouts stay at two clones.
    with pool.checkout():
        pass
    assert pool.created == 2
    assert pool.stats() == {
        "max_workers": 8,
        "created": 2,
        "in_use": 0,
        "free": 2,
    }


def test_exhausted_pool_times_out(template):
    pool = KernelPool(template, max_workers=1)
    with pool.checkout():
        with pytest.raises(TimeoutError, match="no kernel free"):
            with pool.checkout(timeout=0.05):
                pass  # pragma: no cover - never reached


def test_exhausted_pool_unblocks_on_return(template):
    pool = KernelPool(template, max_workers=1)
    acquired = threading.Event()
    released = threading.Event()

    def holder():
        with pool.checkout():
            acquired.set()
            assert released.wait(timeout=5.0)

    thread = threading.Thread(target=holder)
    thread.start()
    assert acquired.wait(timeout=5.0)
    # The only kernel is checked out; this blocks until holder returns it.
    released.set()
    with pool.checkout(timeout=5.0) as kernel:
        assert kernel is not None
    thread.join(timeout=5.0)
    assert pool.created == 1


def test_failed_dispatch_does_not_leak_capacity(template):
    pool = KernelPool(template, max_workers=1)
    with pytest.raises(RuntimeError, match="boom"):
        with pool.checkout():
            raise RuntimeError("boom")
    # The kernel went back to the free list despite the raise.
    with pool.checkout(timeout=0.5):
        pass
    assert pool.in_use == 0


def test_cloned_kernel_fuses_identically(template, cfsf_small, split_small):
    """A borrowed clone must not change a single bit of the output."""
    users, items, _ = split_small.targets_arrays()
    users, items = users[:64], items[:64]
    reference = cfsf_small.predict_many(split_small.given, users, items)
    pool = KernelPool(template, max_workers=2)
    with pool.checkout() as kernel, cfsf_small.borrowed_kernel(kernel):
        via_clone = cfsf_small.predict_many(split_small.given, users, items)
    assert np.array_equal(via_clone, reference)
