"""Unit tests for the circuit breaker guarding fallback-chain stages.

Every transition is pinned deterministically: the clock is a
:class:`~repro.serving.faults.ManualClock` and the jitter RNG is
seeded, so these tests never sleep and never flake.
"""

from __future__ import annotations

import pytest

from repro.serving import CircuitBreaker, CircuitState
from repro.serving.faults import ManualClock


def make_breaker(clock, **overrides) -> CircuitBreaker:
    kwargs = dict(
        failure_threshold=3,
        reset_timeout=1.0,
        backoff_factor=2.0,
        max_reset_timeout=60.0,
        jitter=0.0,
        rng=0,
    )
    kwargs.update(overrides)
    return CircuitBreaker("stage", clock=clock, **kwargs)


class TestClosedState:
    def test_starts_closed_and_allows(self):
        br = make_breaker(ManualClock())
        assert br.state is CircuitState.CLOSED
        assert br.allow()
        assert br.retry_in() == 0.0

    def test_failures_below_threshold_stay_closed(self):
        br = make_breaker(ManualClock())
        br.record_failure()
        br.record_failure()
        assert br.state is CircuitState.CLOSED
        assert br.allow()

    def test_success_resets_consecutive_count(self):
        br = make_breaker(ManualClock())
        br.record_failure()
        br.record_failure()
        br.record_success()
        br.record_failure()
        br.record_failure()
        assert br.state is CircuitState.CLOSED
        assert br.consecutive_failures == 2
        assert br.failures == 4 and br.successes == 1


class TestTripping:
    def test_threshold_consecutive_failures_trip_open(self):
        br = make_breaker(ManualClock())
        for _ in range(3):
            br.record_failure()
        assert br.state is CircuitState.OPEN
        assert not br.allow()
        assert br.open_count == 1

    def test_retry_in_counts_down_with_the_clock(self):
        clock = ManualClock()
        br = make_breaker(clock)
        for _ in range(3):
            br.record_failure()
        assert br.retry_in() == pytest.approx(1.0)
        clock.advance(0.4)
        assert br.retry_in() == pytest.approx(0.6)

    def test_custom_threshold(self):
        br = make_breaker(ManualClock(), failure_threshold=1)
        br.record_failure()
        assert br.state is CircuitState.OPEN


class TestHalfOpenProbe:
    def test_half_opens_after_delay(self):
        clock = ManualClock()
        br = make_breaker(clock)
        for _ in range(3):
            br.record_failure()
        assert not br.allow()
        clock.advance(1.0)
        assert br.allow()
        assert br.state is CircuitState.HALF_OPEN

    def test_probe_success_closes_and_resets_backoff(self):
        clock = ManualClock()
        br = make_breaker(clock)
        for _ in range(3):
            br.record_failure()
        clock.advance(1.0)
        assert br.allow()
        br.record_success()
        assert br.state is CircuitState.CLOSED
        # Backoff streak reset: the next trip is back to the base delay.
        for _ in range(3):
            br.record_failure()
        assert br.last_delay == pytest.approx(1.0)

    def test_probe_failure_reopens_with_doubled_delay(self):
        clock = ManualClock()
        br = make_breaker(clock)
        for _ in range(3):
            br.record_failure()          # open, delay 1.0
        clock.advance(1.0)
        assert br.allow()                # half-open probe
        br.record_failure()              # probe fails -> re-open, delay 2.0
        assert br.state is CircuitState.OPEN
        assert br.last_delay == pytest.approx(2.0)
        clock.advance(2.0)
        assert br.allow()
        br.record_failure()              # delay 4.0
        assert br.last_delay == pytest.approx(4.0)
        assert br.open_count == 3

    def test_backoff_capped_at_max_reset_timeout(self):
        clock = ManualClock()
        br = make_breaker(clock, max_reset_timeout=3.0)
        for _ in range(3):
            br.record_failure()          # 1.0
        for expected in (2.0, 3.0, 3.0):  # 4.0 would exceed the cap
            clock.advance(br.last_delay)
            assert br.allow()
            br.record_failure()
            assert br.last_delay == pytest.approx(expected)


class TestJitter:
    def test_jittered_delay_within_bounds(self):
        clock = ManualClock()
        br = make_breaker(clock, jitter=0.5, rng=7)
        for _ in range(3):
            br.record_failure()
        assert 1.0 <= br.last_delay < 1.5

    def test_same_seed_same_delays(self):
        delays = []
        for _ in range(2):
            clock = ManualClock()
            br = make_breaker(clock, jitter=0.3, rng=42)
            for _ in range(3):
                br.record_failure()
            first = br.last_delay
            clock.advance(first)
            br.allow()
            br.record_failure()
            delays.append((first, br.last_delay))
        assert delays[0] == delays[1]

    def test_different_seeds_decorrelate_probes(self):
        def trip_delay(seed: int) -> float:
            br = make_breaker(ManualClock(), jitter=1.0, rng=seed)
            for _ in range(3):
                br.record_failure()
            return br.last_delay

        assert trip_delay(0) != trip_delay(1)


class TestIntrospection:
    def test_snapshot_contents(self):
        clock = ManualClock()
        br = make_breaker(clock)
        br.record_success()
        for _ in range(3):
            br.record_failure()
        snap = br.snapshot()
        assert snap["name"] == "stage"
        assert snap["state"] == "open"
        assert snap["failures"] == 3
        assert snap["successes"] == 1
        assert snap["consecutive_failures"] == 3
        assert snap["open_count"] == 1
        assert snap["retry_in"] == pytest.approx(1.0)

    def test_repr_mentions_state(self):
        br = make_breaker(ManualClock())
        assert "closed" in repr(br)

    def test_state_enum_values_are_strings(self):
        assert CircuitState.OPEN.value == "open"
        assert CircuitState.HALF_OPEN.value == "half_open"


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"reset_timeout": 0.0},
            {"reset_timeout": -1.0},
            {"backoff_factor": 0.5},
            {"jitter": -0.1},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            make_breaker(ManualClock(), **kwargs)
