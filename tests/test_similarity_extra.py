"""Tests for the additional similarity measures."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.similarity import (
    adjusted_cosine,
    jaccard,
    mean_squared_difference,
    spearman_rho,
)


@pytest.fixture(scope="module")
def masked_case():
    rng = np.random.default_rng(23)
    values = rng.integers(1, 6, size=(30, 10)).astype(float)
    mask = rng.random((30, 10)) < 0.6
    return values, mask


class TestAdjustedCosine:
    def test_symmetric_bounded(self, masked_case):
        values, mask = masked_case
        sim = adjusted_cosine(values, mask)
        assert np.allclose(sim, sim.T)
        assert sim.min() >= -1.0 and sim.max() <= 1.0
        assert np.allclose(np.diag(sim), 1.0)

    def test_brute_force(self, masked_case):
        values, mask = masked_case
        sim = adjusted_cosine(values, mask)
        a, b = 2, 6
        row_means = np.array([
            values[u][mask[u]].mean() if mask[u].any() else 0.0 for u in range(30)
        ])
        co = mask[:, a] & mask[:, b]
        xa = (values[:, a] - row_means)[co]
        xb = (values[:, b] - row_means)[co]
        ref = (xa @ xb) / (np.linalg.norm(xa) * np.linalg.norm(xb))
        assert sim[a, b] == pytest.approx(ref, abs=1e-10)

    def test_removes_generosity(self):
        """Two items rated identically *after* per-user shifts must
        score 1 under adjusted cosine even though raw cosine of the
        shifted profiles would not."""
        base = np.array([1.0, -1.0, 0.5, -0.5])
        generosity = np.array([1.0, 2.0, 3.0, 4.0])
        # Two agreeing items plus a third disagreeing one (needed so
        # user-mean centering does not annihilate the profiles).
        values = np.stack(
            [generosity + base, generosity + base, generosity - base], axis=1
        )
        mask = np.ones((4, 3), dtype=bool)
        sim = adjusted_cosine(values, mask)
        assert sim[0, 1] == pytest.approx(1.0)
        assert sim[0, 2] < 0.0


class TestSpearman:
    def test_matches_scipy_on_full_columns(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(1, 5, size=(40, 4))
        mask = np.ones((40, 4), dtype=bool)
        sim = spearman_rho(values, mask)
        for a, b in [(0, 1), (2, 3)]:
            ref = stats.spearmanr(values[:, a], values[:, b]).statistic
            assert sim[a, b] == pytest.approx(ref, abs=1e-8)

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(1, 5, size=(30, 1))
        values = np.hstack([x, np.exp(x)])   # monotone transform
        mask = np.ones((30, 2), dtype=bool)
        sim = spearman_rho(values, mask)
        assert sim[0, 1] == pytest.approx(1.0)

    def test_masked_bounded(self, masked_case):
        values, mask = masked_case
        sim = spearman_rho(values, mask)
        assert np.isfinite(sim).all()
        assert sim.min() >= -1.0 and sim.max() <= 1.0


class TestMSD:
    def test_identical_columns_score_one(self):
        col = np.array([[1.0], [3.0], [5.0]])
        values = np.hstack([col, col])
        sim = mean_squared_difference(values, np.ones((3, 2), dtype=bool))
        assert sim[0, 1] == pytest.approx(1.0)

    def test_brute_force(self, masked_case):
        values, mask = masked_case
        sim = mean_squared_difference(values, mask)
        a, b = 1, 7
        co = mask[:, a] & mask[:, b]
        msd = ((values[co, a] - values[co, b]) ** 2).mean()
        assert sim[a, b] == pytest.approx(1.0 / (1.0 + msd), abs=1e-10)

    def test_location_sensitive(self):
        """A constant shift lowers MSD similarity (unlike PCC)."""
        col = np.array([[1.0], [3.0], [5.0], [2.0]])
        values = np.hstack([col, col + 1.0])
        sim = mean_squared_difference(values, np.ones((4, 2), dtype=bool))
        assert sim[0, 1] < 1.0

    def test_range(self, masked_case):
        values, mask = masked_case
        sim = mean_squared_difference(values, mask)
        assert (sim >= 0.0).all() and (sim <= 1.0).all()


class TestJaccard:
    def test_hand_case(self):
        mask = np.array(
            [
                [True, True],
                [True, False],
                [False, True],
                [True, True],
            ]
        )
        sim = jaccard(mask)
        # intersection 2, union 4
        assert sim[0, 1] == pytest.approx(0.5)

    def test_identical_sets(self):
        mask = np.ones((5, 2), dtype=bool)
        assert jaccard(mask)[0, 1] == pytest.approx(1.0)

    def test_disjoint_sets(self):
        mask = np.array([[True, False], [True, False], [False, True]])
        assert jaccard(mask)[0, 1] == 0.0

    def test_values_ignored(self, masked_case):
        values, mask = masked_case
        assert np.allclose(jaccard(mask), jaccard(mask.astype(int)))
