"""Tests for the real-format MovieLens loaders (on temp files)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    load_ml1m,
    load_ml100k,
    load_ratings_file,
    paper_subsample,
)
from repro.data.movielens import LoadedRatings


def write_100k(path, rows):
    path.write_text("\n".join("\t".join(map(str, r)) for r in rows) + "\n")


def write_1m(path, rows):
    path.write_text("\n".join("::".join(map(str, r)) for r in rows) + "\n")


ROWS = [
    (1, 10, 5, 881250949),
    (1, 20, 3, 881250950),
    (2, 10, 4, 881250951),
    (3, 30, 2, 881250952),
]


class TestLoad100k:
    def test_basic_parse(self, tmp_path):
        f = tmp_path / "u.data"
        write_100k(f, ROWS)
        loaded = load_ml100k(str(f))
        assert loaded.ratings.shape == (3, 3)   # 3 users, 3 distinct items
        assert loaded.ratings.n_ratings == 4

    def test_id_mapping(self, tmp_path):
        f = tmp_path / "u.data"
        write_100k(f, ROWS)
        loaded = load_ml100k(str(f))
        assert loaded.user_ids.tolist() == [1, 2, 3]
        assert loaded.item_ids.tolist() == [10, 20, 30]
        u = list(loaded.user_ids).index(1)
        i = list(loaded.item_ids).index(10)
        assert loaded.ratings.values[u, i] == 5.0

    def test_timestamps_kept(self, tmp_path):
        f = tmp_path / "u.data"
        write_100k(f, ROWS)
        loaded = load_ml100k(str(f))
        assert loaded.timestamps is not None
        assert loaded.timestamps[0, 0] == 881250949

    def test_blank_lines_skipped(self, tmp_path):
        f = tmp_path / "u.data"
        f.write_text("1\t10\t5\t0\n\n2\t10\t4\t0\n")
        assert load_ml100k(str(f)).ratings.n_ratings == 2

    def test_malformed_line_raises_with_location(self, tmp_path):
        f = tmp_path / "u.data"
        f.write_text("1\t10\t5\t0\nbroken line\n")
        with pytest.raises(ValueError, match=":2"):
            load_ml100k(str(f))

    def test_empty_file_raises(self, tmp_path):
        f = tmp_path / "u.data"
        f.write_text("")
        with pytest.raises(ValueError, match="no ratings"):
            load_ml100k(str(f))


class TestLoad1mAndAutodetect:
    def test_1m_format(self, tmp_path):
        f = tmp_path / "ratings.dat"
        write_1m(f, ROWS)
        assert load_ml1m(str(f)).ratings.n_ratings == 4

    def test_autodetect_tab(self, tmp_path):
        f = tmp_path / "data.txt"
        write_100k(f, ROWS)
        assert load_ratings_file(str(f)).ratings.n_ratings == 4

    def test_autodetect_doublecolon(self, tmp_path):
        f = tmp_path / "data.txt"
        write_1m(f, ROWS)
        assert load_ratings_file(str(f)).ratings.n_ratings == 4

    def test_autodetect_unknown(self, tmp_path):
        f = tmp_path / "data.txt"
        f.write_text("1,10,5\n")
        with pytest.raises(ValueError, match="unrecognised"):
            load_ratings_file(str(f))


class TestPaperSubsample:
    def _loaded(self, n_users=40, n_items=30, per_user=12, seed=0):
        rng = np.random.default_rng(seed)
        rows = []
        for u in range(1, n_users + 1):
            items = rng.choice(np.arange(1, n_items + 1), size=per_user, replace=False)
            for it in items:
                rows.append((u, int(it), int(rng.integers(1, 6)), 0))
        values = None
        import tempfile, os

        with tempfile.NamedTemporaryFile("w", suffix=".data", delete=False) as fh:
            fh.write("\n".join("\t".join(map(str, r)) for r in rows))
            name = fh.name
        try:
            return load_ml100k(name)
        finally:
            os.unlink(name)

    def test_subsample_shape(self):
        loaded = self._loaded()
        rm = paper_subsample(loaded, n_users=20, n_items=25, min_ratings=5, seed=0)
        assert rm.n_users == 20 and rm.n_items == 25

    def test_min_ratings_enforced(self):
        loaded = self._loaded()
        rm = paper_subsample(loaded, n_users=20, n_items=25, min_ratings=5, seed=0)
        assert rm.user_counts().min() >= 5

    def test_insufficient_users_raises(self):
        loaded = self._loaded()
        with pytest.raises(ValueError, match="only"):
            paper_subsample(loaded, n_users=40, n_items=25, min_ratings=13, seed=0)

    def test_keeps_most_rated_items(self):
        loaded = self._loaded()
        rm = paper_subsample(loaded, n_users=20, n_items=10, min_ratings=1, seed=0)
        # The 10 retained columns must be at least as rated (in the
        # original matrix) as any dropped column.
        orig_counts = loaded.ratings.item_counts()
        kept_min = np.sort(orig_counts)[-10:].min()
        assert rm.n_items == 10
        assert kept_min >= np.partition(orig_counts, -10)[-10]
