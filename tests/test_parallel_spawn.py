"""Spawn-mode parallel predictor: the start method that pickles.

``fork`` is the fast path on Linux; ``spawn`` is what macOS/Windows
use, and it requires every piece of the fitted model to survive a
pickle round-trip.  One (slower) test pins that contract so a future
unpicklable attribute on CFSF fails loudly.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.parallel import ParallelPredictor


class TestSpawnMode:
    def test_model_is_picklable(self, cfsf_small):
        blob = pickle.dumps(cfsf_small)
        clone = pickle.loads(blob)
        assert clone.config == cfsf_small.config
        assert np.array_equal(clone.gis.sim, cfsf_small.gis.sim)

    @pytest.mark.slow
    def test_spawn_pool_matches_serial(self, cfsf_small, split_small):
        users, items, _ = split_small.targets_arrays()
        users, items = users[:40], items[:40]
        serial = cfsf_small.predict_many(split_small.given, users, items)
        with ParallelPredictor(cfsf_small, n_workers=2, start_method="spawn") as pp:
            par = pp.predict_many(split_small.given, users, items)
        assert np.allclose(serial, par)
