"""Tests for the SIR (item-based) and SUR (user-based) baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ItemBasedCF, MeanPredictor, NotFittedError, UserBasedCF
from repro.data import RatingMatrix
from repro.eval import mae


class TestItemBasedCF:
    def test_hand_computed_eq1(self):
        """Literal Eq. 1 on a 3x3 case with known similarities."""
        # Items 0 and 1 identical over co-raters -> sim 1; item 2 differs.
        train = RatingMatrix(
            np.array(
                [
                    [5.0, 5.0, 1.0],
                    [3.0, 3.0, 4.0],
                    [1.0, 1.0, 5.0],
                    [4.0, 4.0, 2.0],
                ]
            )
        )
        model = ItemBasedCF(centering="corated_mean").fit(train)
        # Active user rated item 1 with 4.0 -> prediction for item 0
        # should be exactly 4.0 (only one positive-sim neighbour rated).
        given = RatingMatrix(np.array([[0.0, 4.0, 0.0]]))
        pred = model.predict(given, 0, 0)
        assert pred == pytest.approx(4.0)

    def test_self_item_excluded(self):
        train = RatingMatrix(np.array([[5.0, 4.0], [3.0, 2.0], [1.0, 2.0]]))
        model = ItemBasedCF().fit(train)
        given = RatingMatrix(np.array([[2.0, 5.0]]))
        # Asking about item 0, which the user already rated: their own
        # rating must not echo back through the sim=1 diagonal.
        pred = model.predict(given, 0, 0)
        assert pred != pytest.approx(2.0) or True  # must not crash; and:
        # the neighbourhood here is just item 1
        assert pred == pytest.approx(5.0) or pred == pytest.approx(
            model._item_means[0] + (5.0 - model._item_means[1]), abs=1e-9
        )

    def test_unfitted_raises(self, split_small):
        with pytest.raises(NotFittedError):
            ItemBasedCF().predict_many(split_small.given, [0], [0])

    def test_no_ratings_falls_back(self, split_small):
        model = ItemBasedCF().fit(split_small.train)
        empty = RatingMatrix(
            np.zeros((1, split_small.train.n_items)),
            np.zeros((1, split_small.train.n_items), dtype=bool),
        )
        pred = model.predict(empty, 0, 0)
        lo, hi = split_small.train.rating_scale
        assert lo <= pred <= hi

    def test_k_limits_neighbourhood(self, split_small):
        users, items, _ = split_small.targets_arrays()
        a = ItemBasedCF(k=2).fit(split_small.train).predict_many(
            split_small.given, users[:50], items[:50]
        )
        b = ItemBasedCF(k=None).fit(split_small.train).predict_many(
            split_small.given, users[:50], items[:50]
        )
        assert not np.allclose(a, b)

    def test_adjusted_beats_plain_on_biased_items(self, split_small):
        users, items, truth = split_small.targets_arrays()
        plain = ItemBasedCF(adjust_item_means=False).fit(split_small.train)
        adj = ItemBasedCF(adjust_item_means=True).fit(split_small.train)
        m_plain = mae(truth, plain.predict_many(split_small.given, users, items))
        m_adj = mae(truth, adj.predict_many(split_small.given, users, items))
        assert m_adj < m_plain

    def test_significance_gamma_changes_model(self, split_small):
        users, items, _ = split_small.targets_arrays()
        a = ItemBasedCF(significance_gamma=10).fit(split_small.train)
        b = ItemBasedCF().fit(split_small.train)
        pa = a.predict_many(split_small.given, users[:50], items[:50])
        pb = b.predict_many(split_small.given, users[:50], items[:50])
        assert not np.allclose(pa, pb)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ItemBasedCF(k=0)


class TestUserBasedCF:
    def test_hand_computed_resnick(self):
        """One perfectly similar neighbour: prediction = r̄_b + (r − r̄_u)."""
        train = RatingMatrix(
            np.array(
                [
                    [5.0, 3.0, 4.0, 4.0],   # neighbour
                    [1.0, 2.0, 2.0, 1.0],   # dissimilar (flat-ish)
                ]
            )
        )
        model = UserBasedCF(centering="corated_mean", min_overlap=2).fit(train)
        # Active user parallels user 0 exactly on items 0..2.
        given = RatingMatrix(np.array([[4.0, 2.0, 3.0, 0.0]]))
        pred = model.predict(given, 0, 3)
        # sim(active, u0) = 1; prediction = 3.0 + (4.0 − 4.0) = 3.0
        assert pred == pytest.approx(3.0, abs=1e-6)

    def test_plain_eq2_weighted_average(self):
        train = RatingMatrix(
            np.array(
                [
                    [5.0, 3.0, 4.0, 4.0],
                    [4.0, 2.0, 3.0, 2.0],
                ]
            )
        )
        model = UserBasedCF(
            centering="corated_mean", mean_offset=False, min_overlap=2
        ).fit(train)
        given = RatingMatrix(np.array([[4.0, 2.0, 3.0, 0.0]]))
        pred = model.predict(given, 0, 3)
        # Both train users correlate 1.0 with the active profile:
        # plain Eq. 2 average of their ratings on item 3 = (4 + 2) / 2.
        assert pred == pytest.approx(3.0, abs=1e-6)

    def test_mean_offset_beats_plain(self, split_small):
        users, items, truth = split_small.targets_arrays()
        plain = UserBasedCF(mean_offset=False).fit(split_small.train)
        resnick = UserBasedCF(mean_offset=True).fit(split_small.train)
        m_plain = mae(truth, plain.predict_many(split_small.given, users, items))
        m_resnick = mae(truth, resnick.predict_many(split_small.given, users, items))
        assert m_resnick < m_plain

    def test_beats_item_mean(self, split_small):
        users, items, truth = split_small.targets_arrays()
        model = UserBasedCF().fit(split_small.train)
        base = MeanPredictor("item").fit(split_small.train)
        assert mae(truth, model.predict_many(split_small.given, users, items)) < mae(
            truth, base.predict_many(split_small.given, users, items)
        )

    def test_k_cap(self, split_small):
        users, items, _ = split_small.targets_arrays()
        a = UserBasedCF(k=3).fit(split_small.train)
        b = UserBasedCF().fit(split_small.train)
        pa = a.predict_many(split_small.given, users[:50], items[:50])
        pb = b.predict_many(split_small.given, users[:50], items[:50])
        assert not np.allclose(pa, pb)

    def test_in_scale(self, split_small):
        users, items, _ = split_small.targets_arrays()
        preds = UserBasedCF().fit(split_small.train).predict_many(
            split_small.given, users, items
        )
        lo, hi = split_small.train.rating_scale
        assert preds.min() >= lo and preds.max() <= hi


class TestMeanPredictor:
    @pytest.mark.parametrize("kind", ["global", "item", "user", "user_item"])
    def test_kinds_run(self, split_small, kind):
        users, items, _ = split_small.targets_arrays()
        preds = MeanPredictor(kind).fit(split_small.train).predict_many(
            split_small.given, users[:30], items[:30]
        )
        assert np.isfinite(preds).all()

    def test_global_is_constant(self, split_small):
        users, items, _ = split_small.targets_arrays()
        preds = MeanPredictor("global").fit(split_small.train).predict_many(
            split_small.given, users[:30], items[:30]
        )
        assert np.allclose(preds, preds[0])

    def test_item_mean_values(self, tiny_rm):
        model = MeanPredictor("item").fit(tiny_rm)
        given = RatingMatrix(np.array([[0.0, 0.0, 2.0, 0.0, 0.0]]))
        assert model.predict(given, 0, 2) == pytest.approx(4.0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            MeanPredictor("median")

    def test_name(self):
        assert MeanPredictor("item").name == "Mean[item]"
