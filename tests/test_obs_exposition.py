"""Tests for the JSON and Prometheus exposition formats."""

from __future__ import annotations

import json
import re

import pytest

from repro.obs import MetricsRegistry, render_json, render_prometheus
from repro.obs.exposition import sanitize_name
from repro.serving.faults import ManualClock

pytestmark = pytest.mark.obs


def _loaded(registry: MetricsRegistry) -> MetricsRegistry:
    registry.counter("serving.requests").inc(7)
    registry.counter("serving.fallback", stage="CFSF").inc(5)
    registry.counter("serving.fallback", stage="item_knn").inc(2)
    registry.gauge("breaker.open.seconds", breaker="CFSF").set(1.25)
    h = registry.histogram("serving.request.latency", buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.005, 0.05, 0.5):
        h.observe(v)
    with registry.span("model.fit"):
        pass
    return registry


class TestSanitizeName:
    def test_dots_become_underscores(self):
        assert sanitize_name("serving.request.latency") == "serving_request_latency"

    def test_illegal_chars_and_digit_prefix(self):
        assert sanitize_name("p99-latency (ms)") == "p99_latency__ms_"
        assert sanitize_name("9lives") == "_9lives"


class TestRenderJson:
    def test_round_trips_through_json(self):
        reg = _loaded(MetricsRegistry(clock=ManualClock()))
        doc = json.loads(render_json(reg))
        assert {"counters", "gauges", "histograms", "spans"} <= set(doc)
        names = {c["name"] for c in doc["counters"]}
        assert "serving.requests" in names
        (latency,) = [
            h for h in doc["histograms"] if h["name"] == "serving.request.latency"
        ]
        assert latency["count"] == 4
        assert {"p50", "p95", "p99", "buckets", "counts"} <= set(latency)
        assert doc["spans"][0]["name"] == "model.fit"

    def test_accepts_snapshot_dict(self):
        reg = _loaded(MetricsRegistry(clock=ManualClock()))
        assert render_json(reg.snapshot()) == render_json(reg)


class TestRenderPrometheus:
    def test_help_and_type_once_per_family(self):
        text = render_prometheus(_loaded(MetricsRegistry(clock=ManualClock())))
        helps = [l for l in text.splitlines() if l.startswith("# HELP ")]
        types = [l for l in text.splitlines() if l.startswith("# TYPE ")]
        assert len(helps) == len(set(helps)) and len(types) == len(set(types))
        # Both labelled fallback series share one family header.
        assert "# TYPE serving_fallback_total counter" in text
        assert text.count("# TYPE serving_fallback_total") == 1
        assert 'serving_fallback_total{stage="CFSF"} 5' in text
        assert 'serving_fallback_total{stage="item_knn"} 2' in text

    def test_counters_get_total_suffix(self):
        text = render_prometheus(_loaded(MetricsRegistry(clock=ManualClock())))
        assert "serving_requests_total 7" in text
        assert "\nserving_requests 7" not in text

    def test_gauge_rendered_plain(self):
        text = render_prometheus(_loaded(MetricsRegistry(clock=ManualClock())))
        assert "# TYPE breaker_open_seconds gauge" in text
        assert 'breaker_open_seconds{breaker="CFSF"} 1.25' in text

    def test_histogram_buckets_cumulative_ending_at_inf(self):
        text = render_prometheus(_loaded(MetricsRegistry(clock=ManualClock())))
        pattern = re.compile(
            r'^serving_request_latency_bucket\{le="([^"]+)"\} (\d+)$', re.M
        )
        series = pattern.findall(text)
        assert [le for le, _ in series] == ["0.001", "0.01", "0.1", "+Inf"]
        counts = [int(c) for _, c in series]
        assert counts == sorted(counts)  # cumulative, monotone
        assert counts[-1] == 4
        assert "serving_request_latency_count 4" in text
        assert re.search(r"^serving_request_latency_sum 0\.555", text, re.M)

    def test_spans_surface_only_as_histograms(self):
        text = render_prometheus(_loaded(MetricsRegistry(clock=ManualClock())))
        assert "# TYPE span_model_fit histogram" in text
        assert "model.fit" not in text.replace("# HELP span_model_fit span.model.fit", "")

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", msg='say "hi"\nthen\\leave').inc()
        text = render_prometheus(reg)
        assert 'msg="say \\"hi\\"\\nthen\\\\leave"' in text

    def test_empty_registry_renders_empty_document(self):
        assert render_prometheus(MetricsRegistry()) == "\n"

    def test_families_sorted_and_samples_contiguous(self):
        text = render_prometheus(_loaded(MetricsRegistry(clock=ManualClock())))
        family_of = [
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# HELP ")
        ]
        assert family_of == sorted(family_of)
        # Every non-comment sample line belongs to the most recent family.
        current = None
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# HELP "):
                current = line.split()[2]
            elif not line.startswith("#"):
                name = line.split("{")[0].split()[0]
                assert name.startswith(current)
