"""Tests for the dataset registry (resolution + caching)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import clear_dataset_cache, dataset_source, default_dataset
from repro.data.datasets import shuffled_users
from repro.data import SyntheticConfig


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_dataset_cache()
    yield
    clear_dataset_cache()


SMALL = SyntheticConfig(
    n_users=30, n_items=40, mean_ratings_per_user=12, min_ratings_per_user=5
)


class TestDefaultDataset:
    def test_synthetic_fallback_in_offline_env(self):
        rm = default_dataset(seed=0, config=SMALL, prefer_real=False)
        assert rm.shape == (30, 40)
        assert dataset_source(seed=0, config=SMALL, prefer_real=False) == "synthetic"

    def test_cached_identity(self):
        a = default_dataset(seed=0, config=SMALL, prefer_real=False)
        b = default_dataset(seed=0, config=SMALL, prefer_real=False)
        assert a is b

    def test_different_seed_different_cache_entry(self):
        a = default_dataset(seed=0, config=SMALL, prefer_real=False)
        b = default_dataset(seed=1, config=SMALL, prefer_real=False)
        assert a is not b

    def test_clear_cache(self):
        a = default_dataset(seed=0, config=SMALL, prefer_real=False)
        clear_dataset_cache()
        b = default_dataset(seed=0, config=SMALL, prefer_real=False)
        assert a is not b and a == b

    def test_source_before_data_consistent(self):
        src = dataset_source(seed=0, config=SMALL, prefer_real=False)
        rm = default_dataset(seed=0, config=SMALL, prefer_real=False)
        assert src == "synthetic" and rm.n_users == 30


class TestShuffledUsers:
    def test_permutation_preserves_multiset(self):
        rm = default_dataset(seed=0, config=SMALL, prefer_real=False)
        out = shuffled_users(rm, seed=3)
        assert out.n_ratings == rm.n_ratings
        assert sorted(out.user_counts().tolist()) == sorted(rm.user_counts().tolist())

    def test_deterministic(self):
        rm = default_dataset(seed=0, config=SMALL, prefer_real=False)
        a = shuffled_users(rm, seed=3)
        b = shuffled_users(rm, seed=3)
        assert a == b

    def test_actually_shuffles(self):
        rm = default_dataset(seed=0, config=SMALL, prefer_real=False)
        out = shuffled_users(rm, seed=3)
        assert out != rm
