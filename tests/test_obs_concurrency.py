"""Thread-safety regressions: service counters, health(), LRU, breakers.

PR 3's vectorised hot path left the service's cumulative counters as
bare ``+=`` on plain ints — benign single-threaded, silently lossy
once the micro-batcher dispatches from several workers (two threads
read the same old value, both write old+n, one increment vanishes).
These tests hammer the shared state from many threads and assert the
final tallies are *exact*, not approximately right.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serving import PredictionService
from repro.serving.breaker import CircuitBreaker
from repro.utils.cache import LRUCache

N_THREADS = 8
ROUNDS = 30


@pytest.mark.stress
def test_counters_exact_under_concurrent_predict_many(cfsf_small, split_small):
    """8 threads x 30 batches: requests_total must equal the true total."""
    service = PredictionService(cfsf_small, request_cache_size=0)
    users, items, _ = split_small.targets_arrays()
    users, items = users[:40], items[:40]
    service.predict_many(split_small.given, users, items)  # warm prepared state
    barrier = threading.Barrier(N_THREADS)
    errors: list[BaseException] = []

    def worker():
        try:
            # Each thread borrows a private kernel clone (the supported
            # concurrent path — shared scratch buffers would race); the
            # *counters* are the shared state under test here.
            clone = cfsf_small.kernel.clone()
            barrier.wait()
            with cfsf_small.borrowed_kernel(clone):
                for _ in range(ROUNDS):
                    service.predict_many(split_small.given, users, items)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors
    expected = users.size * (N_THREADS * ROUNDS + 1)  # +1 for the warm pass
    assert service.requests_total == expected
    assert service.invalid_total == 0


@pytest.mark.stress
def test_health_readable_while_hammered(cfsf_small, split_small):
    """health() from 8 reader threads during traffic: no tears, no raises."""
    service = PredictionService(cfsf_small)
    users, items, _ = split_small.targets_arrays()
    users, items = users[:20], items[:20]
    stop = threading.Event()
    errors: list[BaseException] = []

    def reader():
        try:
            while not stop.is_set():
                health = service.health()
                assert health["model"] == "CFSF"
                assert health["requests_total"] >= 0
                assert set(health["breakers"]) == set(health["stages"])
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    readers = [threading.Thread(target=reader) for _ in range(N_THREADS)]
    for thread in readers:
        thread.start()
    try:
        for _ in range(ROUNDS):
            service.predict_many(split_small.given, users, items)
    finally:
        stop.set()
        for thread in readers:
            thread.join(timeout=30)
    assert not errors


@pytest.mark.stress
def test_lru_cache_counters_exact_under_contention():
    cache = LRUCache(maxsize=64)
    per_thread = 500
    barrier = threading.Barrier(N_THREADS)

    def worker(t):
        barrier.wait()
        for i in range(per_thread):
            key = (t, i % 16)
            if cache.get(key) is None:
                cache.put(key, i)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    # Every get() recorded exactly one hit or one miss.
    assert cache.hits + cache.misses == N_THREADS * per_thread
    assert len(cache) <= 64


@pytest.mark.stress
def test_breaker_failure_count_exact_under_contention():
    breaker = CircuitBreaker("stress", failure_threshold=10_000_000)
    per_thread = 1000
    barrier = threading.Barrier(N_THREADS)

    def worker():
        barrier.wait()
        for _ in range(per_thread):
            breaker.record_failure()

    threads = [threading.Thread(target=worker) for _ in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert breaker.snapshot()["failures"] == N_THREADS * per_thread


@pytest.mark.stress
def test_sanitize_memo_safe_across_threads(cfsf_small, split_small):
    """Concurrent first-touch of the per-given sanitize memo is benign."""
    service = PredictionService(cfsf_small, request_cache_size=0)
    cfsf_small.warm_online()
    users, items, _ = split_small.targets_arrays()
    barrier = threading.Barrier(N_THREADS)
    outputs = [None] * N_THREADS

    def worker(t):
        clone = cfsf_small.kernel.clone()
        barrier.wait()
        with cfsf_small.borrowed_kernel(clone):
            outputs[t] = service.predict_many(
                split_small.given, users[:10], items[:10]
            ).predictions

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    for out in outputs[1:]:
        assert np.array_equal(out, outputs[0])
