"""Batched fusion kernel vs the scalar per-request path.

The tentpole contract: ``FusionKernel.fuse_many`` must reproduce the
literal per-request LocalMatrix + :func:`repro.core.fusion.fuse` path
to within 1e-9 for every request, in every batch shape the serving
layer produces (single-user, sorted multi-user, shuffled multi-user,
chunk-split oversized blocks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CFSF
from repro.data import default_dataset, make_split

TOL = 1e-9


@pytest.fixture(scope="module")
def fitted():
    ratings = default_dataset(seed=1)
    split = make_split(ratings, n_train_users=80, given_n=10, seed=1)
    model = CFSF().fit(split.train)
    users, items, _ = split.targets_arrays()
    n = min(160, users.size)
    return model, split, users[:n], items[:n]


def _scalar(model, split, users, items):
    return np.array(
        [
            model.predict(split.given, int(u), int(i))
            for u, i in zip(users, items)
        ]
    )


def test_batched_matches_scalar_sorted(fitted):
    model, split, users, items = fitted
    batched = model.predict_many(split.given, users, items)
    np.testing.assert_allclose(
        batched, _scalar(model, split, users, items), rtol=0, atol=TOL
    )


def test_batched_matches_scalar_shuffled(fitted):
    model, split, users, items = fitted
    rng = np.random.default_rng(7)
    perm = rng.permutation(users.size)
    batched = model.predict_many(split.given, users[perm], items[perm])
    np.testing.assert_allclose(
        batched, _scalar(model, split, users[perm], items[perm]), rtol=0, atol=TOL
    )


def test_batched_single_user_fast_path(fitted):
    model, split, users, items = fitted
    u = int(users[0])
    one_user = np.full(10, u)
    ten_items = items[:10]
    batched = model.predict_many(split.given, one_user, ten_items)
    np.testing.assert_allclose(
        batched, _scalar(model, split, one_user, ten_items), rtol=0, atol=TOL
    )


def test_chunk_splitting_is_invisible(fitted):
    """Tiny chunk budgets force block splits; results must not change."""
    model, split, users, items = fitted
    reference = model.predict_many(split.given, users, items)
    kernel = model.kernel
    original = kernel.chunk_elems
    try:
        kernel.chunk_elems = 1  # degenerate: one request per sub-block
        forced = model.predict_many(split.given, users, items)
    finally:
        kernel.chunk_elems = original
    np.testing.assert_array_equal(forced, reference)


@pytest.mark.stress
def test_sixteen_threads_of_clones_match_serial_bitwise(fitted):
    """16 concurrent predict_many calls over borrowed kernel clones.

    The kernel-pool contract, stated at full strength: concurrency
    must not change a single bit — not 1e-9-close, *equal*.  Each
    thread borrows a private clone (shared derived matrices, private
    scratch) and replays the whole request stream; every output array
    must be byte-identical to the single-threaded reference.
    """
    import threading

    model, split, users, items = fitted
    reference = model.predict_many(split.given, users, items)
    n_threads = 16
    outputs = [None] * n_threads
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_threads)

    def worker(t):
        try:
            clone = model.kernel.clone()
            barrier.wait()
            with model.borrowed_kernel(clone):
                outputs[t] = model.predict_many(split.given, users, items)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors
    for t in range(n_threads):
        assert outputs[t] is not None
        np.testing.assert_array_equal(outputs[t], reference)


def test_fuse_many_empty_and_zero_k(fitted):
    model, split, _users, _items = fitted
    kernel = model.kernel
    assert kernel.fuse_many([]).size == 0

    # A user with no like-minded neighbours falls back to the weighted
    # SIR' + mean combination — and must not crash the batched path.
    q_n = kernel.item_means.size
    prep = kernel.prepare_user(
        np.empty(0, dtype=np.intp),
        np.empty(0, dtype=np.float64),
        np.full(q_n, 3.0),
        np.zeros(q_n, dtype=bool),
        3.0,
    )
    out = kernel.fuse_many([(prep, np.arange(5, dtype=np.intp))])
    assert out.shape == (5,)
    assert np.isfinite(out).all()
