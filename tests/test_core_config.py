"""Exhaustive validation tests for CFSFConfig."""

from __future__ import annotations

import pytest

from repro.core import CFSFConfig, PAPER_DEFAULTS


class TestDefaults:
    def test_paper_parameters(self):
        assert PAPER_DEFAULTS.n_clusters == 30
        assert PAPER_DEFAULTS.top_m_items == 95
        assert PAPER_DEFAULTS.top_k_users == 25
        assert PAPER_DEFAULTS.lam == 0.8
        assert PAPER_DEFAULTS.delta == 0.1
        assert PAPER_DEFAULTS.epsilon == 0.35

    def test_frozen(self):
        with pytest.raises(Exception):
            PAPER_DEFAULTS.lam = 0.5  # type: ignore[misc]

    def test_effective_candidate_pool_default(self):
        assert CFSFConfig().effective_candidate_pool() == 100
        assert CFSFConfig(candidate_pool=42).effective_candidate_pool() == 42
        assert CFSFConfig(top_k_users=10).effective_candidate_pool() == 40


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("n_clusters", 0),
        ("top_m_items", 0),
        ("top_k_users", -1),
        ("min_overlap", 0),
        ("candidate_clusters", 0),
        ("candidate_pool", 0),
        ("cache_size", -1),
        ("kmeans_max_iter", 0),
        ("smoothing_shrinkage", -0.5),
        ("active_smoothing_clusters", 0),
    ])
    def test_rejects_bad_counts(self, field, value):
        with pytest.raises((ValueError, TypeError)):
            CFSFConfig(**{field: value})

    @pytest.mark.parametrize("field", ["lam", "delta", "epsilon", "gis_threshold"])
    @pytest.mark.parametrize("value", [-0.1, 1.1, float("nan")])
    def test_rejects_out_of_unit_interval(self, field, value):
        with pytest.raises(ValueError):
            CFSFConfig(**{field: value})

    def test_accepts_boundary_fractions(self):
        cfg = CFSFConfig(lam=0.0, delta=1.0, epsilon=1.0, gis_threshold=0.0)
        assert cfg.delta == 1.0

    def test_none_pools_allowed(self):
        cfg = CFSFConfig(candidate_clusters=None, candidate_pool=None)
        assert cfg.candidate_clusters is None


class TestWith:
    def test_returns_new_instance(self):
        base = CFSFConfig()
        changed = base.with_(lam=0.3)
        assert changed is not base
        assert base.lam == 0.8 and changed.lam == 0.3

    def test_validates_on_replace(self):
        with pytest.raises(ValueError):
            CFSFConfig().with_(delta=2.0)

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            CFSFConfig().with_(bogus=1)

    def test_chained(self):
        cfg = CFSFConfig().with_(lam=0.2).with_(delta=0.5)
        assert (cfg.lam, cfg.delta) == (0.2, 0.5)

    def test_equality(self):
        assert CFSFConfig() == CFSFConfig()
        assert CFSFConfig() != CFSFConfig(lam=0.5)
