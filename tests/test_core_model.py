"""Tests for the end-to-end CFSF estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MeanPredictor, NotFittedError
from repro.core import CFSF, CFSFConfig
from repro.eval import mae


class TestConfigPlumbing:
    def test_overrides_apply(self):
        m = CFSF(top_m_items=42, lam=0.5)
        assert m.config.top_m_items == 42 and m.config.lam == 0.5

    def test_explicit_config_plus_overrides(self):
        cfg = CFSFConfig(n_clusters=7)
        m = CFSF(cfg, top_k_users=9)
        assert m.config.n_clusters == 7 and m.config.top_k_users == 9

    def test_invalid_override_rejected(self):
        with pytest.raises(ValueError):
            CFSF(lam=1.5)

    def test_paper_defaults(self):
        cfg = CFSFConfig()
        assert (cfg.n_clusters, cfg.top_m_items, cfg.top_k_users) == (30, 95, 25)
        assert (cfg.lam, cfg.delta, cfg.epsilon) == (0.8, 0.1, 0.35)

    def test_with_replaces_only_named(self):
        cfg = CFSFConfig().with_(lam=0.4)
        assert cfg.lam == 0.4 and cfg.delta == 0.1


class TestFitState:
    def test_predict_before_fit_raises(self, split_small):
        with pytest.raises(NotFittedError):
            CFSF().predict_many(split_small.given, [0], [0])

    def test_fit_populates_offline_state(self, cfsf_small):
        assert cfsf_small.gis is not None
        assert cfsf_small.clusters is not None
        assert cfsf_small.smoothed is not None
        assert cfsf_small.icluster is not None

    def test_offline_summary_keys(self, cfsf_small):
        s = cfsf_small.offline_summary()
        for key in ("n_users", "gis_sparsity", "n_clusters", "smoothed_fraction"):
            assert key in s

    def test_refit_clears_cache(self, split_small):
        m = CFSF(n_clusters=8, top_m_items=30, top_k_users=10)
        m.fit(split_small.train)
        m.predict(split_small.given, 0, 0)
        assert len(m._cache) > 0
        m.fit(split_small.train)
        assert len(m._cache) == 0


class TestRequestValidation:
    def test_item_space_mismatch(self, cfsf_small, split_small):
        wrong = split_small.given.subset_items(range(10))
        with pytest.raises(ValueError, match="items"):
            cfsf_small.predict_many(wrong, [0], [0])

    def test_index_bounds(self, cfsf_small, split_small):
        with pytest.raises(ValueError):
            cfsf_small.predict_many(split_small.given, [999], [0])
        with pytest.raises(ValueError):
            cfsf_small.predict_many(split_small.given, [0], [99999])

    def test_parallel_array_shapes(self, cfsf_small, split_small):
        with pytest.raises(ValueError):
            cfsf_small.predict_many(split_small.given, [0, 1], [0])


class TestPredictions:
    def test_outputs_finite_in_scale(self, cfsf_small, split_small):
        users, items, _ = split_small.targets_arrays()
        preds = cfsf_small.predict_many(split_small.given, users, items)
        lo, hi = split_small.train.rating_scale
        assert np.isfinite(preds).all()
        assert preds.min() >= lo and preds.max() <= hi

    def test_batched_equals_detailed(self, cfsf_small, split_small):
        users, items, _ = split_small.targets_arrays()
        lo, hi = split_small.train.rating_scale
        batch = cfsf_small.predict_many(split_small.given, users[:25], items[:25])
        for k in range(25):
            detail = cfsf_small.predict_one_detailed(
                split_small.given, int(users[k]), int(items[k])
            )
            assert batch[k] == pytest.approx(np.clip(detail.value, lo, hi), abs=1e-9)

    def test_request_order_invariance(self, cfsf_small, split_small):
        users, items, _ = split_small.targets_arrays()
        users, items = users[:60], items[:60]
        perm = np.random.default_rng(0).permutation(60)
        a = cfsf_small.predict_many(split_small.given, users, items)
        b = cfsf_small.predict_many(split_small.given, users[perm], items[perm])
        assert np.allclose(a[perm], b)

    def test_beats_mean_baseline(self, split_small):
        users, items, truth = split_small.targets_arrays()
        model = CFSF(n_clusters=8, top_m_items=30, top_k_users=10).fit(split_small.train)
        baseline = MeanPredictor("user_item").fit(split_small.train)
        m_cfsf = mae(truth, model.predict_many(split_small.given, users, items))
        m_base = mae(truth, baseline.predict_many(split_small.given, users, items))
        assert m_cfsf < m_base

    def test_single_predict_wrapper(self, cfsf_small, split_small):
        v = cfsf_small.predict(split_small.given, 0, 3)
        assert isinstance(v, float)

    def test_deterministic(self, split_small):
        kw = dict(n_clusters=8, top_m_items=30, top_k_users=10)
        users, items, _ = split_small.targets_arrays()
        a = CFSF(**kw).fit(split_small.train).predict_many(split_small.given, users, items)
        b = CFSF(**kw).fit(split_small.train).predict_many(split_small.given, users, items)
        assert np.array_equal(a, b)


class TestCaching:
    def test_cache_hits_on_repeat_users(self, split_small):
        m = CFSF(n_clusters=8, top_m_items=30, top_k_users=10)
        m.fit(split_small.train)
        users = np.array([0, 0, 0, 1, 1])
        items = np.array([0, 1, 2, 0, 1])
        m.predict_many(split_small.given, users, items)
        stats1 = m.cache_stats()
        m.predict_many(split_small.given, users, items)
        stats2 = m.cache_stats()
        assert stats2["hits"] > stats1["hits"]

    def test_cache_disabled(self, split_small):
        m = CFSF(n_clusters=8, top_m_items=30, top_k_users=10, cache_size=0)
        m.fit(split_small.train)
        m.predict_many(split_small.given, np.array([0, 0]), np.array([0, 1]))
        m.predict_many(split_small.given, np.array([0]), np.array([2]))
        assert m.cache_stats()["hits"] == 0

    def test_different_given_not_conflated(self, split_small):
        """Predictions must change when the given profile changes, even
        for the same user row (cache key correctness)."""
        m = CFSF(n_clusters=8, top_m_items=30, top_k_users=10)
        m.fit(split_small.train)
        p1 = m.predict(split_small.given, 0, 5)
        # zero out user 0's profile
        import numpy as _np
        from repro.data import RatingMatrix

        vals = split_small.given.values.copy()
        mask = split_small.given.mask.copy()
        rated = _np.nonzero(mask[0])[0]
        vals[0, rated] = _np.clip(6.0 - vals[0, rated], 1, 5)  # invert opinions
        altered = RatingMatrix(vals, mask)
        p2 = m.predict(altered, 0, 5)
        assert p1 != p2


class TestParameterEffects:
    def test_lambda_extremes_differ(self, split_small):
        users, items, _ = split_small.targets_arrays()
        m = CFSF(n_clusters=8, top_m_items=30, top_k_users=10)
        m.fit(split_small.train)
        m.config = m.config.with_(lam=0.0, delta=0.0)
        m._cache.clear()
        sir_only = m.predict_many(split_small.given, users, items)
        m.config = m.config.with_(lam=1.0, delta=0.0)
        m._cache.clear()
        sur_only = m.predict_many(split_small.given, users, items)
        assert not np.allclose(sir_only, sur_only)

    def test_adjust_biases_changes_predictions(self, split_small):
        users, items, _ = split_small.targets_arrays()
        kw = dict(n_clusters=8, top_m_items=30, top_k_users=10)
        a = CFSF(**kw, adjust_biases=True).fit(split_small.train)
        b = CFSF(**kw, adjust_biases=False).fit(split_small.train)
        pa = a.predict_many(split_small.given, users, items)
        pb = b.predict_many(split_small.given, users, items)
        assert not np.allclose(pa, pb)

    def test_online_complexity_independent_of_train_size(self, ml_small):
        """The paper's O(M*K) claim: once fitted, per-request cost must
        not scale with the training population.  We assert the weaker,
        machine-robust form: doubling the training users changes online
        time by far less than it changes offline size."""
        from repro.data import make_split
        import time

        sp_small = make_split(ml_small, n_train_users=40, given_n=8, n_test_users=30)
        sp_big = make_split(ml_small, n_train_users=80, given_n=8, n_test_users=30)
        kw = dict(n_clusters=8, top_m_items=30, top_k_users=10)
        users, items, _ = sp_small.targets_arrays()

        def online_time(sp):
            m = CFSF(**kw).fit(sp.train)
            m.predict_many(sp.given, users[:50], items[:50])  # warm
            t0 = time.perf_counter()
            for _ in range(3):
                m._cache.clear()
                m.predict_many(sp.given, users, items)
            return time.perf_counter() - t0

        t_small = online_time(sp_small)
        t_big = online_time(sp_big)
        assert t_big < t_small * 3.0  # far from linear doubling would be 2x+
