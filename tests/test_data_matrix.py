"""Unit tests for the RatingMatrix abstraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import RatingMatrix


class TestConstruction:
    def test_zero_means_unrated_by_default(self, tiny_rm):
        assert not tiny_rm.mask[0, 2]
        assert tiny_rm.mask[0, 0]

    def test_explicit_mask_wins(self):
        values = np.array([[3.0, 0.0]])
        mask = np.array([[False, True]])
        # A rating of literal 0.0 under an explicit mask is normalised
        # into the matrix; the masked-off 3.0 is dropped.
        rm = RatingMatrix(values, mask, rating_scale=(0.0, 5.0))
        assert rm.values[0, 0] == 0.0 and rm.mask[0, 1]

    def test_values_are_readonly(self, tiny_rm):
        with pytest.raises(ValueError):
            tiny_rm.values[0, 0] = 9.0
        with pytest.raises(ValueError):
            tiny_rm.mask[0, 0] = False

    def test_rejects_nan_observed(self):
        with pytest.raises(ValueError, match="finite"):
            RatingMatrix(np.array([[np.nan, 1.0]]), np.array([[True, True]]))

    def test_nan_unobserved_ok(self):
        rm = RatingMatrix(np.array([[np.nan, 1.0]]), np.array([[False, True]]))
        assert rm.values[0, 0] == 0.0

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="low < high"):
            RatingMatrix(np.ones((2, 2)), rating_scale=(5, 1))

    def test_repr_mentions_shape(self, tiny_rm):
        assert "n_users=4" in repr(tiny_rm) and "n_items=5" in repr(tiny_rm)


class TestConstructors:
    def test_from_triplets_roundtrip(self, tiny_rm):
        rebuilt = RatingMatrix.from_triplets(
            tiny_rm.to_triplets(), n_users=4, n_items=5
        )
        assert rebuilt == tiny_rm

    def test_from_triplets_last_wins(self):
        rm = RatingMatrix.from_triplets([(0, 0, 3.0), (0, 0, 5.0)], n_users=1, n_items=1)
        assert rm.values[0, 0] == 5.0

    def test_from_triplets_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="exceeds"):
            RatingMatrix.from_triplets([(2, 0, 1.0)], n_users=2, n_items=1)

    def test_from_triplets_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            RatingMatrix.from_triplets([(-1, 0, 1.0)])

    def test_empty_triplets_need_shape(self):
        with pytest.raises(ValueError):
            RatingMatrix.from_triplets([])
        rm = RatingMatrix.from_triplets([], n_users=2, n_items=3)
        assert rm.n_ratings == 0

    def test_csr_roundtrip(self, tiny_rm):
        assert RatingMatrix.from_csr(tiny_rm.to_csr()) == tiny_rm


class TestAggregates:
    def test_counts_and_density(self, tiny_rm):
        assert tiny_rm.n_ratings == 14
        assert tiny_rm.density == pytest.approx(14 / 20)
        assert tiny_rm.user_counts().tolist() == [4, 4, 5, 1]
        assert tiny_rm.item_counts().tolist() == [3, 3, 2, 3, 3]

    def test_user_means(self, tiny_rm):
        means = tiny_rm.user_means()
        assert means[0] == pytest.approx((5 + 4 + 2 + 1) / 4)
        assert means[3] == pytest.approx(3.0)

    def test_item_means(self, tiny_rm):
        means = tiny_rm.item_means()
        assert means[2] == pytest.approx(4.0)

    def test_empty_user_gets_fill(self):
        rm = RatingMatrix(np.array([[1.0, 2.0], [0.0, 0.0]]))
        assert rm.user_means(fill=9.0)[1] == 9.0
        assert rm.user_means()[1] == pytest.approx(rm.global_mean())

    def test_global_mean_empty_matrix(self):
        rm = RatingMatrix(np.zeros((2, 2)), np.zeros((2, 2), dtype=bool))
        assert rm.global_mean() == 3.0  # scale midpoint

    def test_stats_table_rows(self, tiny_rm):
        labels = [row[0] for row in tiny_rm.stats().as_rows()]
        assert "No. of Users" in labels and "Density of data" in labels

    def test_clip(self, tiny_rm):
        out = tiny_rm.clip(np.array([0.0, 7.0, 3.3]))
        assert out.tolist() == [1.0, 5.0, 3.3]


class TestFunctionalUpdates:
    def test_subset_users_preserves_rows(self, tiny_rm):
        sub = tiny_rm.subset_users([2, 0])
        assert sub.n_users == 2
        assert np.array_equal(sub.values[0], tiny_rm.values[2])

    def test_subset_items(self, tiny_rm):
        sub = tiny_rm.subset_items([4, 1])
        assert sub.n_items == 2
        assert np.array_equal(sub.values[:, 1], tiny_rm.values[:, 1])

    def test_with_ratings_adds_and_overwrites(self, tiny_rm):
        out = tiny_rm.with_ratings([(0, 2, 3.0), (0, 0, 1.0)])
        assert out.values[0, 2] == 3.0 and out.mask[0, 2]
        assert out.values[0, 0] == 1.0
        # original untouched (immutability)
        assert tiny_rm.values[0, 2] == 0.0

    def test_without_ratings(self, tiny_rm):
        out = tiny_rm.without_ratings([(0, 0)])
        assert not out.mask[0, 0] and out.values[0, 0] == 0.0
        assert out.n_ratings == tiny_rm.n_ratings - 1

    def test_append_users(self, tiny_rm):
        both = tiny_rm.append_users(tiny_rm)
        assert both.n_users == 8
        assert np.array_equal(both.values[4:], tiny_rm.values)

    def test_append_users_item_mismatch(self, tiny_rm):
        with pytest.raises(ValueError, match="item count"):
            tiny_rm.append_users(tiny_rm.subset_items([0, 1]))


class TestProfiles:
    def test_user_profile(self, tiny_rm):
        idx, vals = tiny_rm.user_profile(3)
        assert idx.tolist() == [2] and vals.tolist() == [3.0]

    def test_iter_user_profiles_covers_all(self, tiny_rm):
        total = sum(len(idx) for _, idx, _ in tiny_rm.iter_user_profiles())
        assert total == tiny_rm.n_ratings

    def test_equality_and_hash(self, tiny_rm):
        clone = RatingMatrix(tiny_rm.values.copy(), tiny_rm.mask.copy())
        assert clone == tiny_rm
        assert hash(clone) == hash(tiny_rm)
        assert tiny_rm != "not a matrix" or True  # NotImplemented path
