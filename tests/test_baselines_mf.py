"""Tests for the matrix-factorisation baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MatrixFactorization, MeanPredictor
from repro.eval import mae


@pytest.fixture(scope="module")
def fitted_mf(split_small):
    return MatrixFactorization(n_factors=8, n_epochs=25, seed=0).fit(split_small.train)


class TestTraining:
    def test_training_rmse_decreases(self, fitted_mf):
        trace = fitted_mf.training_rmse_trace
        assert len(trace) == 25
        assert trace[-1] < trace[0]

    def test_deterministic_by_seed(self, split_small):
        users, items, _ = split_small.targets_arrays()
        a = MatrixFactorization(n_factors=4, n_epochs=5, seed=3).fit(split_small.train)
        b = MatrixFactorization(n_factors=4, n_epochs=5, seed=3).fit(split_small.train)
        pa = a.predict_many(split_small.given, users[:30], items[:30])
        pb = b.predict_many(split_small.given, users[:30], items[:30])
        assert np.allclose(pa, pb)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            MatrixFactorization(lr=0.0)
        with pytest.raises(ValueError):
            MatrixFactorization(reg=-1.0)
        with pytest.raises(ValueError):
            MatrixFactorization(n_factors=0)
        with pytest.raises(ValueError):
            MatrixFactorization(init_sd=0.0)


class TestPrediction:
    def test_in_scale_and_finite(self, fitted_mf, split_small):
        users, items, _ = split_small.targets_arrays()
        preds = fitted_mf.predict_many(split_small.given, users, items)
        lo, hi = split_small.train.rating_scale
        assert np.isfinite(preds).all()
        assert preds.min() >= lo and preds.max() <= hi

    def test_beats_global_mean(self, fitted_mf, split_small):
        users, items, truth = split_small.targets_arrays()
        m_mf = mae(truth, fitted_mf.predict_many(split_small.given, users, items))
        m_gm = mae(truth, np.full(truth.shape, split_small.train.global_mean()))
        assert m_mf < m_gm

    def test_fold_in_uses_given_profile(self, fitted_mf, split_small):
        """Fold-in must personalise: an inverted profile changes the
        prediction for the same user row."""
        from repro.data import RatingMatrix

        p1 = fitted_mf.predict(split_small.given, 0, 3)
        vals = split_small.given.values.copy()
        mask = split_small.given.mask.copy()
        rated = np.nonzero(mask[0])[0]
        vals[0, rated] = np.clip(6.0 - vals[0, rated], 1, 5)
        p2 = fitted_mf.predict(RatingMatrix(vals, mask), 0, 3)
        assert p1 != pytest.approx(p2, abs=1e-9)

    def test_empty_profile_falls_back_to_biases(self, fitted_mf, split_small):
        from repro.data import RatingMatrix

        empty = RatingMatrix(
            np.zeros((1, split_small.train.n_items)),
            np.zeros((1, split_small.train.n_items), dtype=bool),
        )
        pred = fitted_mf.predict(empty, 0, 0)
        lo, hi = split_small.train.rating_scale
        assert lo <= pred <= hi
