"""Property-based tests for the newer modules: IO round-trips, extra
similarity measures, top-N contracts, and perturbation invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data import RatingMatrix, drop_ratings
from repro.data.io import load_matrix, load_triplets, save_matrix, save_triplets
from repro.data.stats import gini_coefficient
from repro.similarity import adjusted_cosine, jaccard, mean_squared_difference


@st.composite
def masked_matrices(draw, max_rows=10, max_cols=7):
    rows = draw(st.integers(2, max_rows))
    cols = draw(st.integers(2, max_cols))
    values = draw(
        hnp.arrays(np.float64, (rows, cols), elements=st.integers(1, 5).map(float))
    )
    mask = draw(hnp.arrays(np.bool_, (rows, cols), elements=st.booleans()))
    for r in range(rows):
        if not mask[r].any():
            mask[r, draw(st.integers(0, cols - 1))] = True
    return RatingMatrix(np.where(mask, values, 0.0), mask)


class TestIoRoundtripProperties:
    @given(masked_matrices())
    @settings(max_examples=25, deadline=None)
    def test_npz_roundtrip_lossless(self, rm):
        import tempfile, os

        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "m.npz")
            save_matrix(rm, path)
            loaded, _ = load_matrix(path)
            assert loaded == rm

    @given(masked_matrices())
    @settings(max_examples=25, deadline=None)
    def test_csv_roundtrip_lossless(self, rm):
        import tempfile, os

        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "r.csv")
            save_triplets(rm, path)
            loaded, _ = load_triplets(path, n_users=rm.n_users, n_items=rm.n_items)
            assert loaded == rm


class TestExtraSimilarityProperties:
    @given(masked_matrices())
    @settings(max_examples=40, deadline=None)
    def test_all_measures_symmetric_finite(self, rm):
        for fn in (
            lambda: adjusted_cosine(rm.values, rm.mask),
            lambda: mean_squared_difference(rm.values, rm.mask),
            lambda: jaccard(rm.mask),
        ):
            sim = fn()
            assert np.isfinite(sim).all()
            assert np.allclose(sim, sim.T)
            assert np.allclose(np.diag(sim), 1.0)

    @given(masked_matrices())
    @settings(max_examples=40, deadline=None)
    def test_msd_and_jaccard_nonnegative_unit(self, rm):
        for sim in (
            mean_squared_difference(rm.values, rm.mask),
            jaccard(rm.mask),
        ):
            assert (sim >= 0.0).all() and (sim <= 1.0 + 1e-12).all()


class TestPerturbationProperties:
    @given(masked_matrices(), st.floats(0.0, 0.9), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_drop_ratings_invariants(self, rm, fraction, seed):
        out = drop_ratings(rm, fraction, seed=seed, keep_min_per_user=1)
        # never grows, survivors unchanged, per-user floor respected
        assert out.n_ratings <= rm.n_ratings
        assert (out.user_counts() >= 1).all()
        assert np.allclose(out.values[out.mask], rm.values[out.mask])
        assert (out.mask <= rm.mask).all()  # subset of original


class TestGiniProperties:
    @given(hnp.arrays(np.float64, st.integers(1, 30), elements=st.floats(0, 1000)))
    @settings(max_examples=60, deadline=None)
    def test_gini_in_unit_interval(self, counts):
        g = gini_coefficient(counts)
        assert -1e-9 <= g <= 1.0

    @given(st.integers(1, 50), st.floats(0.1, 100))
    @settings(max_examples=40, deadline=None)
    def test_gini_scale_invariant(self, n, scale):
        rng = np.random.default_rng(n)
        counts = rng.uniform(0, 10, size=n)
        a = gini_coefficient(counts)
        b = gini_coefficient(counts * scale)
        assert a == pytest.approx(b, abs=1e-9)
