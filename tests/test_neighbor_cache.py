"""Offline top-M neighbour cache: equivalence with the live GIS scan.

The cache freezes ``GlobalItemSimilarity.top_m`` into compact
``int32``/``float32`` arrays; these tests pin the contract that makes
it safe to serve from: the frozen selection must agree with the live
one for every item and every ``m <= M``, prefixes must behave like
smaller caches, and the persisted arrays must survive a snapshot
round-trip byte-for-byte.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CFSF
from repro.core.gis import NeighborCache, build_gis
from repro.core.persistence import load_model, save_model
from repro.data import default_dataset, make_split


@pytest.fixture(scope="module")
def small_split():
    ratings = default_dataset(seed=3)
    return make_split(ratings, n_train_users=60, given_n=10, seed=3)


@pytest.fixture
def gis(small_split):
    # Function-scoped: attach_cache mutates the GIS, and the
    # equivalence test needs a cache-free starting point.
    return build_gis(small_split.train)


def test_cache_matches_live_topm_for_every_item(gis):
    m = 12
    # Capture the live (uncached) selection first: once a cache is
    # attached, GIS.top_m serves from it, which would make the
    # comparison a tautology.
    assert gis.cache is None
    live = [gis.top_m(item, m) for item in range(gis.n_items)]
    cache = gis.attach_cache(m)
    for item, (live_idx, live_sims) in enumerate(live):
        got_idx, got_sims = cache.top_m(item, m)
        np.testing.assert_array_equal(got_idx, live_idx)
        # cached similarities are float32-rounded canonically
        np.testing.assert_allclose(got_sims, live_sims, rtol=1.2e-7, atol=1.2e-7)


def test_cache_rows_sorted_padded_and_compact(gis):
    cache = gis.attach_cache(15)
    assert cache.indices.dtype == np.int32
    assert cache.sims32.dtype == np.float32
    assert cache.counts.dtype == np.int32
    for item in range(cache.n_items):
        c = int(cache.counts[item])
        row = cache.sims[item]
        assert (np.diff(row[:c]) <= 0).all(), "valid prefix must be descending"
        assert (row[:c] > 0).all(), "cached similarities are positive"
        assert (row[c:] == 0).all(), "rows are zero-padded past counts"


def test_narrowed_prefix_is_smaller_selection(gis):
    wide = gis.attach_cache(15)
    narrow = wide.narrowed(6)
    assert narrow.m == 6
    for item in range(narrow.n_items):
        w_idx, w_sims = wide.top_m(item, 6)
        n_idx, n_sims = narrow.top_m(item, 6)
        np.testing.assert_array_equal(n_idx, w_idx)
        np.testing.assert_array_equal(n_sims, w_sims)
    # same-width narrowing is the identity, oversize asks are rejected
    assert wide.narrowed(15) is wide
    with pytest.raises(ValueError):
        wide.narrowed(16)
    with pytest.raises(ValueError):
        narrow.top_m(0, 7)


def test_cache_survives_snapshot_roundtrip(tmp_path, small_split):
    model = CFSF().fit(small_split.train)
    path = str(tmp_path / "model.npz")
    save_model(model, path)
    loaded = load_model(path)

    orig = model.kernel.cache
    restored = loaded.kernel.cache
    assert isinstance(restored, NeighborCache)
    assert restored.m == orig.m
    np.testing.assert_array_equal(restored.indices, orig.indices)
    np.testing.assert_array_equal(restored.sims32, orig.sims32)
    np.testing.assert_array_equal(restored.counts, orig.counts)

    users, items, _ = small_split.targets_arrays()
    n = min(100, users.size)
    np.testing.assert_array_equal(
        loaded.predict_many(small_split.given, users[:n], items[:n]),
        model.predict_many(small_split.given, users[:n], items[:n]),
    )
