"""Serving-layer request cache: hits, eviction, and reload invalidation.

The LRU result cache keys on ``(given-hash, user, item, model_version)``;
these tests pin the three behaviours the serving layer depends on:
repeat requests are served from cache with identical values, capacity
is bounded by LRU eviction, and a model reload can never serve a stale
entry (the version in the key changes and the cache is flushed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CFSF
from repro.core.persistence import save_model
from repro.data import default_dataset, make_split
from repro.obs import MetricsRegistry
from repro.serving import PredictionService


@pytest.fixture(scope="module")
def fitted():
    ratings = default_dataset(seed=2)
    split = make_split(ratings, n_train_users=60, given_n=10, seed=2)
    model = CFSF().fit(split.train)
    users, items, _ = split.targets_arrays()
    return model, split, users[:40], items[:40]


def test_repeat_batch_hits_cache(fitted):
    model, split, users, items = fitted
    registry = MetricsRegistry()
    service = PredictionService(model, metrics=registry)

    first = service.predict_many(split.given, users, items)
    assert registry.counter_value("serving.cache.hits") == 0
    assert registry.counter_value("serving.cache.misses") == users.size

    second = service.predict_many(split.given, users, items)
    assert registry.counter_value("serving.cache.hits") == users.size
    np.testing.assert_array_equal(second.predictions, first.predictions)
    # cache-served requests report the primary stage, not a fallback
    assert (second.fallback_level == 0).all()


def test_cache_eviction_is_bounded(fitted):
    model, split, users, items = fitted
    service = PredictionService(model, request_cache_size=8)
    service.predict_many(split.given, users, items)
    assert len(service._request_cache) <= 8

    # The 8 most recent requests are the survivors.
    registry_hits_before = service._request_cache.hits
    service.predict_many(split.given, users[-8:], items[-8:])
    assert service._request_cache.hits == registry_hits_before + 8


def test_cache_disabled_when_size_zero(fitted):
    model, split, users, items = fitted
    registry = MetricsRegistry()
    service = PredictionService(model, metrics=registry, request_cache_size=0)
    service.predict_many(split.given, users, items)
    service.predict_many(split.given, users, items)
    assert registry.counter_value("serving.cache.hits") == 0
    assert registry.counter_value("serving.cache.misses") == 0


def test_reload_invalidates_cache(fitted, tmp_path):
    model, split, users, items = fitted
    path = str(tmp_path / "model.npz")
    save_model(model, path)

    registry = MetricsRegistry()
    service = PredictionService(model, metrics=registry, snapshot_path=path)
    service.predict_many(split.given, users, items)
    version_before = service.model_version

    assert service.reload()
    assert service.model_version == version_before + 1
    assert len(service._request_cache) == 0

    # Same batch after reload: no stale hit is possible.
    result = service.predict_many(split.given, users, items)
    assert registry.counter_value("serving.cache.hits") == 0
    assert np.isfinite(result.predictions).all()


def test_given_change_misses_cache(fitted):
    """A different given matrix must never collide with cached keys."""
    model, split, users, items = fitted
    registry = MetricsRegistry()
    service = PredictionService(model, metrics=registry)
    first = service.predict_many(split.given, users, items)

    rated = np.nonzero(split.given.mask[int(users[0])])[0]
    old = float(split.given.values[int(users[0]), rated[0]])
    perturbed = split.given.with_ratings(
        [(int(users[0]), int(rated[0]), 1.0 if old != 1.0 else 2.0)]
    )

    service.predict_many(split.given, users, items)  # warm hits
    hits_before = registry.counter_value("serving.cache.hits")
    second = service.predict_many(perturbed, users, items)
    assert registry.counter_value("serving.cache.hits") == hits_before
    assert second.predictions.shape == first.predictions.shape
