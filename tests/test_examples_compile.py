"""Every example script must at least parse and expose a main().

The examples are exercised manually/by the harness at full scale; this
cheap gate catches syntax errors and missing imports on every test
run without paying their runtime.
"""

from __future__ import annotations

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLE_FILES) >= 3, "the deliverable requires >= 3 examples"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    func_names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in func_names, f"{path.name} lacks a main()"
    # and a __main__ guard so importing never runs the experiment
    has_guard = any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body
    )
    assert has_guard, f"{path.name} lacks an `if __name__ == '__main__'` guard"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_docstring_mentions_invocation(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    doc = ast.get_docstring(tree) or ""
    assert f"examples/{path.name}" in doc, f"{path.name} docstring lacks a usage line"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Compile (not run) the module; imports are checked by loading the
    module spec with execution deferred to main()."""
    spec = importlib.util.spec_from_file_location(path.stem, path)
    assert spec is not None and spec.loader is not None
    compile(path.read_text(encoding="utf-8"), str(path), "exec")
