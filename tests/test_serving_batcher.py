"""MicroBatcher: correctness, coalescing, admission control, lifecycle.

The batcher must be an *invisible* optimisation: every answer it
returns has to match what a direct ``PredictionService`` call would
have said, whatever the interleaving.  On top of that these tests pin
the contracts that make it operable — deterministic coalescing at the
batch-size threshold, the two overload policies, and a clean drain on
close.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serving import (
    KernelPool,
    MicroBatcher,
    OverloadedError,
    PredictionService,
)


@pytest.fixture(scope="module")
def service(cfsf_small):
    svc = PredictionService(cfsf_small, request_cache_size=0)
    svc.model.warm_online()
    return svc


@pytest.fixture(scope="module")
def stream(split_small):
    users, items, _ = split_small.targets_arrays()
    n = min(96, users.size)
    return users[:n], items[:n]


def test_batched_answers_match_direct_service(service, split_small, stream):
    users, items = stream
    direct = service.predict_many(split_small.given, users, items)
    with MicroBatcher(service, workers=2, max_wait_us=200.0) as batcher:
        futures = [
            batcher.submit(split_small.given, int(u), int(i))
            for u, i in zip(users, items)
        ]
        got = np.array([f.result(timeout=30).value for f in futures])
    assert np.array_equal(got, direct.predictions)


def test_result_carries_serving_provenance(service, split_small, stream):
    users, items = stream
    with MicroBatcher(service, workers=1) as batcher:
        result = batcher.submit(split_small.given, int(users[0]), int(items[0])).result(
            timeout=30
        )
    assert result.fallback_level == 0
    assert result.stage == "CFSF"
    assert not result.degraded
    assert result.queue_wait >= 0.0


def test_concurrent_submitters_all_get_right_answers(service, split_small, stream):
    users, items = stream
    direct = service.predict_many(split_small.given, users, items).predictions
    n_threads = 8
    got = np.empty(users.size, dtype=np.float64)
    barrier = threading.Barrier(n_threads)
    per = users.size // n_threads

    def client(t):
        lo = t * per
        barrier.wait()
        futures = [
            (idx, service_batcher.submit(split_small.given, int(users[idx]), int(items[idx])))
            for idx in range(lo, lo + per)
        ]
        for idx, future in futures:
            got[idx] = future.result(timeout=30).value

    with MicroBatcher(service, workers=2, max_wait_us=500.0) as service_batcher:
        threads = [threading.Thread(target=client, args=(t,)) for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        stats = service_batcher.stats()
    assert np.array_equal(got[: per * n_threads], direct[: per * n_threads])
    assert stats["dispatched_requests"] == per * n_threads


def test_coalesces_at_batch_size_threshold(service, split_small, stream):
    """With a long max_wait, exactly max_batch_size submits = one batch."""
    users, items = stream
    batch = 8
    with MicroBatcher(
        service, workers=1, max_batch_size=batch, max_wait_us=2_000_000.0
    ) as batcher:
        futures = [
            batcher.submit(split_small.given, int(users[i]), int(items[i]))
            for i in range(batch)
        ]
        for future in futures:
            future.result(timeout=30)
        stats = batcher.stats()
    assert stats["dispatched_batches"] == 1
    assert stats["mean_batch_size"] == batch


def _stalled_batcher(service, **kwargs):
    """A batcher whose single dispatch worker is parked on an empty pool.

    Checking out the only kernel ourselves means the worker blocks in
    ``pool.checkout()`` — deterministic back-pressure for the
    admission-control tests.  Returns (batcher, release_callable).
    """
    pool = KernelPool(service.model.kernel, max_workers=1)
    hold = pool.checkout()
    hold.__enter__()
    batcher = MicroBatcher(service, workers=1, pool=pool, **kwargs)
    return batcher, lambda: hold.__exit__(None, None, None)


def _wait_until(predicate, timeout=5.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return False


def test_overload_policy_raise(service, split_small, stream):
    users, items = stream
    batcher, release = _stalled_batcher(
        service, max_queue=2, max_wait_us=0.0, overload_policy="raise"
    )
    try:
        batcher.submit(split_small.given, int(users[0]), int(items[0]))
        # The worker pops the head then parks on the pool; wait for it
        # so the next two submits deterministically fill the queue.
        assert _wait_until(lambda: batcher.queue_depth == 0)
        batcher.submit(split_small.given, int(users[1]), int(items[1]))
        batcher.submit(split_small.given, int(users[2]), int(items[2]))
        with pytest.raises(OverloadedError) as excinfo:
            batcher.submit(split_small.given, int(users[3]), int(items[3]))
        assert excinfo.value.queue_depth == 2
        assert excinfo.value.max_queue == 2
        assert batcher.stats()["rejected_total"] == 1
    finally:
        release()
        batcher.close()


def test_overload_policy_shed_answers_degraded(service, split_small, stream):
    users, items = stream
    batcher, release = _stalled_batcher(
        service, max_queue=1, max_wait_us=0.0, overload_policy="shed"
    )
    try:
        batcher.submit(split_small.given, int(users[0]), int(items[0]))
        assert _wait_until(lambda: batcher.queue_depth == 0)
        batcher.submit(split_small.given, int(users[1]), int(items[1]))
        shed = batcher.submit(split_small.given, int(users[2]), int(items[2]))
        # Shed futures resolve immediately (no queue slot, no kernel):
        # the answer comes from the cheap fallback stage, flagged so.
        result = shed.result(timeout=0)
        assert result.degraded
        assert result.fallback_level > 0
        assert np.isfinite(result.value)
        assert batcher.stats()["shed_total"] == 1
    finally:
        release()
        batcher.close()


def test_close_drains_pending_requests(service, split_small, stream):
    users, items = stream
    batcher = MicroBatcher(service, workers=1, max_wait_us=2_000_000.0, max_batch_size=512)
    futures = [
        batcher.submit(split_small.given, int(u), int(i))
        for u, i in zip(users[:16], items[:16])
    ]
    # max_wait is 2s and the batch is far from full: nothing would
    # dispatch yet.  close() must flush the queue, not abandon it.
    batcher.close(timeout=30)
    assert all(future.done() for future in futures)
    assert all(np.isfinite(future.result().value) for future in futures)


def test_submit_after_close_raises(service, split_small, stream):
    users, items = stream
    batcher = MicroBatcher(service, workers=1)
    batcher.close()
    with pytest.raises(RuntimeError, match="closed"):
        batcher.submit(split_small.given, int(users[0]), int(items[0]))


def test_dispatch_failure_reaches_every_caller(service, split_small, stream):
    users, items = stream

    class _BrokenService:
        model = service.model

        def predict_many(self, *args, **kwargs):
            raise RuntimeError("induced dispatch fault")

    batcher = MicroBatcher(_BrokenService(), workers=1, max_wait_us=0.0)
    try:
        future = batcher.submit(split_small.given, int(users[0]), int(items[0]))
        with pytest.raises(RuntimeError, match="induced dispatch fault"):
            future.result(timeout=30)
    finally:
        batcher.close()


def test_rejects_bad_knobs(service):
    with pytest.raises(ValueError, match="overload_policy"):
        MicroBatcher(service, overload_policy="drop")
    with pytest.raises(ValueError, match="max_wait_us"):
        MicroBatcher(service, max_wait_us=-1.0)
