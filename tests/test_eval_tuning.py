"""Tests for the CFSF hyper-parameter search."""

from __future__ import annotations

import pytest

from repro.core import CFSFConfig
from repro.eval.tuning import Trial, TuningResult, tune_cfsf

BASE = CFSFConfig(n_clusters=6, top_m_items=15, top_k_users=6)


class TestGridSearch:
    def test_covers_full_grid(self, ml_small):
        result = tune_cfsf(
            ml_small.subset_users(range(80)),
            {"lam": [0.2, 0.8], "delta": [0.0, 0.3]},
            base_config=BASE,
            n_valid_users=20,
            given_n=6,
        )
        assert result.n_trials == 4
        seen = {t.overrides for t in result.trials}
        assert len(seen) == 4

    def test_best_is_minimum(self, ml_small):
        result = tune_cfsf(
            ml_small.subset_users(range(80)),
            {"lam": [0.0, 0.5, 1.0]},
            base_config=BASE,
            n_valid_users=20,
            given_n=6,
        )
        assert result.best_mae == min(t.mae for t in result.trials)
        assert result.best_config.lam in (0.0, 0.5, 1.0)

    def test_base_fields_preserved(self, ml_small):
        result = tune_cfsf(
            ml_small.subset_users(range(80)),
            {"lam": [0.3]},
            base_config=BASE,
            n_valid_users=20,
            given_n=6,
        )
        assert result.best_config.n_clusters == 6
        assert result.best_config.lam == 0.3

    def test_offline_field_triggers_refits(self, ml_small):
        result = tune_cfsf(
            ml_small.subset_users(range(80)),
            {"n_clusters": [4, 8]},
            base_config=BASE,
            n_valid_users=20,
            given_n=6,
        )
        maes = [t.mae for t in result.trials]
        assert len(maes) == 2

    def test_top_sorted(self, ml_small):
        result = tune_cfsf(
            ml_small.subset_users(range(80)),
            {"lam": [0.0, 0.4, 0.8, 1.0]},
            base_config=BASE,
            n_valid_users=20,
            given_n=6,
        )
        top = result.top(3)
        assert len(top) == 3
        assert top[0].mae <= top[1].mae <= top[2].mae


class TestRandomSearch:
    def test_draw_count(self, ml_small):
        result = tune_cfsf(
            ml_small.subset_users(range(80)),
            {"lam": [0.0, 0.25, 0.5, 0.75, 1.0], "epsilon": [0.2, 0.5, 0.8]},
            base_config=BASE,
            n_valid_users=20,
            given_n=6,
            search="random",
            n_random=5,
            seed=1,
        )
        assert result.n_trials == 5

    def test_deterministic_by_seed(self, ml_small):
        kwargs = dict(
            param_grid={"lam": [0.0, 0.5, 1.0]},
            base_config=BASE,
            n_valid_users=20,
            given_n=6,
            search="random",
            n_random=4,
        )
        sub = ml_small.subset_users(range(80))
        a = tune_cfsf(sub, seed=9, **kwargs)
        b = tune_cfsf(sub, seed=9, **kwargs)
        assert [t.overrides for t in a.trials] == [t.overrides for t in b.trials]
        assert a.best_mae == b.best_mae


class TestValidation:
    def test_unknown_field(self, ml_small):
        with pytest.raises(ValueError, match="unknown"):
            tune_cfsf(ml_small, {"bogus": [1]}, n_valid_users=20, given_n=6)

    def test_empty_values(self, ml_small):
        with pytest.raises(ValueError, match="at least one"):
            tune_cfsf(ml_small, {"lam": []}, n_valid_users=20, given_n=6)

    def test_valid_users_bound(self, ml_small):
        with pytest.raises(ValueError, match="must be <"):
            tune_cfsf(ml_small, {"lam": [0.5]}, n_valid_users=ml_small.n_users, given_n=6)

    def test_bad_search(self, ml_small):
        with pytest.raises(ValueError, match="search"):
            tune_cfsf(
                ml_small.subset_users(range(80)),
                {"lam": [0.5]},
                base_config=BASE,
                n_valid_users=20,
                given_n=6,
                search="annealing",
            )

    def test_trial_as_dict(self):
        t = Trial(overrides=(("lam", 0.5),), mae=0.7)
        assert t.as_dict() == {"lam": 0.5}
