"""Edge-case tests for report formatting and ascii plotting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import ascii_plot, format_paper_table, format_table


class TestFormatTableEdges:
    def test_single_cell(self):
        out = format_table(["x"], [[1.0]])
        assert "1.000" in out

    def test_bool_not_formatted_as_float(self):
        out = format_table(["ok"], [[True]])
        assert "True" in out

    def test_custom_float_fmt(self):
        out = format_table(["x"], [[0.123456]], float_fmt="{:.5f}")
        assert "0.12346" in out

    def test_wide_headers_align(self):
        out = format_table(["very long header", "b"], [[1, 2]])
        lines = out.splitlines()
        assert len(lines[0]) >= len("very long header")

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and len(out.splitlines()) == 2

    def test_none_rendered(self):
        out = format_table(["a"], [[None]])
        assert "None" in out


class TestAsciiPlotEdges:
    def test_single_point(self):
        out = ascii_plot([1.0], {"s": [0.5]})
        assert "0.500" in out

    def test_two_identical_x(self):
        out = ascii_plot([2.0, 2.0], {"s": [0.4, 0.6]})
        assert "0.600" in out

    def test_many_series_marker_cycle(self):
        series = {f"s{i}": [float(i), float(i + 1)] for i in range(10)}
        out = ascii_plot([0.0, 1.0], series)
        # 10 series with 8 markers: cycle reuses markers without crashing
        assert "s9" in out

    def test_custom_dimensions(self):
        out = ascii_plot([0, 1], {"s": [0.1, 0.9]}, width=20, height=5)
        body_lines = [l for l in out.splitlines() if "│" in l or "┘" in l]
        assert len(body_lines) == 5

    def test_negative_values(self):
        out = ascii_plot([0, 1], {"s": [-1.0, 1.0]})
        assert "-1.000" in out


class TestFormatPaperTableEdges:
    def test_multiple_groups_blank_repeats(self):
        results = {
            ("A/Given5", "m1"): 0.5,
            ("B/Given5", "m1"): 0.6,
        }
        out = format_paper_table(
            results, training_sets=("A", "B"), methods=("m1",), given_labels=("Given5",)
        )
        assert "A" in out and "B" in out

    def test_method_order_preserved(self):
        results = {("A/Given5", "z"): 0.1, ("A/Given5", "a"): 0.2}
        out = format_paper_table(
            results, training_sets=("A",), methods=("z", "a"), given_labels=("Given5",)
        )
        z_pos = out.index(" z ") if " z " in out else out.index("z")
        a_pos = out.rindex("a ")
        assert z_pos < a_pos
