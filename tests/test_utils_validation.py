"""Unit tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    check_fraction,
    check_mask,
    check_positive_int,
    check_rating_matrix,
    check_same_shape,
    require,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckPositiveInt:
    def test_accepts_python_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_returns_python_int(self):
        assert type(check_positive_int(np.int32(2), "x")) is int

    def test_rejects_bool(self):
        with pytest.raises(TypeError, match="x must be an int"):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")

    def test_rejects_below_minimum(self):
        with pytest.raises(ValueError, match=">= 1"):
            check_positive_int(0, "x")

    def test_custom_minimum(self):
        assert check_positive_int(0, "x", minimum=0) == 0
        with pytest.raises(ValueError):
            check_positive_int(-1, "x", minimum=0)


class TestCheckFraction:
    def test_accepts_endpoints_when_closed(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0

    def test_rejects_endpoints_when_open(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "f", closed=False)
        with pytest.raises(ValueError):
            check_fraction(1.0, "f", closed=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_fraction(1.5, "f")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_fraction(float("nan"), "f")

    def test_rejects_bool_and_str(self):
        with pytest.raises(TypeError):
            check_fraction(True, "f")
        with pytest.raises(TypeError):
            check_fraction("0.5", "f")

    def test_accepts_int_in_range(self):
        assert check_fraction(1, "f") == 1.0


class TestCheckRatingMatrix:
    def test_converts_to_contiguous_float64(self):
        arr = check_rating_matrix([[1, 2], [3, 4]])
        assert arr.dtype == np.float64
        assert arr.flags["C_CONTIGUOUS"]

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_rating_matrix(np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_rating_matrix(np.zeros((0, 4)))


class TestCheckMask:
    def test_accepts_bool(self):
        m = check_mask(np.ones((2, 2), dtype=bool), (2, 2))
        assert m.dtype == np.bool_

    def test_accepts_01_ints(self):
        m = check_mask(np.array([[0, 1], [1, 0]]), (2, 2))
        assert m.dtype == np.bool_

    def test_rejects_other_values(self):
        with pytest.raises(ValueError, match="boolean"):
            check_mask(np.array([[0, 2], [1, 0]]), (2, 2))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            check_mask(np.ones((2, 3), dtype=bool), (2, 2))


class TestCheckSameShape:
    def test_pass(self):
        check_same_shape(np.zeros(3), np.ones(3))

    def test_fail(self):
        with pytest.raises(ValueError, match="does not match"):
            check_same_shape(np.zeros(3), np.ones(4), ("a", "b"))
