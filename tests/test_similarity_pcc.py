"""Tests for the masked PCC kernels, including brute-force cross-checks."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.similarity import item_pcc, pairwise_pcc, pcc_to_rows, user_pcc


def brute_force_corated(values, mask, a, b, min_overlap=2):
    """Reference Pearson over the co-rated subset."""
    co = mask[:, a] & mask[:, b]
    if co.sum() < min_overlap:
        return 0.0
    x, y = values[co, a], values[co, b]
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.clip(np.corrcoef(x, y)[0, 1], -1, 1))


def brute_force_global(values, mask, a, b, min_overlap=2):
    """Reference Eq. 5: deviations from the overall column means,
    summed over the co-rated rows."""
    co = mask[:, a] & mask[:, b]
    if co.sum() < min_overlap:
        return 0.0
    mean_a = values[mask[:, a], a].mean()
    mean_b = values[mask[:, b], b].mean()
    xa = values[co, a] - mean_a
    xb = values[co, b] - mean_b
    den = np.sqrt((xa**2).sum()) * np.sqrt((xb**2).sum())
    if den == 0:
        return 0.0
    return float(np.clip((xa * xb).sum() / den, -1, 1))


@pytest.fixture(scope="module")
def masked_case():
    rng = np.random.default_rng(17)
    values = rng.integers(1, 6, size=(30, 12)).astype(float)
    mask = rng.random((30, 12)) < 0.6
    return values, mask


class TestAgainstBruteForce:
    def test_corated_centering_exact(self, masked_case):
        values, mask = masked_case
        sim = pairwise_pcc(values, mask, centering="corated_mean")
        for a, b in itertools.combinations(range(12), 2):
            ref = brute_force_corated(values, mask, a, b)
            assert sim[a, b] == pytest.approx(ref, abs=1e-10), (a, b)

    def test_global_centering_exact(self, masked_case):
        values, mask = masked_case
        sim = pairwise_pcc(values, mask, centering="global_mean")
        for a, b in itertools.combinations(range(12), 2):
            ref = brute_force_global(values, mask, a, b)
            assert sim[a, b] == pytest.approx(ref, abs=1e-10), (a, b)

    def test_pcc_to_rows_matches_pairwise(self, masked_case):
        values, mask = masked_case
        # Rows of the transposed problem == columns of the original.
        full = pairwise_pcc(values, mask, centering="global_mean")
        rows = pcc_to_rows(
            np.ascontiguousarray(values.T),
            np.ascontiguousarray(mask.T),
            np.ascontiguousarray(values.T),
            np.ascontiguousarray(mask.T),
            centering="global_mean",
        )
        off = ~np.eye(12, dtype=bool)
        assert np.allclose(full[off], rows[off], atol=1e-10)


class TestStructuralProperties:
    @pytest.mark.parametrize("centering", ["global_mean", "corated_mean"])
    def test_symmetry(self, masked_case, centering):
        values, mask = masked_case
        sim = pairwise_pcc(values, mask, centering=centering)
        assert np.allclose(sim, sim.T)

    @pytest.mark.parametrize("centering", ["global_mean", "corated_mean"])
    def test_range_and_diagonal(self, masked_case, centering):
        values, mask = masked_case
        sim = pairwise_pcc(values, mask, centering=centering)
        assert sim.min() >= -1.0 and sim.max() <= 1.0
        assert np.allclose(np.diag(sim), 1.0)

    def test_min_overlap_zeroes_pairs(self, masked_case):
        values, mask = masked_case
        sim = pairwise_pcc(values, mask, min_overlap=100)
        off = ~np.eye(12, dtype=bool)
        assert (sim[off] == 0.0).all()

    def test_identical_columns_have_sim_one(self):
        values = np.tile(np.array([[1.0], [3.0], [5.0], [2.0]]), (1, 2))
        mask = np.ones((4, 2), dtype=bool)
        sim = pairwise_pcc(values, mask, centering="corated_mean")
        assert sim[0, 1] == pytest.approx(1.0)

    def test_anticorrelated_columns(self):
        values = np.array([[1.0, 5.0], [2.0, 4.0], [5.0, 1.0], [4.0, 2.0]])
        mask = np.ones((4, 2), dtype=bool)
        sim = pairwise_pcc(values, mask, centering="corated_mean")
        assert sim[0, 1] == pytest.approx(-1.0)

    def test_constant_column_gives_zero(self):
        values = np.array([[3.0, 1.0], [3.0, 4.0], [3.0, 2.0]])
        mask = np.ones((3, 2), dtype=bool)
        sim = pairwise_pcc(values, mask, centering="corated_mean")
        assert sim[0, 1] == 0.0

    def test_empty_overlap_gives_zero(self):
        values = np.array([[3.0, 0.0], [0.0, 4.0]])
        mask = values != 0
        sim = pairwise_pcc(values, mask)
        assert sim[0, 1] == 0.0


class TestConvenienceWrappers:
    def test_item_pcc_is_column_pcc(self, masked_case):
        values, mask = masked_case
        assert np.allclose(item_pcc(values, mask), pairwise_pcc(values, mask))

    def test_user_pcc_is_row_pcc(self, masked_case):
        values, mask = masked_case
        expected = pairwise_pcc(
            np.ascontiguousarray(values.T), np.ascontiguousarray(mask.T)
        )
        assert np.allclose(user_pcc(values, mask), expected)


class TestPccToRows:
    def test_shape(self, masked_case):
        values, mask = masked_case
        out = pcc_to_rows(values[:5], mask[:5], values, mask)
        assert out.shape == (5, 30)

    def test_item_axis_mismatch(self, masked_case):
        values, mask = masked_case
        with pytest.raises(ValueError, match="items"):
            pcc_to_rows(values[:, :5], mask[:, :5], values, mask)

    def test_self_row_similarity_is_one(self, masked_case):
        values, mask = masked_case
        out = pcc_to_rows(
            values[:1], mask[:1], values[:1], mask[:1], centering="corated_mean"
        )
        assert out[0, 0] == pytest.approx(1.0)
