"""Unit tests for the metrics registry (counters, gauges, histograms, spans)."""

from __future__ import annotations

import json
import pickle
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    get_registry,
    set_registry,
    span,
    use_registry,
)
from repro.serving.faults import ManualClock

pytestmark = pytest.mark.obs


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("requests")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_get_or_create_returns_same_handle(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("fallback", stage="CFSF").inc(3)
        reg.counter("fallback", stage="item_knn").inc()
        assert reg.counter_value("fallback", stage="CFSF") == 3
        assert reg.counter_value("fallback", stage="item_knn") == 1
        assert reg.counter_value("fallback", stage="user_mean") == 0.0

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            reg.counter("x").inc(-1)

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_empty_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("")
        with pytest.raises(ValueError):
            reg.span("")


class TestGauge:
    def test_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("pool.size")
        g.set(4)
        g.add(-1.5)
        assert g.value == 2.5


class TestHistogram:
    def test_observe_updates_exact_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 8.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(13.0)
        assert h.min == 0.5 and h.max == 8.0
        assert h.mean == pytest.approx(3.25)
        # One sample per bucket, including the +Inf tail.
        assert h.counts == [1, 1, 1, 1]

    def test_quantile_interpolates_and_clamps(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 8.0):
            h.observe(v)
        # Quantiles are bucket estimates but never leave [min, max].
        assert h.min <= h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0) <= h.max
        assert h.quantile(1.0) == 8.0  # +Inf bucket resolves to the true max
        assert h.quantile(0.0) == 0.5

    def test_quantile_single_sample_is_exactish(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        h.observe(0.007)
        for q in (0.5, 0.95, 0.99):
            assert h.quantile(q) == pytest.approx(0.007)

    def test_quantile_empty_and_invalid(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        assert h.quantile(0.99) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_default_buckets(self):
        reg = MetricsRegistry()
        assert reg.histogram("lat").buckets == DEFAULT_LATENCY_BUCKETS

    def test_bucket_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 2.0))
        reg.histogram("lat")  # no buckets requested: existing handle is fine
        with pytest.raises(ValueError, match="already registered with buckets"):
            reg.histogram("lat", buckets=(1.0, 3.0))

    def test_bad_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="ascending"):
            reg.histogram("lat", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="ascending"):
            reg.histogram("lat2", buckets=())


class TestThreadSafety:
    def test_concurrent_updates_lose_nothing(self):
        reg = MetricsRegistry()
        n_threads, n_each = 8, 500

        def work():
            for _ in range(n_each):
                reg.counter("hits").inc()
                reg.histogram("lat", buckets=(0.5, 1.0)).observe(0.25)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("hits") == n_threads * n_each
        assert reg.histogram("lat").count == n_threads * n_each


class TestSnapshotDrainMerge:
    def test_snapshot_is_jsonable(self):
        reg = MetricsRegistry(clock=ManualClock())
        reg.counter("c", stage="a").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.01)
        with reg.span("fit", n=3):
            pass
        snap = json.loads(json.dumps(reg.snapshot()))
        assert {"counters", "gauges", "histograms", "spans"} <= set(snap)
        hist = snap["histograms"][0]
        assert {"buckets", "counts", "sum", "count", "p50", "p95", "p99"} <= set(hist)

    def test_drain_resets_and_partitions_the_stream(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.histogram("h").observe(0.1)
        delta = reg.drain()
        assert reg.counter_value("c") == 0.0
        assert reg.histogram("h").count == 0
        reg.counter("c").inc(2)
        second = reg.drain()
        # Merging each delta exactly once reconstructs the full stream.
        target = MetricsRegistry()
        target.merge(delta)
        target.merge(second)
        assert target.counter_value("c") == 7
        assert target.histogram("h").count == 1

    def test_merge_semantics(self):
        src = MetricsRegistry()
        src.counter("c").inc(5)
        src.gauge("g").set(3.0)
        src.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        delta = src.snapshot()
        dst = MetricsRegistry()
        dst.gauge("g").set(99.0)
        dst.merge(delta)
        dst.merge(delta)
        assert dst.counter_value("c") == 10  # counters add
        assert dst.gauge("g").value == 3.0  # gauges take the incoming value
        h = dst.histogram("h")
        assert h.count == 2 and h.min == 0.5 and h.max == 0.5

    def test_merge_rejects_mismatched_buckets(self):
        src = MetricsRegistry()
        src.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        dst = MetricsRegistry()
        dst.histogram("h", buckets=(5.0, 6.0))
        with pytest.raises(ValueError, match="already registered with buckets"):
            dst.merge(src.snapshot())

    def test_merge_empty_delta_is_noop(self):
        reg = MetricsRegistry()
        reg.merge({})
        reg.merge(reg.drain())
        assert reg.snapshot()["counters"] == []

    def test_delta_pickles(self):
        reg = MetricsRegistry(clock=ManualClock())
        reg.counter("c").inc()
        with reg.span("s"):
            pass
        delta = reg.drain()
        assert pickle.loads(pickle.dumps(delta)) == delta

    def test_reset_keeps_handles(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc(4)
        reg.reset()
        assert c.value == 0.0
        assert reg.counter("c") is c


class TestSpans:
    def test_duration_from_injected_clock(self):
        clock = ManualClock()
        reg = MetricsRegistry(clock=clock)
        with reg.span("fit") as sp:
            clock.advance(1.5)
            sp.set(n_iter=7)
        (rec,) = reg.spans("fit")
        assert rec["duration"] == pytest.approx(1.5)
        assert rec["attrs"] == {"n_iter": 7}
        assert rec["parent"] is None and rec["depth"] == 0
        # The duration also lands in the span.<name> histogram.
        assert reg.histogram("span.fit").count == 1

    def test_nesting_records_parent_and_depth(self):
        clock = ManualClock()
        reg = MetricsRegistry(clock=clock)
        with reg.span("outer"):
            with reg.span("inner"):
                clock.advance(1.0)
        inner, outer = reg.spans()  # inner closes first
        assert (inner["name"], inner["parent"], inner["depth"]) == ("inner", "outer", 1)
        assert (outer["name"], outer["parent"], outer["depth"]) == ("outer", None, 0)
        assert outer["duration"] >= inner["duration"]

    def test_exception_still_records(self):
        clock = ManualClock()
        reg = MetricsRegistry(clock=clock)
        with pytest.raises(RuntimeError):
            with reg.span("boom"):
                clock.advance(0.5)
                raise RuntimeError("x")
        (rec,) = reg.spans("boom")
        assert rec["duration"] == pytest.approx(0.5)
        # The stack unwound: a following span is top-level again.
        with reg.span("after"):
            pass
        assert reg.spans("after")[0]["parent"] is None

    def test_numpy_attrs_coerced(self):
        np = pytest.importorskip("numpy")
        reg = MetricsRegistry(clock=ManualClock())
        with reg.span("fit", n=np.int64(3), frac=np.float64(0.5)):
            pass
        attrs = reg.spans("fit")[0]["attrs"]
        assert attrs == {"n": 3, "frac": 0.5}
        assert type(attrs["n"]) is int and type(attrs["frac"]) is float

    def test_max_spans_drops_oldest(self):
        reg = MetricsRegistry(clock=ManualClock(), max_spans=3)
        for i in range(5):
            with reg.span(f"s{i}"):
                pass
        assert [r["name"] for r in reg.spans()] == ["s2", "s3", "s4"]


class TestNullRegistry:
    def test_disabled_and_inert(self):
        null = NullRegistry()
        assert null.enabled is False
        null.counter("c", stage="x").inc(5)
        null.gauge("g").set(1)
        null.histogram("h").observe(2)
        with null.span("s") as sp:
            sp.set(k=1)
        assert null.counter_value("c", stage="x") == 0.0
        assert null.spans() == []
        assert null.snapshot() == {
            "counters": [],
            "gauges": [],
            "histograms": [],
            "spans": [],
        }
        assert null.drain() == null.snapshot()
        null.merge({"counters": [{"name": "c", "labels": {}, "value": 1}]})
        null.reset()

    def test_handles_are_shared_singletons(self):
        null = NullRegistry()
        assert null.counter("a") is null.counter("b") is null.histogram("c")


class TestAmbientRegistry:
    def test_default_is_the_null_registry(self):
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_installs_and_restores(self):
        reg = MetricsRegistry()
        previous = set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            set_registry(previous)
        assert get_registry() is NULL_REGISTRY

    def test_set_none_restores_default(self):
        set_registry(MetricsRegistry())
        set_registry(None)
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_scopes_even_on_error(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use_registry(reg):
                assert get_registry() is reg
                raise RuntimeError("x")
        assert get_registry() is NULL_REGISTRY

    def test_free_span_targets_ambient(self):
        reg = MetricsRegistry(clock=ManualClock())
        with use_registry(reg):
            with span("work", phase="test"):
                pass
        with span("ignored"):
            pass  # ambient is the null registry again: recorded nowhere
        assert [r["name"] for r in reg.spans()] == ["work"]
