"""Tests for the MovieLens-like generator: Table I statistics and the
planted structure the algorithms are supposed to find."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticConfig, make_movielens_like, make_timestamped


@pytest.fixture(scope="module")
def full_dataset():
    """The default 500x1000 dataset (module-scoped: ~1s to build)."""
    return make_movielens_like(seed=0)


class TestTableIStatistics:
    def test_shape(self, full_dataset):
        assert full_dataset.ratings.shape == (500, 1000)

    def test_density_matches_table1(self, full_dataset):
        # Table I: 9.44%.
        assert full_dataset.ratings.density == pytest.approx(0.0944, abs=0.004)

    def test_avg_ratings_per_user(self, full_dataset):
        avg = full_dataset.ratings.n_ratings / 500
        assert avg == pytest.approx(94.4, abs=4.0)

    def test_min_ratings_floor(self, full_dataset):
        assert full_dataset.ratings.user_counts().min() >= 40

    def test_integer_scale_1_to_5(self, full_dataset):
        observed = full_dataset.ratings.values[full_dataset.ratings.mask]
        assert observed.min() >= 1.0 and observed.max() <= 5.0
        assert np.allclose(observed, np.round(observed))

    def test_global_mean_plausible(self, full_dataset):
        assert 3.2 < full_dataset.ratings.global_mean() < 3.9


class TestDeterminismAndKnobs:
    def test_same_seed_same_data(self):
        cfg = SyntheticConfig(n_users=40, n_items=50, mean_ratings_per_user=15,
                              min_ratings_per_user=5)
        a = make_movielens_like(cfg, seed=9).ratings
        b = make_movielens_like(cfg, seed=9).ratings
        assert a == b

    def test_different_seed_different_data(self):
        cfg = SyntheticConfig(n_users=40, n_items=50, mean_ratings_per_user=15,
                              min_ratings_per_user=5)
        a = make_movielens_like(cfg, seed=1).ratings
        b = make_movielens_like(cfg, seed=2).ratings
        assert a != b

    def test_custom_dimensions(self):
        cfg = SyntheticConfig(n_users=30, n_items=70, mean_ratings_per_user=12,
                              min_ratings_per_user=6)
        ds = make_movielens_like(cfg, seed=0)
        assert ds.ratings.shape == (30, 70)
        assert ds.ratings.user_counts().min() >= 6

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(mean_ratings_per_user=10, min_ratings_per_user=40)
        with pytest.raises(ValueError):
            SyntheticConfig(n_items=50, mean_ratings_per_user=60)
        with pytest.raises(ValueError):
            SyntheticConfig(style_scale_range=(0.0, 1.0))


class TestPlantedStructure:
    def test_oracle_beats_trivial(self, full_dataset):
        """The noise-free scores must predict observed ratings far
        better than a constant — otherwise there is no signal for any
        algorithm to find."""
        rm = full_dataset.ratings
        const_mae = np.abs(rm.values[rm.mask] - rm.global_mean()).mean()
        assert full_dataset.oracle_mae() < const_mae - 0.15

    def test_user_groups_recoverable(self, full_dataset):
        """Users in the same planted group must be more similar than
        users in different groups (clustering has something to find)."""
        from repro.similarity import user_pcc

        rm = full_dataset.ratings
        sims = user_pcc(rm.values[:150], rm.mask[:150])
        groups = full_dataset.user_group[:150]
        same = sims[groups[:, None] == groups[None, :]]
        diff = sims[groups[:, None] != groups[None, :]]
        assert same.mean() > diff.mean() + 0.05

    def test_item_genres_recoverable(self, full_dataset):
        from repro.similarity import item_pcc

        rm = full_dataset.ratings
        sims = item_pcc(rm.values, rm.mask)
        genres = full_dataset.item_genre
        idx = np.arange(300)
        block = sims[np.ix_(idx, idx)]
        g = genres[idx]
        same = block[(g[:, None] == g[None, :]) & ~np.eye(len(idx), dtype=bool)]
        diff = block[g[:, None] != g[None, :]]
        assert same.mean() > diff.mean()

    def test_popularity_quality_coupling(self, full_dataset):
        """Popular items should rate higher on average — the property
        the paper cites for preferring PCC over cosine."""
        rm = full_dataset.ratings
        counts = rm.item_counts()
        means = rm.item_means()
        rated = counts >= 5
        corr = np.corrcoef(counts[rated], means[rated])[0, 1]
        assert corr > 0.1


class TestTimestamped:
    def test_timestamps_cover_observed_cells(self):
        cfg = SyntheticConfig(n_users=40, n_items=60, mean_ratings_per_user=15,
                              min_ratings_per_user=5)
        ds = make_timestamped(cfg, seed=0)
        assert ds.timestamps is not None
        assert ds.timestamps.shape == ds.ratings.shape
        obs_times = ds.timestamps[ds.ratings.mask]
        assert (obs_times >= 0.0).all() and (obs_times <= 1.0).all()

    def test_drift_changes_scores(self):
        cfg = SyntheticConfig(n_users=40, n_items=60, mean_ratings_per_user=15,
                              min_ratings_per_user=5)
        static = make_movielens_like(cfg, seed=5)
        drifted = make_timestamped(cfg, seed=5, drift_sd=0.8)
        assert not np.allclose(static.true_scores, drifted.true_scores)
