"""Fig. 6 — sensitivity of lambda over ML_300.

Sweeps the SIR'/SUR' balance lambda (online-only) at Given5/10/20.

Paper's shape: MAE first falls then rises as lambda goes 0 -> 1, with
the minimum at lambda ~ 0.8 (SUR' matters more than SIR').

Measured shape (see EXPERIMENTS.md): the U-shape — both pure-component
extremes lose to a mixture — reproduces; on this substrate the optimum
sits lower (lambda ~ 0.4) because the bias-adjusted SIR' is closer in
strength to SUR' than on the authors' data.  Assertions pin the
U-shape, not the optimum's exact location.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import HARNESS_SEED, run_once
from repro.data import make_split
from repro.eval import ascii_plot, format_table, sweep_cfsf_parameter

LAMBDAS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


def test_fig6_lambda_sensitivity(benchmark, dataset):
    def run():
        series = {}
        for given_n in (5, 10, 20):
            split = make_split(
                dataset, n_train_users=300, given_n=given_n, seed=HARNESS_SEED
            )
            results = sweep_cfsf_parameter(split, "lam", LAMBDAS)
            series[f"Given{given_n}"] = [r.mae for _, r in results]
        return series

    series = run_once(benchmark, run)

    print()
    rows = [[l, *[series[f"Given{g}"][i] for g in (5, 10, 20)]] for i, l in enumerate(LAMBDAS)]
    print(format_table(["lambda", "Given5", "Given10", "Given20"], rows,
                       title="Fig. 6 (measured): sensitivity of lambda over ML_300",
                       float_fmt="{:.4f}"))
    print()
    print(ascii_plot(LAMBDAS, series, title="Fig. 6 shape", x_label="lambda"))

    for name, maes in series.items():
        maes = np.asarray(maes)
        best_idx = int(np.argmin(maes))
        # U-shape: an interior mixture beats both pure components.
        assert 0 < best_idx < len(LAMBDAS) - 1, (name, LAMBDAS[best_idx])
        assert maes[best_idx] < maes[0] - 1e-4, name    # beats SIR'-only side
        assert maes[best_idx] < maes[-1] - 1e-4, name   # beats SUR'-only side
