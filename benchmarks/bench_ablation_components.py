"""Ablation A1 — fusion-component knockouts and design-choice switches.

Not a paper table; quantifies the design choices DESIGN.md calls out,
on ML_300/Given10:

* component knockouts: SIR'-only, SUR'-only, SUIR'-only vs the fused
  default (the paper's Eq. 14 rationale),
* ``adjust_biases`` on/off (the documented substrate calibration:
  the literal raw Eq. 12 forms vs the mean-offset forms),
* the intermediate-result cache on/off (accuracy must be identical;
  only latency may move),
* smoothing-shrinkage beta (Eq. 8 literal vs shrunk deviations).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.core import CFSF
from repro.eval import evaluate, evaluate_fitted, format_table


def test_ablation_fusion_components(benchmark, ml300_given10):
    split = ml300_given10

    def run():
        out = {}
        model = CFSF().fit(split.train)
        variants = {
            "fused (paper defaults)": dict(lam=0.8, delta=0.1),
            "SIR' only": dict(lam=0.0, delta=0.0),
            "SUR' only": dict(lam=1.0, delta=0.0),
            "SUIR' only": dict(lam=0.8, delta=1.0),
            "no SUIR' (delta=0)": dict(lam=0.8, delta=0.0),
        }
        for label, overrides in variants.items():
            model.config = model.config.with_(**overrides)
            model._cache.clear()
            out[label] = evaluate_fitted(model, split).mae
        return out

    measured = run_once(benchmark, run)

    print()
    print(
        format_table(
            ["variant", "MAE"],
            [[k, v] for k, v in measured.items()],
            title="Ablation: fusion components on ML_300/Given10",
            float_fmt="{:.4f}",
        )
    )

    fused = measured["fused (paper defaults)"]
    # Fusion beats both single-source components (the Eq. 14 rationale).
    assert fused < measured["SIR' only"]
    assert fused < measured["SUR' only"]
    # The bias-adjusted SUIR' is a *strong* component on this substrate
    # (unlike the paper's raw SUIR', which is a weak supplement); the
    # paper-default fusion must at least stay within noise of it.
    assert fused <= measured["SUIR' only"] + 0.005


def test_ablation_bias_adjustment(benchmark, ml300_given10):
    split = ml300_given10

    def run():
        adj = evaluate(CFSF(adjust_biases=True), split).mae
        raw = evaluate(CFSF(adjust_biases=False), split).mae
        return {"adjusted (default)": adj, "literal Eq. 12 (raw)": raw}

    measured = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["variant", "MAE"],
            [[k, v] for k, v in measured.items()],
            title="Ablation: bias-adjusted vs literal Eq. 12 components",
            float_fmt="{:.4f}",
        )
    )
    # The calibration is load-bearing on this substrate.
    assert measured["adjusted (default)"] < measured["literal Eq. 12 (raw)"]


def test_ablation_cache_accuracy_invariant(benchmark, ml300_given10):
    split = ml300_given10

    def run():
        with_cache = evaluate(CFSF(cache_size=4096), split)
        without = evaluate(CFSF(cache_size=0), split)
        return with_cache, without

    with_cache, without = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["variant", "MAE", "predict (s)"],
            [
                ["cache on", with_cache.mae, with_cache.predict_seconds],
                ["cache off", without.mae, without.predict_seconds],
            ],
            title="Ablation: intermediate-result cache",
            float_fmt="{:.4f}",
        )
    )
    assert with_cache.mae == without.mae  # accuracy must be identical


def test_ablation_smoothing_shrinkage(benchmark, ml300_given10):
    split = ml300_given10

    def run():
        out = {}
        for beta in (0.0, 1.0, 3.0):
            out[beta] = evaluate(CFSF(smoothing_shrinkage=beta), split).mae
        return out

    measured = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["shrinkage beta", "MAE"],
            [[k, v] for k, v in measured.items()],
            title="Ablation: Eq. 8 deviation shrinkage",
            float_fmt="{:.4f}",
        )
    )
    values = np.array(list(measured.values()))
    assert values.max() - values.min() < 0.02  # a refinement, not a cliff
