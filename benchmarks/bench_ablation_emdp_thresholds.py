"""Ablation A3 — EMDP's threshold sensitivity (the paper's critique).

Section II-A: "EMDP is based on a set of different thresholds for each
item and user ... inappropriate thresholds may lead to few results".
This bench sweeps EMDP's η=θ threshold on ML_300/Given10 and shows the
swing, including that on this substrate a near-zero threshold makes
EMDP competitive with CFSF while the published setting leaves it
mid-pack — the practical brittleness CFSF's top-M/top-K selection
avoids.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.baselines import EMDP
from repro.core import CFSF
from repro.eval import ascii_plot, evaluate, format_table

THRESHOLDS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8]


def test_ablation_emdp_threshold_sweep(benchmark, ml300_given10):
    split = ml300_given10

    def run():
        maes = {}
        for eta in THRESHOLDS:
            maes[eta] = evaluate(EMDP(eta=eta, theta=eta), split).mae
        cfsf = evaluate(CFSF(), split).mae
        return maes, cfsf

    maes, cfsf_mae = run_once(benchmark, run)

    print()
    print(
        format_table(
            ["eta = theta", "EMDP MAE"],
            [[k, v] for k, v in maes.items()],
            title="Ablation: EMDP threshold sensitivity (ML_300/Given10)",
            float_fmt="{:.4f}",
        )
    )
    print(f"CFSF at paper defaults on the same split: {cfsf_mae:.4f}")
    print()
    print(
        ascii_plot(
            THRESHOLDS,
            {"EMDP": list(maes.values()), "CFSF (const)": [cfsf_mae] * len(THRESHOLDS)},
            title="EMDP MAE vs similarity threshold",
            x_label="eta = theta",
        )
    )

    values = np.array(list(maes.values()))
    # The sensitivity is material — the paper's critique is real.
    assert values.max() - values.min() > 0.02
    # The published-threshold configuration is not the optimum.
    assert maes[0.5] > values.min() + 0.01
