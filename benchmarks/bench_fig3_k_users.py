"""Fig. 3 — accuracy with K like-minded users over ML_300.

Sweeps CFSF's top-K user count at Given5/10/20 (online-only sweep).

Paper's shape: low MAE for K in 20–40, *rising* beyond 40 because "the
ratings from less related users are considered too much".  The sweep
pins the candidate pool at the paper-default resolved size
(4 x 25 = 100 users) while K traverses 10..100.

Measured shape on the synthetic substrate (see EXPERIMENTS.md): the
steep improvement up to K ≈ 40 and the flattening after reproduce; the
*rise* beyond 40 does not — Eq. 10's similarity weighting keeps the
weaker pool members' influence small, so extra users add variance
reduction instead of noise here.  Assertions pin the reproducible
diminishing-returns shape.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import HARNESS_SEED, run_once
from repro.core import CFSFConfig
from repro.data import make_split
from repro.eval import ascii_plot, format_table, sweep_cfsf_parameter

K_VALUES = [10, 20, 30, 40, 50, 60, 80, 100]
#: The paper-default pool (4*K at K=25), held fixed across the sweep.
POOL = 100


def test_fig3_accuracy_vs_k(benchmark, dataset):
    def run():
        series = {}
        base = CFSFConfig(candidate_pool=POOL)
        for given_n in (5, 10, 20):
            split = make_split(
                dataset, n_train_users=300, given_n=given_n, seed=HARNESS_SEED
            )
            results = sweep_cfsf_parameter(split, "top_k_users", K_VALUES, base_config=base)
            series[f"Given{given_n}"] = [r.mae for _, r in results]
        return series

    series = run_once(benchmark, run)

    print()
    rows = [[k, *[series[f"Given{g}"][i] for g in (5, 10, 20)]] for i, k in enumerate(K_VALUES)]
    print(format_table(["K", "Given5", "Given10", "Given20"], rows,
                       title=f"Fig. 3 (measured): MAE vs K over ML_300 (pool={POOL})",
                       float_fmt="{:.4f}"))
    print()
    print(ascii_plot([float(k) for k in K_VALUES], series,
                     title="Fig. 3 shape", x_label="K like-minded users"))

    for name, maes in series.items():
        maes = np.asarray(maes)
        # Too few users is the worst end (paper: K=10 clearly high).
        assert maes[0] == maes.max(), name
        # Diminishing returns: the 10 -> 40 gain dwarfs the 40 -> 100 gain.
        gain_head = maes[0] - maes[3]
        gain_tail = maes[3] - maes[-1]
        assert gain_head > 2.0 * abs(gain_tail), (name, gain_head, gain_tail)
    # GivenN ordering holds at every K.
    g5 = np.asarray(series["Given5"])
    g20 = np.asarray(series["Given20"])
    assert (g20 < g5).all()
