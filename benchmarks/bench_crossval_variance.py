"""Supplementary — variance of the headline comparison under k-fold CV.

The paper's protocol yields one MAE per cell; this bench re-estimates
the CFSF-vs-EMDP comparison with user-level 4-fold cross-validation to
attach a variance to it: the headline "CFSF wins" should hold not just
on the fixed last-200-users split but across folds.
"""

from __future__ import annotations

from benchmarks.conftest import HARNESS_SEED, run_once
from repro.baselines import EMDP
from repro.core import CFSF
from repro.eval import cross_validate, format_table


def test_crossval_variance(benchmark, dataset):
    def run():
        out = {}
        for name, factory in (
            ("CFSF", lambda: CFSF()),
            ("EMDP", lambda: EMDP()),
        ):
            out[name] = cross_validate(
                factory, dataset, n_folds=4, given_n=10, seed=HARNESS_SEED
            )
        return out

    results = run_once(benchmark, run)

    print()
    rows = [
        [name, r.mae_mean, r.mae_std, r.n_folds] for name, r in results.items()
    ]
    print(
        format_table(
            ["method", "MAE mean", "MAE std", "folds"],
            rows,
            title="4-fold user-level CV at Given10 (full 500-user matrix)",
            float_fmt="{:.4f}",
        )
    )

    cfsf, emdp = results["CFSF"], results["EMDP"]
    # The headline holds on average across folds...
    assert cfsf.mae_mean < emdp.mae_mean + 0.01
    # ...and fold-level noise is small relative to the gaps the tables
    # interpret (std well under 0.02 MAE).
    assert cfsf.mae_std < 0.02
