"""Extension E1 — parallel online prediction (Section VI future work).

Measures the process-pool executor against serial prediction on the
full ML_300/Given10 request stream, and the shared-memory tiled GIS
construction against the serial kernel.

On a multi-core host the online phase scales with workers (active
users are independent); on a single-core container (like most CI
sandboxes) the pools add overhead — the bench records whichever is
true rather than asserting a speedup, but always asserts bit-equal
predictions and rounding-level-equal similarities.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.eval import format_table
from repro.parallel import ParallelPredictor, parallel_item_pcc
from repro.similarity import item_pcc

WORKER_COUNTS = (2, 4)


def test_ext_parallel_online(benchmark, cfsf_ml300, ml300_given10):
    split = ml300_given10
    users, items, _ = split.targets_arrays()

    def run():
        start = time.perf_counter()
        serial = cfsf_ml300.predict_many(split.given, users, items)
        t_serial = time.perf_counter() - start
        rows = [("serial", 1, t_serial, True)]
        for n in WORKER_COUNTS:
            with ParallelPredictor(cfsf_ml300, n_workers=n) as pp:
                pp.predict_many(split.given, users[:50], items[:50])  # warm pool
                start = time.perf_counter()
                par = pp.predict_many(split.given, users, items)
                t_par = time.perf_counter() - start
            rows.append((f"pool", n, t_par, bool(np.allclose(serial, par))))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"host CPUs: {os.cpu_count()}")
    print(
        format_table(
            ["mode", "workers", "seconds", "matches serial"],
            [list(r) for r in rows],
            title="Extension: parallel online prediction (ML_300/Given10)",
        )
    )
    # Correctness is unconditional; speedup depends on the host.
    assert all(match for _, _, _, match in rows)


def test_ext_parallel_offline_gis(benchmark, ml300_given10):
    train = ml300_given10.train

    def run():
        start = time.perf_counter()
        ref = item_pcc(train.values, train.mask)
        t_serial = time.perf_counter() - start
        rows = [("serial", 1, t_serial, True)]
        for n in WORKER_COUNTS:
            start = time.perf_counter()
            sim = parallel_item_pcc(train, n_workers=n)
            t_par = time.perf_counter() - start
            rows.append(("tiled pool", n, t_par, bool(np.allclose(ref, sim, atol=1e-12))))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["mode", "workers", "seconds", "matches serial"],
            [list(r) for r in rows],
            title="Extension: shared-memory tiled GIS construction",
        )
    )
    assert all(match for _, _, _, match in rows)
