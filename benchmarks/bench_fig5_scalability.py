"""Fig. 5 — online response time at Given20 vs test-set size.

The scalability experiment.  The paper's systems serve *one request at
a time*, and CFSF's reported advantage comes from answering each
request over the local M x K matrix with cached per-user intermediate
results (Section V-D), while SCBPCC re-identifies like-minded users
over the whole training population per request.  Accordingly this
benchmark times request-by-request serving (``model.predict`` in a
loop), not the vectorised batch API: batching amortises exactly the
work the paper is measuring.

Reproduction targets:
* response time grows (near-)linearly with the test-set size,
* CFSF serves faster than SCBPCC at every size (paper: ~2.4x at
  ML_300/100%; this implementation measures ~3x),
* the gap widens with the training-population size (SCBPCC's
  per-request cost scales with P, CFSF's with its candidate pool).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import HARNESS_SEED, run_once
from repro.baselines import SCBPCC
from repro.core import CFSF
from repro.data import make_split, subsample_heldout
from repro.eval import ascii_plot, format_table

FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def _serve_all(model, split) -> float:
    """Wall-clock of serving every held-out request one by one."""
    users, items, _ = split.targets_arrays()
    start = time.perf_counter()
    for u, i in zip(users.tolist(), items.tolist()):
        model.predict(split.given, u, i)
    return time.perf_counter() - start


def test_fig5_response_time(benchmark, dataset):
    def run():
        out = {}
        for n_train in (100, 200, 300):
            split = make_split(
                dataset, n_train_users=n_train, given_n=20, seed=HARNESS_SEED
            )
            models = {"CFSF": CFSF().fit(split.train), "SCBPCC": SCBPCC().fit(split.train)}
            series = {name: [] for name in models}
            for frac in FRACTIONS:
                sub = subsample_heldout(split, frac, seed=HARNESS_SEED)
                for name, model in models.items():
                    if hasattr(model, "_cache"):
                        model._cache.clear()  # fresh serving run per point
                    series[name].append((frac, _serve_all(model, sub)))
            out[n_train] = series
        return out

    results = run_once(benchmark, run)

    print()
    for n_train, sweep in results.items():
        rows = []
        for idx, frac in enumerate(FRACTIONS):
            t_cfsf = sweep["CFSF"][idx][1]
            t_scb = sweep["SCBPCC"][idx][1]
            rows.append([f"{frac:.0%}", t_cfsf, t_scb, t_scb / t_cfsf])
        print(
            format_table(
                ["testset", "CFSF (s)", "SCBPCC (s)", "SCBPCC/CFSF"],
                rows,
                title=(
                    f"Fig. 5 (measured): per-request online serving, "
                    f"ML_{n_train}, Given20"
                ),
            )
        )
        print()

    print(
        ascii_plot(
            [f * 100 for f in FRACTIONS],
            {
                "CFSF": [t for _, t in results[300]["CFSF"]],
                "SCBPCC": [t for _, t in results[300]["SCBPCC"]],
            },
            title="Fig. 5 shape (ML_300)",
            x_label="% of the 200-user testset",
            y_label="seconds",
        )
    )

    # --- shape assertions --------------------------------------------------
    for n_train, sweep in results.items():
        for method in ("CFSF", "SCBPCC"):
            times = np.array([t for _, t in sweep[method]])
            # Overall growth; single-step monotonicity is not asserted
            # because one contended measurement on a shared host can dip
            # a point — run this bench alone for clean curves.
            assert times[-1] > times[0], (n_train, method)
            # Near-linear: 4x the workload costs well under the 16x a
            # quadratic path would (headroom again for contention).
            assert times[-1] / times[0] < 12.0, (n_train, method, times[-1] / times[0])
        # CFSF beats SCBPCC at every fraction.
        for idx in range(len(FRACTIONS)):
            assert sweep["CFSF"][idx][1] < sweep["SCBPCC"][idx][1], (n_train, idx)
    # The paper's headline ratio at ML_300/100%: roughly 2-4x.
    ratio = results[300]["SCBPCC"][-1][1] / results[300]["CFSF"][-1][1]
    assert ratio > 1.5, ratio
