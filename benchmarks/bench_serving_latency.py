"""Seed of the serving-latency perf trajectory (``BENCH_serving_latency.json``).

Fits a small synthetic CFSF, drives ``predict_many`` through
:class:`~repro.serving.PredictionService` in many small batches (the
live-traffic shape: one batch ≈ one request burst), and writes the
p50/p95/p99 of the ``serving.request.latency`` histogram — the
paper's Fig. 5 metric, measured through the same
:mod:`repro.obs` path the serving layer itself records — to
``BENCH_serving_latency.json`` at the repo root.

Future performance PRs regenerate the file and diff the percentiles;
the offline span durations (``model.fit`` and children) ride along so
offline-phase regressions are visible from the same artefact.

Run standalone (``python benchmarks/bench_serving_latency.py``) or via
``pytest benchmarks/bench_serving_latency.py -s``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core import CFSF
from repro.data import default_dataset, make_split
from repro.obs import MetricsRegistry, use_registry
from repro.serving import PredictionService

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_serving_latency.json"

#: Bench geometry: small enough to finish in seconds, large enough
#: that the latency histogram has a meaningful tail.
TRAIN_SIZE = 200
GIVEN_N = 10
BATCH_SIZE = 20
MAX_BATCHES = 60
SEED = 0


def run_bench(output_path: Path | None = OUTPUT_PATH) -> dict:
    """Run the instrumented serving pass; write and return the payload."""
    registry = MetricsRegistry()
    ratings = default_dataset(seed=SEED)
    split = make_split(ratings, n_train_users=TRAIN_SIZE, given_n=GIVEN_N, seed=SEED)
    with use_registry(registry):
        model = CFSF().fit(split.train)
    service = PredictionService(model, metrics=registry)

    users, items, _ = split.targets_arrays()
    n_batches = 0
    for start in range(0, users.size, BATCH_SIZE):
        if n_batches >= MAX_BATCHES:
            break
        service.predict_many(
            split.given, users[start : start + BATCH_SIZE], items[start : start + BATCH_SIZE]
        )
        n_batches += 1

    latency = registry.histogram("serving.request.latency")
    fit_spans = {
        rec["name"]: rec["duration"]
        for rec in registry.spans()
        if rec["name"] in ("model.fit", "gis.build", "cluster.fit", "smooth.apply", "icluster.build")
    }
    payload = {
        "benchmark": "serving_latency",
        "seed": SEED,
        "n_train_users": TRAIN_SIZE,
        "given_n": GIVEN_N,
        "batch_size": BATCH_SIZE,
        "batches": n_batches,
        "requests": int(registry.counter_value("serving.requests")),
        "count": latency.count,
        "p50": latency.quantile(0.50),
        "p95": latency.quantile(0.95),
        "p99": latency.quantile(0.99),
        "mean": latency.mean,
        "min": latency.min,
        "max": latency.max,
        "offline_fit_seconds": fit_spans,
    }
    if output_path is not None:
        output_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def test_bench_serving_latency():
    """Regenerate the artefact and sanity-check its shape."""
    payload = run_bench()
    assert payload["count"] == payload["batches"] > 0
    assert 0.0 < payload["p50"] <= payload["p95"] <= payload["p99"]
    assert set(payload["offline_fit_seconds"]) >= {"model.fit", "gis.build"}
    print(
        f"\nserving latency per batch of {payload['batch_size']}: "
        f"p50={payload['p50'] * 1e3:.2f}ms p95={payload['p95'] * 1e3:.2f}ms "
        f"p99={payload['p99'] * 1e3:.2f}ms -> {OUTPUT_PATH.name}"
    )


if __name__ == "__main__":
    result = run_bench()
    print(json.dumps(result, indent=2, sort_keys=True))
