"""Seed of the serving-latency perf trajectory (``BENCH_serving_latency.json``).

Fits a small synthetic CFSF, drives ``predict_many`` through
:class:`~repro.serving.PredictionService` in many small batches (the
live-traffic shape: one batch ≈ one request burst), and writes the
p50/p95/p99 of the ``serving.request.latency`` histogram — the
paper's Fig. 5 metric, measured through the same
:mod:`repro.obs` path the serving layer itself records — to
``BENCH_serving_latency.json`` at the repo root.

The timed pass measures **steady-state** latency: an untimed warmup
pass first replays the full request stream so one-off costs (page
faults on freshly allocated hot-path buffers, lazy kernel builds,
per-active-user state computation) are paid outside the measurement
window.  The request-level result cache is cleared between warmup and
the timed pass, so every timed request still runs the full fusion hot
path — only the per-user prepared state stays warm, which is the
steady-state a long-running server converges to.

Future performance PRs regenerate the file and diff the percentiles;
the offline span durations (``model.fit`` and children) ride along so
offline-phase regressions are visible from the same artefact.
``benchmarks/check_regression.py`` gates CI on the p95 of this file.

Run standalone (``python benchmarks/bench_serving_latency.py``) or via
``pytest benchmarks/bench_serving_latency.py -s``.  Pass
``smoke=True`` (or ``--smoke`` on the CLI) for a seconds-scale run
with reduced geometry — used by the CI regression gate where absolute
numbers are noisy but gross regressions still show.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import CFSF
from repro.data import default_dataset, make_split
from repro.obs import MetricsRegistry, use_registry
from repro.serving import PredictionService

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_serving_latency.json"

#: Bench geometry: small enough to finish in seconds, large enough
#: that the latency histogram has a meaningful tail.
TRAIN_SIZE = 200
GIVEN_N = 10
BATCH_SIZE = 20
MAX_BATCHES = 60
SEED = 0

#: Reduced geometry for the CI smoke/regression run.  The batch count
#: stays at the full 60 — with only 30 samples the p95 sits on the
#: tail's edge and flaps on runner noise; shrinking the offline fit
#: (train users) is where the smoke savings come from.
SMOKE_TRAIN_SIZE = 120
SMOKE_MAX_BATCHES = 60


def run_bench(
    output_path: Path | None = OUTPUT_PATH,
    *,
    smoke: bool = False,
) -> dict:
    """Run the instrumented serving pass; write and return the payload."""
    train_size = SMOKE_TRAIN_SIZE if smoke else TRAIN_SIZE
    max_batches = SMOKE_MAX_BATCHES if smoke else MAX_BATCHES
    registry = MetricsRegistry()
    ratings = default_dataset(seed=SEED)
    split = make_split(ratings, n_train_users=train_size, given_n=GIVEN_N, seed=SEED)
    with use_registry(registry):
        model = CFSF().fit(split.train)

    users, items, _ = split.targets_arrays()
    batches = [
        (users[start : start + BATCH_SIZE], items[start : start + BATCH_SIZE])
        for start in range(0, users.size, BATCH_SIZE)[:max_batches]
    ]

    # Untimed warmup: replay the stream once against an unmetered
    # service so first-touch costs land outside the measurement
    # window, then drop the request-level cache so the timed pass
    # cannot be served exact-match results.
    warm_service = PredictionService(model)
    for batch_users, batch_items in batches:
        warm_service.predict_many(split.given, batch_users, batch_items)

    service = PredictionService(model, metrics=registry)
    for batch_users, batch_items in batches:
        service.predict_many(split.given, batch_users, batch_items)

    latency = registry.histogram("serving.request.latency")
    fit_spans = {
        rec["name"]: rec["duration"]
        for rec in registry.spans()
        if rec["name"]
        in ("model.fit", "gis.build", "cluster.fit", "smooth.apply", "icluster.build")
    }
    payload = {
        "benchmark": "serving_latency",
        "seed": SEED,
        "smoke": bool(smoke),
        "n_train_users": train_size,
        "given_n": GIVEN_N,
        "batch_size": BATCH_SIZE,
        "batches": len(batches),
        "requests": int(registry.counter_value("serving.requests")),
        "count": latency.count,
        "p50": latency.quantile(0.50),
        "p95": latency.quantile(0.95),
        "p99": latency.quantile(0.99),
        "mean": latency.mean,
        "min": latency.min,
        "max": latency.max,
        "offline_fit_seconds": fit_spans,
    }
    if output_path is not None:
        output_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


@pytest.mark.perf
def test_bench_serving_latency():
    """Regenerate the artefact and sanity-check its shape."""
    payload = run_bench()
    assert payload["count"] == payload["batches"] > 0
    assert 0.0 < payload["p50"] <= payload["p95"] <= payload["p99"]
    assert set(payload["offline_fit_seconds"]) >= {"model.fit", "gis.build"}
    print(
        f"\nserving latency per batch of {payload['batch_size']}: "
        f"p50={payload['p50'] * 1e3:.2f}ms p95={payload['p95'] * 1e3:.2f}ms "
        f"p99={payload['p99'] * 1e3:.2f}ms -> {OUTPUT_PATH.name}"
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced geometry for the CI regression gate",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=OUTPUT_PATH,
        help="where to write the JSON payload (default: repo root artefact)",
    )
    cli = parser.parse_args()
    result = run_bench(output_path=cli.output, smoke=cli.smoke)
    print(json.dumps(result, indent=2, sort_keys=True))
