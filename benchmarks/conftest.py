"""Shared fixtures for the benchmark harness.

Every file in this directory regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  Benchmarks print their
tables/curves to stdout — run with ``-s`` (or rely on pytest-benchmark
echoing captured output on failure) and with::

    pytest benchmarks/ --benchmark-only

Heavy artefacts (the dataset, the split grid, fitted models) are
session-scoped and shared across benchmark files.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CFSF
from repro.data import RatingMatrix, default_dataset, make_split, paper_grid

#: One root seed for the whole harness — EXPERIMENTS.md numbers are
#: reproduced bit-for-bit from this.
HARNESS_SEED = 0


@pytest.fixture(scope="session")
def dataset() -> RatingMatrix:
    """The 500 x 1000 evaluation matrix (Table I statistics)."""
    return default_dataset(seed=HARNESS_SEED)


@pytest.fixture(scope="session")
def grid_splits(dataset):
    """The full ML_{100,200,300} x Given{5,10,20} split grid."""
    return paper_grid(dataset, seed=HARNESS_SEED)


@pytest.fixture(scope="session")
def ml300_given10(dataset):
    """The workhorse split for sensitivity figures."""
    return make_split(dataset, n_train_users=300, given_n=10, seed=HARNESS_SEED)


@pytest.fixture(scope="session")
def cfsf_ml300(ml300_given10) -> CFSF:
    """A CFSF at paper defaults, fitted once on ML_300."""
    return CFSF().fit(ml300_given10.train)


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing.

    The experiments here are minutes-scale aggregates; statistical
    repetition belongs to the micro-benches, not to table regeneration.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def assert_close_band(measured: float, low: float, high: float, label: str) -> None:
    """Assert a measured MAE lies in a sane band (guards against a
    silently broken harness without pinning absolute values)."""
    assert low < measured < high, f"{label}: MAE {measured:.4f} outside [{low}, {high}]"
