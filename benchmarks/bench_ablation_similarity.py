"""Ablation A2 — PCC vs pure cosine (VSS) for the GIS.

Section IV-B argues for PCC over Pure Cosine Similarity because cosine
"does not consider the diversity in item ratings" — popular items get
systematically higher raw ratings (the generator plants exactly that
coupling) and cosine rewards the shared offset as similarity.

The ablation swaps the fitted model's GIS for a cosine-built one and
re-evaluates on ML_300/Given10.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.core import CFSF
from repro.core.gis import GlobalItemSimilarity
from repro.eval import evaluate_fitted, format_table
from repro.similarity import (
    adjusted_cosine,
    item_cosine,
    jaccard,
    mean_squared_difference,
)


def _gis_from(sim: np.ndarray) -> GlobalItemSimilarity:
    masked = sim.copy()
    np.fill_diagonal(masked, -np.inf)
    order = np.argsort(-masked, axis=1, kind="stable")[:, : sim.shape[0] - 1]
    return GlobalItemSimilarity(
        sim=sim, neighbours=order.astype(np.intp), threshold=0.0, centering="global_mean"
    )


def _cosine_gis(train) -> GlobalItemSimilarity:
    return _gis_from(item_cosine(train.values, train.mask))


def test_ablation_pcc_vs_cosine_gis(benchmark, ml300_given10):
    split = ml300_given10

    def run():
        model = CFSF().fit(split.train)
        pcc_mae = evaluate_fitted(model, split).mae

        model.gis = _cosine_gis(split.train)
        model._cache.clear()
        cos_mae = evaluate_fitted(model, split).mae
        return {"PCC GIS (Eq. 5)": pcc_mae, "cosine (VSS) GIS": cos_mae}

    measured = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["GIS similarity", "MAE"],
            [[k, v] for k, v in measured.items()],
            title="Ablation: item-similarity function for the GIS (ML_300/Given10)",
            float_fmt="{:.4f}",
        )
    )
    # The paper's Section IV-B claim: PCC is the better GIS choice.
    assert measured["PCC GIS (Eq. 5)"] <= measured["cosine (VSS) GIS"] + 1e-4


def test_ablation_alternate_measures(benchmark, ml300_given10):
    """Swap the GIS similarity for every measure the library carries.

    On this substrate the measure barely matters (the Fig. 2 finding:
    the dense smoothed profile makes CFSF robust to *which* similar
    items are picked) — except Jaccard, which ignores rating values
    entirely and loses the most.  The bench records the full picture.
    """
    split = ml300_given10

    def run():
        model = CFSF().fit(split.train)
        train = split.train
        out = {"PCC (Eq. 5, default)": evaluate_fitted(model, split).mae}
        measures = {
            "adjusted cosine": adjusted_cosine(train.values, train.mask),
            "MSD": mean_squared_difference(train.values, train.mask),
            "Jaccard (values ignored)": jaccard(train.mask),
        }
        for label, sim in measures.items():
            model.gis = _gis_from(sim)
            model._cache.clear()
            out[label] = evaluate_fitted(model, split).mae
        return out

    measured = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["GIS similarity", "MAE"],
            [[k, v] for k, v in measured.items()],
            title="Ablation: alternate GIS measures (ML_300/Given10)",
            float_fmt="{:.4f}",
        )
    )
    values = list(measured.values())
    assert max(values) - min(values) < 0.05  # robustness, per Fig. 2's finding
    assert all(0.5 < v < 1.2 for v in values)


def test_ablation_neighbour_overlap(benchmark, ml300_given10):
    """How different are the two GIS variants' neighbourhoods?  A
    diagnostic: if the top-M lists were near-identical the accuracy
    ablation above would be vacuous."""
    split = ml300_given10

    def run():
        model = CFSF().fit(split.train)
        pcc_gis = model.gis
        cos_gis = _cosine_gis(split.train)
        overlaps = []
        for item in range(0, split.train.n_items, 10):
            a, _ = pcc_gis.top_m(item, 95)
            b, _ = cos_gis.top_m(item, 95)
            union = max(1, min(len(a), len(b)))
            overlaps.append(len(np.intersect1d(a, b)) / union)
        return float(np.mean(overlaps))

    mean_overlap = run_once(benchmark, run)
    print(f"\nmean top-95 neighbourhood overlap (PCC vs cosine): {mean_overlap:.2%}")
    assert 0.0 < mean_overlap < 1.0
