"""Table II — MAE of CFSF vs the traditional memory-based approaches.

Regenerates the paper's Table II: CFSF (paper defaults C=30, λ=0.8,
δ=0.1, K=25, M=95, w=0.35) against the literal item-based (SIR, Eq. 1)
and user-based (SUR, Eq. 2) PCC recommenders, over
ML_{100,200,300} x Given{5,10,20}.

Reproduction targets (shape, not absolute values):
* CFSF beats SUR and SIR in every cell (paper: by 0.06–0.13 MAE).
* MAE falls down each column as the training prefix grows.
* MAE falls along each row as GivenN grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.baselines import ItemBasedCF, UserBasedCF
from repro.core import CFSF
from repro.eval import TABLE2_MAE, evaluate, format_paper_table

METHODS = {
    "CFSF": lambda: CFSF(),
    "SUR": lambda: UserBasedCF(mean_offset=False),
    "SIR": lambda: ItemBasedCF(),
}


def test_table2_memory_based_cf(benchmark, grid_splits):
    def run():
        out = {}
        for (n_train, given_n), split in sorted(grid_splits.items()):
            for name, factory in METHODS.items():
                res = evaluate(factory(), split)
                out[(split.name, name)] = res.mae
        return out

    measured = run_once(benchmark, run)

    print()
    print(
        format_paper_table(
            measured,
            training_sets=("ML_300", "ML_200", "ML_100"),
            methods=list(METHODS),
            title="Table II (measured): MAE for SIR, SUR and CFSF",
        )
    )
    paper = {(f"{ts}/{g}", m): v for (ts, m, g), v in TABLE2_MAE.items()}
    print()
    print(
        format_paper_table(
            paper,
            training_sets=("ML_300", "ML_200", "ML_100"),
            methods=list(METHODS),
            title="Table II (paper)",
        )
    )

    # --- shape assertions ------------------------------------------------
    for n_train in (100, 200, 300):
        for given in (5, 10, 20):
            cell = f"ML_{n_train}/Given{given}"
            assert measured[(cell, "CFSF")] < measured[(cell, "SUR")], cell
            assert measured[(cell, "CFSF")] < measured[(cell, "SIR")], cell

    for given in (5, 10, 20):
        assert (
            measured[(f"ML_300/Given{given}", "CFSF")]
            < measured[(f"ML_100/Given{given}", "CFSF")]
        )
    for n_train in (100, 200, 300):
        assert (
            measured[(f"ML_{n_train}/Given20", "CFSF")]
            < measured[(f"ML_{n_train}/Given5", "CFSF")]
        )

    # Sanity band: nothing silently broken.
    for (cell, method), value in measured.items():
        assert 0.5 < value < 1.2, (cell, method, value)
