"""Table III — MAE of CFSF vs the state-of-the-art CF approaches.

Regenerates the paper's Table III: CFSF against AM (aspect model),
EMDP, SCBPCC, SF (similarity fusion) and PD (personality diagnosis)
over the full ML_{100,200,300} x Given{5,10,20} grid, at each method's
published parameterisation.

Reproduction targets:
* CFSF achieves the best (or statistically tied best) MAE per cell —
  the paper reports a clean 9/9 sweep; on this substrate EMDP ties
  CFSF within ~0.01 in the ML_100/Given5 cell (documented in
  EXPERIMENTS.md), so the assertion allows that single-cell tolerance.
* AM sits in the weakest tier, degrading hardest on ML_100.
* Every method improves with more training users and larger GivenN.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.baselines import (
    EMDP,
    SCBPCC,
    AspectModel,
    PersonalityDiagnosis,
    SimilarityFusion,
)
from repro.core import CFSF
from repro.eval import (
    TABLE3_MAE,
    evaluate,
    format_paper_table,
    format_table,
    paired_comparison,
)

METHODS = {
    "CFSF": lambda: CFSF(),
    "AM": lambda: AspectModel(),
    "EMDP": lambda: EMDP(),
    "SCBPCC": lambda: SCBPCC(),
    "SF": lambda: SimilarityFusion(),
    "PD": lambda: PersonalityDiagnosis(),
}

#: Worst-case slack allowed for a non-CFSF method to tie CFSF in a cell
#: before the reproduction is declared broken.
TIE_TOLERANCE = 0.015


def test_table3_state_of_the_art(benchmark, grid_splits):
    def run():
        out = {}
        predictions: dict[str, object] = {}
        anchor = grid_splits[(300, 10)]
        for (n_train, given_n), split in sorted(grid_splits.items()):
            for name, factory in METHODS.items():
                keep = split is anchor
                res = evaluate(factory(), split, keep_predictions=keep)
                out[(split.name, name)] = res.mae
                if keep:
                    predictions[name] = res.predictions
        truth = anchor.targets_arrays()[2]
        return out, predictions, truth

    measured, predictions, truth = run_once(benchmark, run)

    print()
    print(
        format_paper_table(
            measured,
            training_sets=("ML_300", "ML_200", "ML_100"),
            methods=list(METHODS),
            title="Table III (measured): MAE for the state-of-the-art approaches",
        )
    )
    paper = {(f"{ts}/{g}", m): v for (ts, m, g), v in TABLE3_MAE.items()}
    print()
    print(
        format_paper_table(
            paper,
            training_sets=("ML_300", "ML_200", "ML_100"),
            methods=list(METHODS),
            title="Table III (paper)",
        )
    )

    # --- statistical significance at the ML_300/Given10 anchor ----------
    sig_rows = []
    for method in ("AM", "EMDP", "SCBPCC", "SF", "PD"):
        cmp = paired_comparison(truth, predictions["CFSF"], predictions[method])
        sig_rows.append(
            [
                f"CFSF vs {method}",
                cmp.mean_diff,
                cmp.wilcoxon_pvalue,
                "yes" if cmp.a_wins and cmp.significant() else "no",
            ]
        )
    print()
    print(
        format_table(
            ["pair", "mean |err| diff", "Wilcoxon p", "CFSF significantly better"],
            sig_rows,
            title="Paired significance on ML_300/Given10 (negative diff = CFSF better)",
            float_fmt="{:.4g}",
        )
    )

    # --- CFSF wins (with the documented single-cell tie slack) ----------
    for n_train in (100, 200, 300):
        for given in (5, 10, 20):
            cell = f"ML_{n_train}/Given{given}"
            cfsf = measured[(cell, "CFSF")]
            for method in ("AM", "EMDP", "SCBPCC", "SF", "PD"):
                assert cfsf <= measured[(cell, method)] + TIE_TOLERANCE, (cell, method)

    # --- AM is weakest-tier and degrades hardest on ML_100 --------------
    for given in (5, 10, 20):
        cell100 = f"ML_100/Given{given}"
        cell300 = f"ML_300/Given{given}"
        am_degradation = measured[(cell100, "AM")] - measured[(cell300, "AM")]
        cfsf_degradation = measured[(cell100, "CFSF")] - measured[(cell300, "CFSF")]
        assert am_degradation > cfsf_degradation - 0.01, given

    # --- sanity band -----------------------------------------------------
    for key, value in measured.items():
        assert 0.5 < value < 1.2, (key, value)
