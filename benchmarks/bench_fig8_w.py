"""Fig. 8 — sensitivity of w (epsilon) over ML_300.

Sweeps Eq. 11's original-vs-smoothed rating weight (online-only) at
Given5/10/20.

Paper's shape: best accuracy for w in 0.2–0.4; "otherwise, CFSF
achieves poor accuracy because it considers either original or
smoothed ratings too much" — i.e. both extremes (w -> 0: only smoothed
ratings trusted; w -> 1: only originals trusted) lose to a mixture.

Measured shape (see EXPERIMENTS.md): the claim that a *mixture* beats
the w -> 0 extreme reproduces strongly; on this substrate the optimum
sits higher (w ~ 0.8) because the generator's cluster-smoothing signal
is weaker relative to original co-ratings than on the authors' data.
Assertions pin the mixture-beats-extreme shape.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import HARNESS_SEED, run_once
from repro.data import make_split
from repro.eval import ascii_plot, format_table, sweep_cfsf_parameter

W_VALUES = [0.02, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.98]


def test_fig8_w_sensitivity(benchmark, dataset):
    def run():
        series = {}
        for given_n in (5, 10, 20):
            split = make_split(
                dataset, n_train_users=300, given_n=given_n, seed=HARNESS_SEED
            )
            results = sweep_cfsf_parameter(split, "epsilon", W_VALUES)
            series[f"Given{given_n}"] = [r.mae for _, r in results]
        return series

    series = run_once(benchmark, run)

    print()
    rows = [[w, *[series[f"Given{g}"][i] for g in (5, 10, 20)]] for i, w in enumerate(W_VALUES)]
    print(format_table(["w", "Given5", "Given10", "Given20"], rows,
                       title="Fig. 8 (measured): sensitivity of w over ML_300",
                       float_fmt="{:.4f}"))
    print()
    print(ascii_plot(W_VALUES, series, title="Fig. 8 shape", x_label="w (epsilon)"))

    for name, maes in series.items():
        maes = np.asarray(maes)
        # Trusting only smoothed ratings (w -> 0) is the bad extreme.
        assert maes[0] > maes.min(), name
        # The optimum is not at the hard w -> 0 end.
        assert int(np.argmin(maes)) > 0, name
