"""Extension E2 — incremental GIS maintenance (Section VI future work).

Streams ratings into a fitted GIS and compares:

* exact sufficient-statistic updates (:class:`repro.core.IncrementalGIS`,
  O(|I_u|) per event) against
* the rebuild-per-batch strategy the paper's offline phase implies.

Asserts exactness (max similarity deviation at rounding level) and a
material wall-clock advantage at the benchmarked stream shape.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import HARNESS_SEED, run_once
from repro.core import IncrementalGIS
from repro.eval import format_table
from repro.similarity import pairwise_pcc

N_EVENTS = 1500
REBUILD_EVERY = 150


def test_ext_incremental_gis(benchmark, ml300_given10):
    train = ml300_given10.train
    rng = np.random.default_rng(HARNESS_SEED)

    def run():
        gis = IncrementalGIS(train)
        events = []
        for _ in range(N_EVENTS):
            u = int(rng.integers(0, gis.n_users))
            i = int(rng.integers(0, gis.n_items))
            events.append((u, i, float(rng.integers(1, 6))))

        start = time.perf_counter()
        for u, i, r in events:
            gis.add_rating(u, i, r)
        t_inc = time.perf_counter() - start

        snapshot = gis.matrix()
        n_rebuilds = N_EVENTS // REBUILD_EVERY
        start = time.perf_counter()
        for _ in range(n_rebuilds):
            pairwise_pcc(snapshot.values, snapshot.mask, centering="corated_mean")
        t_rebuild = time.perf_counter() - start

        ref = pairwise_pcc(snapshot.values, snapshot.mask, centering="corated_mean")
        got = np.vstack([gis.sim_row(j) for j in range(gis.n_items)])
        max_dev = float(np.abs(ref - got).max())
        return t_inc, t_rebuild, max_dev

    t_inc, t_rebuild, max_dev = run_once(benchmark, run)

    print()
    print(
        format_table(
            ["strategy", "seconds", "per event (ms)"],
            [
                ["incremental (exact)", t_inc, t_inc / N_EVENTS * 1e3],
                [f"rebuild every {REBUILD_EVERY}", t_rebuild, t_rebuild / N_EVENTS * 1e3],
            ],
            title=f"Extension: GIS maintenance over {N_EVENTS} rating events",
        )
    )
    print(f"max |incremental - rebuilt| deviation: {max_dev:.2e}")

    assert max_dev < 1e-9
    assert t_inc < t_rebuild  # the point of the extension
