"""Ablation A4 — CFSF vs biased matrix factorisation.

Not in the paper's tables (MF postdates its comparator set as a
mainstream method), but the related work (its refs [12], [20]) is the
family that ultimately superseded neighbourhood CF; placing CFSF
against a tuned-lightly biased-SGD MF contextualises the 2009 result
for a modern reader.  Also reports the Wilcoxon significance of the
gap.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.baselines import MatrixFactorization
from repro.core import CFSF
from repro.eval import evaluate, format_table, paired_comparison


def test_ablation_cfsf_vs_mf(benchmark, ml300_given10):
    split = ml300_given10

    def run():
        cfsf = evaluate(CFSF(), split, keep_predictions=True)
        mf = evaluate(
            MatrixFactorization(n_factors=16, n_epochs=30, seed=0),
            split,
            keep_predictions=True,
        )
        truth = split.targets_arrays()[2]
        cmp = paired_comparison(truth, cfsf.predictions, mf.predictions)
        return cfsf, mf, cmp

    cfsf, mf, cmp = run_once(benchmark, run)

    print()
    print(
        format_table(
            ["method", "MAE", "RMSE", "fit (s)", "predict (s)"],
            [
                ["CFSF", cfsf.mae, cfsf.rmse, cfsf.fit_seconds, cfsf.predict_seconds],
                ["MF (16 factors)", mf.mae, mf.rmse, mf.fit_seconds, mf.predict_seconds],
            ],
            title="CFSF vs biased-SGD matrix factorisation (ML_300/Given10)",
            float_fmt="{:.4f}",
        )
    )
    print(
        f"paired Wilcoxon p = {cmp.wilcoxon_pvalue:.3g} "
        f"(mean |err| diff {cmp.mean_diff:+.4f}; negative favours CFSF)"
    )

    # Both must be competitive methods on this data; neither should
    # collapse.  Which one wins is substrate-dependent and recorded,
    # not asserted.
    assert 0.6 < cfsf.mae < 0.9
    assert 0.6 < mf.mae < 0.9
