"""CI benchmark-regression gate for the serving-latency trajectory.

Compares a freshly measured serving-latency run against the committed
``BENCH_serving_latency.json`` baseline and fails (exit 1) when the
p95 regresses by more than the tolerance.  Used by the ``bench-gate``
job in ``.github/workflows/ci.yml``; run locally with::

    PYTHONPATH=src python benchmarks/check_regression.py --smoke

Knobs
-----
``--tolerance`` / ``BENCH_GATE_TOLERANCE``
    Allowed fractional p95 regression (default 0.25 = +25%).  CI
    runners are noisy; the tolerance is a tripwire for gross
    regressions, not a microbenchmark.
``BENCH_GATE_SKIP=1``
    Escape hatch: report and exit 0 regardless of the comparison.
    For emergencies (e.g. a deliberate latency/quality trade landing
    ahead of its new baseline) — the skip is printed loudly so it is
    visible in the CI log.
``--current``
    Compare an existing result file instead of running the bench.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_serving_latency.json"
DEFAULT_TOLERANCE = 0.25


def check(baseline: dict, current: dict, tolerance: float) -> tuple[bool, str]:
    """Pure comparison: ``(ok, human-readable verdict)``.

    The gate is one-sided — only a p95 *increase* beyond
    ``baseline_p95 * (1 + tolerance)`` fails.  Improvements always
    pass (regenerating the baseline to ratchet the budget down is a
    deliberate, reviewed act).
    """
    base_p95 = float(baseline["p95"])
    curr_p95 = float(current["p95"])
    if base_p95 <= 0.0:
        return False, f"baseline p95 is non-positive ({base_p95!r}); regenerate the baseline"
    limit = base_p95 * (1.0 + tolerance)
    ratio = curr_p95 / base_p95
    detail = (
        f"p95 baseline={base_p95 * 1e3:.3f}ms current={curr_p95 * 1e3:.3f}ms "
        f"({ratio - 1.0:+.0%} vs baseline, limit {limit * 1e3:.3f}ms)"
    )
    if curr_p95 > limit:
        return False, f"REGRESSION: {detail}"
    return True, f"OK: {detail}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline JSON (default: repo artefact)",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=None,
        help="existing result JSON to compare; omit to run the bench now",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_GATE_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed fractional p95 regression (default 0.25, env BENCH_GATE_TOLERANCE)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the bench in reduced smoke geometry (CI default)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"bench gate: no baseline at {args.baseline}; nothing to compare", flush=True)
        return 0

    baseline = json.loads(args.baseline.read_text())
    if args.current is not None:
        current = json.loads(args.current.read_text())
    else:
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        from bench_serving_latency import run_bench

        current = run_bench(output_path=None, smoke=args.smoke)

    ok, verdict = check(baseline, current, args.tolerance)
    print(f"bench gate: {verdict}", flush=True)

    if os.environ.get("BENCH_GATE_SKIP", "") not in ("", "0"):
        print("bench gate: BENCH_GATE_SKIP set — result ignored, exiting 0", flush=True)
        return 0
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
