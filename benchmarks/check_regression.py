"""CI benchmark-regression gate for the serving benchmarks.

Compares freshly measured serving runs against the committed baseline
artefacts and fails (exit 1) when a gated metric regresses by more
than the tolerance.  Two gates are registered:

``latency``
    ``BENCH_serving_latency.json`` — p95 seconds per prediction;
    *lower is better*, so the gate fails when current p95 exceeds
    ``baseline * (1 + tolerance)``.
``throughput``
    ``BENCH_serving_throughput.json`` — batched requests/second at 8
    concurrent client threads; *higher is better*, so the gate fails
    when current RPS drops below ``baseline * (1 - tolerance)``.

Used by the ``bench-gate`` job in ``.github/workflows/ci.yml``; run
locally with::

    PYTHONPATH=src python benchmarks/check_regression.py --smoke
    PYTHONPATH=src python benchmarks/check_regression.py --bench throughput --smoke

Knobs
-----
``--bench latency|throughput|all``
    Which gate(s) to run (default ``all``).
``--tolerance`` / ``BENCH_GATE_TOLERANCE``
    Allowed fractional regression (default 0.25 = ±25%).  CI runners
    are noisy; the tolerance is a tripwire for gross regressions, not
    a microbenchmark.
``BENCH_GATE_SKIP=1``
    Escape hatch: report and exit 0 regardless of the comparison.
    For emergencies (e.g. a deliberate latency/quality trade landing
    ahead of its new baseline) — the skip is printed loudly so it is
    visible in the CI log.
``--current``
    Compare an existing result file instead of running the bench
    (single ``--bench`` only, since the file holds one payload).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class Gate:
    """One benchmark's gate: where its baseline lives and what to compare."""

    name: str
    baseline_path: Path
    module: str  # benchmarks/<module>.py exposing run_bench(output_path, smoke)
    metric: str  # payload key under comparison
    higher_is_better: bool
    unit_format: str  # format spec rendering the metric for humans


GATES: dict[str, Gate] = {
    "latency": Gate(
        name="latency",
        baseline_path=REPO_ROOT / "BENCH_serving_latency.json",
        module="bench_serving_latency",
        metric="p95",
        higher_is_better=False,
        unit_format="ms",
    ),
    "throughput": Gate(
        name="throughput",
        baseline_path=REPO_ROOT / "BENCH_serving_throughput.json",
        module="bench_serving_throughput",
        metric="rps",
        higher_is_better=True,
        unit_format="rps",
    ),
}


def _fmt(gate: Gate, value: float) -> str:
    if gate.unit_format == "ms":
        return f"{value * 1e3:.3f}ms"
    return f"{value:,.0f} RPS"


def check(
    baseline: dict, current: dict, tolerance: float, gate: Gate | None = None
) -> tuple[bool, str]:
    """Pure comparison: ``(ok, human-readable verdict)``.

    The gate is one-sided — only a regression beyond the tolerance
    fails: a p95 *increase* past ``baseline * (1 + tolerance)`` for
    lower-is-better metrics, an RPS *drop* below ``baseline * (1 -
    tolerance)`` for higher-is-better ones.  Improvements always pass
    (regenerating the baseline to ratchet the budget is a deliberate,
    reviewed act).
    """
    if gate is None:
        gate = GATES["latency"]
    base = float(baseline[gate.metric])
    curr = float(current[gate.metric])
    if base <= 0.0:
        return False, (
            f"baseline {gate.metric} is non-positive ({base!r}); regenerate the baseline"
        )
    ratio = curr / base
    if gate.higher_is_better:
        limit = base * (1.0 - tolerance)
        failed = curr < limit
    else:
        limit = base * (1.0 + tolerance)
        failed = curr > limit
    detail = (
        f"{gate.metric} baseline={_fmt(gate, base)} current={_fmt(gate, curr)} "
        f"({ratio - 1.0:+.0%} vs baseline, limit {_fmt(gate, limit)})"
    )
    if failed:
        return False, f"REGRESSION: {detail}"
    return True, f"OK: {detail}"


def _run_gate(gate: Gate, args: argparse.Namespace) -> tuple[bool, str]:
    if not gate.baseline_path.exists():
        return True, f"no baseline at {gate.baseline_path.name}; nothing to compare"
    baseline = json.loads(gate.baseline_path.read_text())
    if args.current is not None:
        current = json.loads(args.current.read_text())
    else:
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        module = __import__(gate.module)
        current = module.run_bench(output_path=None, smoke=args.smoke)
    return check(baseline, current, args.tolerance, gate)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench",
        choices=[*GATES, "all"],
        default="all",
        help="which gate(s) to run (default: all)",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=None,
        help="existing result JSON to compare; omit to run the bench now",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_GATE_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed fractional regression (default 0.25, env BENCH_GATE_TOLERANCE)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the benches in reduced smoke geometry (CI default)",
    )
    args = parser.parse_args(argv)

    names = list(GATES) if args.bench == "all" else [args.bench]
    if args.current is not None and len(names) > 1:
        parser.error("--current holds one payload; pick a single --bench")

    all_ok = True
    for name in names:
        ok, verdict = _run_gate(GATES[name], args)
        print(f"bench gate [{name}]: {verdict}", flush=True)
        all_ok = all_ok and ok

    if os.environ.get("BENCH_GATE_SKIP", "") not in ("", "0"):
        print("bench gate: BENCH_GATE_SKIP set — result ignored, exiting 0", flush=True)
        return 0
    return 0 if all_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
