"""Fig. 2 — accuracy with M similar items over ML_300.

Sweeps CFSF's top-M item count at Given5/10/20 with everything else at
the paper's defaults (refitting is unnecessary — M is online-only).

Paper's shape: high MAE for small M (too few similar items collected),
a drop until M ≈ 50–60, then flat/slowly-improving — "when M is
greater than 60, CFSF collects enough ratings so that it achieves a
low MAE".

Measured shape on the synthetic substrate (see EXPERIMENTS.md): the
*flat plateau* and absence of large-M degradation reproduce; the
strong small-M penalty does not — because this implementation smooths
the active user's profile densely, SIR'/SUIR' are fully populated even
at M=10, whereas the paper's penalty comes from rating scarcity inside
small neighbourhoods.  The assertions below pin the reproducible part.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import HARNESS_SEED, run_once
from repro.core import CFSFConfig
from repro.data import make_split
from repro.eval import ascii_plot, format_table, sweep_cfsf_parameter

M_VALUES = [10, 20, 30, 40, 50, 60, 70, 80, 95, 100]


def test_fig2_accuracy_vs_m(benchmark, dataset):
    def run():
        series = {}
        for given_n in (5, 10, 20):
            split = make_split(
                dataset, n_train_users=300, given_n=given_n, seed=HARNESS_SEED
            )
            results = sweep_cfsf_parameter(split, "top_m_items", M_VALUES)
            series[f"Given{given_n}"] = [r.mae for _, r in results]
        return series

    series = run_once(benchmark, run)

    print()
    rows = [[m, *[series[f"Given{g}"][i] for g in (5, 10, 20)]] for i, m in enumerate(M_VALUES)]
    print(format_table(["M", "Given5", "Given10", "Given20"], rows,
                       title="Fig. 2 (measured): MAE vs M over ML_300",
                       float_fmt="{:.4f}"))
    print()
    print(ascii_plot([float(m) for m in M_VALUES], series,
                     title="Fig. 2 shape", x_label="M similar items"))

    for name, maes in series.items():
        maes = np.asarray(maes)
        # The reproducible shape: a stable plateau with no degradation
        # at large M ("flat after the elbow").
        assert maes.max() - maes.min() < 0.02, name
        assert maes[-1] <= maes.max() + 1e-12, name
        # GivenN ordering holds at every M.
    g5, g20 = np.asarray(series["Given5"]), np.asarray(series["Given20"])
    assert (g20 < g5).all()
