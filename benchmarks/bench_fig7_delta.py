"""Fig. 7 — sensitivity of delta over ML_300.

Sweeps the SUIR' admixture delta (online-only) at Given5/10/20.

Paper's shape: the minimum sits at small delta (~0.1) — "SUIR'
improves the MAE for CFSF, but not significantly" — and MAE rises
steadily as delta -> 1 (SUIR'-only prediction is clearly worse than
the fused one).

Measured shape (see EXPERIMENTS.md): both reproduced claims are
asserted — a small-delta admixture of SUIR' is at least as good as
delta = 0, and delta = 1 (SUIR' alone) is worse than the optimum.  On
this substrate the tolerated delta range is wider than the paper's
because the bias-adjusted SUIR' is a stronger component.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import HARNESS_SEED, run_once
from repro.data import make_split
from repro.eval import ascii_plot, format_table, sweep_cfsf_parameter

DELTAS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


def test_fig7_delta_sensitivity(benchmark, dataset):
    def run():
        series = {}
        for given_n in (5, 10, 20):
            split = make_split(
                dataset, n_train_users=300, given_n=given_n, seed=HARNESS_SEED
            )
            results = sweep_cfsf_parameter(split, "delta", DELTAS)
            series[f"Given{given_n}"] = [r.mae for _, r in results]
        return series

    series = run_once(benchmark, run)

    print()
    rows = [[d, *[series[f"Given{g}"][i] for g in (5, 10, 20)]] for i, d in enumerate(DELTAS)]
    print(format_table(["delta", "Given5", "Given10", "Given20"], rows,
                       title="Fig. 7 (measured): sensitivity of delta over ML_300",
                       float_fmt="{:.4f}"))
    print()
    print(ascii_plot(DELTAS, series, title="Fig. 7 shape", x_label="delta"))

    for name, maes in series.items():
        maes = np.asarray(maes)
        # A light SUIR' admixture does not hurt (paper: small delta best).
        assert maes[1] <= maes[0] + 1e-3, name
        # SUIR' alone is worse than the best fused configuration.
        assert maes[-1] > maes.min() + 1e-4, name
