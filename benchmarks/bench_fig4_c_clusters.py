"""Fig. 4 — accuracy with C user clusters over ML_300.

Sweeps the offline cluster count (each value refits the model: C is
an offline parameter).

Paper's shape: MAE high for C < 30 (too-coarse clusters cannot remove
rating-style diversity), best around C ≈ 30, degrading again past
C ≈ 90 (too many tiny clusters leave deviations under-estimated),
with the Given20 curve rising fastest.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import HARNESS_SEED, run_once
from repro.data import make_split
from repro.eval import ascii_plot, format_table, sweep_cfsf_parameter

C_VALUES = [5, 10, 20, 30, 50, 70, 90, 120, 150]


def test_fig4_accuracy_vs_c(benchmark, dataset):
    def run():
        series = {}
        for given_n in (5, 10, 20):
            split = make_split(
                dataset, n_train_users=300, given_n=given_n, seed=HARNESS_SEED
            )
            results = sweep_cfsf_parameter(split, "n_clusters", C_VALUES)
            series[f"Given{given_n}"] = [r.mae for _, r in results]
        return series

    series = run_once(benchmark, run)

    print()
    rows = [[c, *[series[f"Given{g}"][i] for g in (5, 10, 20)]] for i, c in enumerate(C_VALUES)]
    print(format_table(["C", "Given5", "Given10", "Given20"], rows,
                       title="Fig. 4 (measured): MAE vs C over ML_300",
                       float_fmt="{:.4f}"))
    print()
    print(ascii_plot([float(c) for c in C_VALUES], series,
                     title="Fig. 4 shape", x_label="C user clusters"))

    for name, maes in series.items():
        maes = np.asarray(maes)
        best_idx = int(np.argmin(maes))
        best_c = C_VALUES[best_idx]
        # Interior optimum: neither the coarsest nor the finest end wins.
        assert C_VALUES[0] < best_c < C_VALUES[-1] or maes.max() - maes.min() < 0.01, (
            name,
            best_c,
        )
    # GivenN ordering holds at every C.
    g5 = np.asarray(series["Given5"])
    g20 = np.asarray(series["Given20"])
    assert (g20 < g5).all()
