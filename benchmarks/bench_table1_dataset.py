"""Table I — statistics of the dataset.

Regenerates the paper's Table I (users, items, ratings/user, density)
from the evaluation matrix and benchmarks the generator itself.

Paper values: 500 users, 1000 items, 94.4 rated items/user, 9.44%
density, 1..5 scale.
"""

from __future__ import annotations

from benchmarks.conftest import HARNESS_SEED, run_once
from repro.data import dataset_source, make_movielens_like
from repro.eval import format_table


def test_table1_dataset_statistics(benchmark, dataset):
    stats = run_once(benchmark, dataset.stats)

    print()
    print(f"data source: {dataset_source(seed=HARNESS_SEED)}")
    print(format_table(["statistic", "measured", "paper"],
                       [
                           ["No. of Users", stats.n_users, 500],
                           ["No. of Items", stats.n_items, 1000],
                           ["Avg rated items per user", f"{stats.avg_ratings_per_user:.1f}", 94.4],
                           ["Density of data", f"{stats.density*100:.2f}%", "9.44%"],
                           ["Rating scale", f"{stats.rating_scale[0]:g}..{stats.rating_scale[1]:g}", "1..5"],
                       ],
                       title="Table I: statistics of the dataset"))

    assert stats.n_users == 500
    assert stats.n_items == 1000
    assert abs(stats.avg_ratings_per_user - 94.4) < 4.0
    assert abs(stats.density - 0.0944) < 0.004


def test_table1_generator_speed(benchmark):
    """Micro-bench: generating the full 500x1000 dataset."""
    ds = benchmark(lambda: make_movielens_like(seed=HARNESS_SEED))
    assert ds.ratings.n_users == 500
