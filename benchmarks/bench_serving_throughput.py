"""Seed of the serving-throughput trajectory (``BENCH_serving_throughput.json``).

PR 3 made one prediction fast; this benchmark measures how many the
service sustains *per second* when traffic is concurrent — the ROADMAP
north star ("heavy traffic from millions of users") is throughput-
bound, not latency-bound.

Two configurations drive the same request stream from ``THREADS``
client threads:

1. **Serialized baseline** — the pre-concurrency status quo: each
   request is a single ``PredictionService.predict`` call under one
   global mutex, because the fusion kernel's scratch buffers are
   non-re-entrant and a shared kernel admits exactly one call at a
   time.
2. **Micro-batched** — the :class:`~repro.serving.MicroBatcher`
   coalesces the in-flight requests into user-sorted batches
   dispatched to ``CFSF.predict_many`` over a
   :class:`~repro.serving.KernelPool`, so per-call overhead is
   amortised across the batch and same-user requests share one
   prepared state.

Clients submit in windows of ``PIPELINE`` in-flight requests each (a
closed loop with pipelining — the live-traffic shape where a frontend
fans out many requests per page).  Both services run with the
request-level LRU cache disabled so every request exercises the full
fusion path; the batched run's per-request latency (submit → result)
is recorded client-side for the p50/p95/p99 under load.

Batched predictions are asserted **bit-for-bit equal** to the serial
``predict_many`` reference before the payload is written — throughput
that changes the answers is a bug, not a speedup.

``benchmarks/check_regression.py --bench throughput`` gates CI on the
``rps`` field of this file (fail on >25% drop, ``BENCH_GATE_*``
overrides honored).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py [--smoke]
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import CFSF
from repro.data import default_dataset, make_split
from repro.obs import MetricsRegistry
from repro.serving import MicroBatcher, PredictionService

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_serving_throughput.json"

#: Bench geometry.  ``N_ACTIVE`` bounds the distinct active users in
#: the stream so coalesced batches contain same-user runs (the shape
#: a router-grouped production stream has); requests per thread keeps
#: the timed window long enough that thread start-up noise washes out.
THREADS = 8
PIPELINE = 32            # in-flight requests per client thread
N_ACTIVE = 12            # distinct active users in the stream
REQUESTS_PER_THREAD = 250
TRAIN_SIZE = 200
GIVEN_N = 10
SEED = 0

#: Reduced geometry for the CI smoke/regression run.
SMOKE_TRAIN_SIZE = 120
SMOKE_REQUESTS_PER_THREAD = 120

#: Micro-batcher knobs used by the bench (and recorded in the payload).
MAX_BATCH_SIZE = 128
MAX_WAIT_US = 1000.0
WORKERS = 1


def _request_stream(split, *, requests_per_thread: int) -> tuple[np.ndarray, np.ndarray]:
    """A shuffled (users, items) stream over ``N_ACTIVE`` test users."""
    users, items, _ = split.targets_arrays()
    active = np.unique(users)[:N_ACTIVE]
    keep = np.isin(users, active)
    users, items = users[keep], items[keep]
    rng = np.random.default_rng(SEED)
    total = THREADS * requests_per_thread
    pick = rng.integers(0, users.size, size=total)
    return users[pick], items[pick]


def _run_serialized(service, given, users, items) -> float:
    """Baseline: T threads, one mutex, single-request calls.  Returns RPS."""
    mutex = threading.Lock()
    barrier = threading.Barrier(THREADS + 1)
    per_thread = users.size // THREADS

    def client(t: int) -> None:
        lo = t * per_thread
        barrier.wait()
        for idx in range(lo, lo + per_thread):
            with mutex:
                service.predict(given, int(users[idx]), int(items[idx]))
        barrier.wait()

    threads = [threading.Thread(target=client, args=(t,)) for t in range(THREADS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    barrier.wait()
    elapsed = time.perf_counter() - t0
    for thread in threads:
        thread.join()
    return (per_thread * THREADS) / elapsed


def _run_batched(
    batcher, given, users, items
) -> tuple[float, np.ndarray, np.ndarray]:
    """Micro-batched: T pipelining clients.  Returns (RPS, values, latencies)."""
    barrier = threading.Barrier(THREADS + 1)
    per_thread = users.size // THREADS
    values = np.empty(per_thread * THREADS, dtype=np.float64)
    latencies = np.empty(per_thread * THREADS, dtype=np.float64)

    def client(t: int) -> None:
        lo = t * per_thread
        barrier.wait()
        for start in range(lo, lo + per_thread, PIPELINE):
            stop = min(start + PIPELINE, lo + per_thread)
            sent = time.perf_counter()
            futures = [
                batcher.submit(given, int(users[idx]), int(items[idx]))
                for idx in range(start, stop)
            ]
            for offset, future in enumerate(futures):
                values[start + offset] = future.result(timeout=30).value
                latencies[start + offset] = time.perf_counter() - sent
        barrier.wait()

    threads = [threading.Thread(target=client, args=(t,)) for t in range(THREADS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    barrier.wait()
    elapsed = time.perf_counter() - t0
    for thread in threads:
        thread.join()
    return (per_thread * THREADS) / elapsed, values, latencies


def run_bench(
    output_path: Path | None = OUTPUT_PATH,
    *,
    smoke: bool = False,
) -> dict:
    """Run both configurations; write and return the payload."""
    train_size = SMOKE_TRAIN_SIZE if smoke else TRAIN_SIZE
    per_thread = SMOKE_REQUESTS_PER_THREAD if smoke else REQUESTS_PER_THREAD
    ratings = default_dataset(seed=SEED)
    split = make_split(ratings, n_train_users=train_size, given_n=GIVEN_N, seed=SEED)
    model = CFSF().fit(split.train)
    users, items = _request_stream(split, requests_per_thread=per_thread)

    # Request cache off in both configurations: the bench measures the
    # fusion path under load, not exact-match memoisation.
    service = PredictionService(model, request_cache_size=0)

    # Warm the per-user prepared state (both configurations reuse it —
    # the steady state a long-running server converges to).
    service.predict_many(split.given, users, items)
    reference = service.predict_many(split.given, users, items).predictions

    rps_serialized = _run_serialized(service, split.given, users, items)

    registry = MetricsRegistry()
    batcher = MicroBatcher(
        service,
        max_batch_size=MAX_BATCH_SIZE,
        max_wait_us=MAX_WAIT_US,
        workers=WORKERS,
        metrics=registry,
    )
    try:
        rps_batched, values, latencies = _run_batched(
            batcher, split.given, users, items
        )
        stats = batcher.stats()
    finally:
        batcher.close()

    agreement = float(np.abs(values - reference).max())
    if agreement > 1e-9:
        raise AssertionError(
            f"batched serving diverged from the serial path by {agreement:g}"
        )

    payload = {
        "benchmark": "serving_throughput",
        "seed": SEED,
        "smoke": bool(smoke),
        "n_train_users": train_size,
        "given_n": GIVEN_N,
        "threads": THREADS,
        "pipeline": PIPELINE,
        "n_active_users": N_ACTIVE,
        "requests": int(users.size),
        "max_batch_size": MAX_BATCH_SIZE,
        "max_wait_us": MAX_WAIT_US,
        "dispatch_workers": WORKERS,
        "rps": rps_batched,
        "rps_serialized": rps_serialized,
        "speedup": rps_batched / rps_serialized,
        "mean_batch_size": stats["mean_batch_size"],
        "agreement_max_abs_diff": agreement,
        "latency_p50": float(np.percentile(latencies, 50)),
        "latency_p95": float(np.percentile(latencies, 95)),
        "latency_p99": float(np.percentile(latencies, 99)),
    }
    if output_path is not None:
        output_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


@pytest.mark.perf
def test_bench_serving_throughput():
    """Regenerate the artefact and check the concurrency win is real."""
    payload = run_bench()
    assert payload["agreement_max_abs_diff"] <= 1e-9
    assert payload["mean_batch_size"] > 1.5, "micro-batcher never coalesced"
    assert payload["speedup"] >= 3.0, (
        f"batched RPS only {payload['speedup']:.2f}x the serialized baseline"
    )
    print(
        f"\nserving throughput at {payload['threads']} threads: "
        f"{payload['rps']:,.0f} RPS batched vs {payload['rps_serialized']:,.0f} "
        f"serialized ({payload['speedup']:.1f}x), mean batch "
        f"{payload['mean_batch_size']:.1f}, p95 {payload['latency_p95'] * 1e3:.2f}ms "
        f"-> {OUTPUT_PATH.name}"
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced geometry for the CI regression gate",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=OUTPUT_PATH,
        help="where to write the JSON payload (default: repo root artefact)",
    )
    cli = parser.parse_args()
    result = run_bench(output_path=cli.output, smoke=cli.smoke)
    print(json.dumps(result, indent=2, sort_keys=True))
