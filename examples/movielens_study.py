#!/usr/bin/env python
"""The paper's Table II / Table III comparison, reproduced end to end.

    python examples/movielens_study.py            # ML_300 only (~1 min)
    python examples/movielens_study.py --full     # all nine cells

Fits CFSF and every comparator (SIR, SUR, SF, SCBPCC, EMDP, AM, PD) on
the paper's training prefixes and prints the MAE tables in the paper's
layout, next to the published values.
"""

from __future__ import annotations

import argparse

from repro.baselines import (
    EMDP,
    SCBPCC,
    AspectModel,
    ItemBasedCF,
    PersonalityDiagnosis,
    SimilarityFusion,
    UserBasedCF,
)
from repro.core import CFSF
from repro.data import default_dataset
from repro.eval import TABLE3_MAE, format_paper_table, run_grid

MODEL_FACTORIES = {
    "CFSF": lambda: CFSF(),
    "SUR": lambda: UserBasedCF(mean_offset=False),   # literal Eq. 2
    "SIR": lambda: ItemBasedCF(),                    # literal Eq. 1
    "SF": lambda: SimilarityFusion(),
    "SCBPCC": lambda: SCBPCC(),
    "EMDP": lambda: EMDP(),
    "AM": lambda: AspectModel(),
    "PD": lambda: PersonalityDiagnosis(),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="run all training sizes (100/200/300)"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    ratings = default_dataset(seed=args.seed)
    training_sizes = (100, 200, 300) if args.full else (300,)

    grid = run_grid(
        ratings,
        MODEL_FACTORIES,
        training_sizes=training_sizes,
        given_sizes=(5, 10, 20),
        seed=args.seed,
        progress=print,
    )

    print()
    print(
        format_paper_table(
            grid.mae_map(),
            training_sets=[f"ML_{n}" for n in sorted(training_sizes, reverse=True)],
            methods=list(MODEL_FACTORIES),
            title="Measured MAE (this run)",
        )
    )

    print()
    paper_results = {
        (f"{ts}/{g}", m): v
        for (ts, m, g), v in TABLE3_MAE.items()
        if int(ts.split("_")[1]) in training_sizes
    }
    print(
        format_paper_table(
            paper_results,
            training_sets=[f"ML_{n}" for n in sorted(training_sizes, reverse=True)],
            methods=["CFSF", "AM", "EMDP", "SCBPCC", "SF", "PD"],
            title="Paper's Table III (published values, for comparison)",
        )
    )

    print()
    winners = grid.best_method_per_split()
    print("winner per cell:", winners)
    cfsf_wins = sum(1 for w in winners.values() if w == "CFSF")
    print(f"CFSF wins {cfsf_wins}/{len(winners)} cells (the paper reports 9/9)")


if __name__ == "__main__":
    main()
