#!/usr/bin/env python
"""Top-N recommendation: CFSF as a ranked-list recommender.

    python examples/top_n_recommendations.py
    python examples/top_n_recommendations.py --n 20

Rating prediction (the paper's metric) is a means; the product surface
of the systems the paper cites is a ranked list.  This example:

1. fits CFSF and produces a top-N list for a few active users,
2. evaluates ranking quality (precision/recall@N, NDCG@N) against the
   held-out ratings, counting an item as relevant when its held-out
   rating is >= 4,
3. compares CFSF's ranking against a random ranking (the floor) and
   the item-mean ("popularity") ranking.

A caution worth showing rather than hiding: under the
held-out-rated-items protocol the popularity ranker is notoriously
strong (users chose what to rate, and well-rated items are genuinely
better on average — cf. Cremonesi et al., RecSys 2010), so
personalised and popularity rankings land close here.  The honest
win over the random floor is what the assertion-grade tests pin.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import MeanPredictor
from repro.core import CFSF, recommend_top_n
from repro.data import default_dataset, make_split
from repro.eval import format_table, ndcg_at_n, precision_recall_at_n


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    ratings = default_dataset(seed=args.seed)
    split = make_split(ratings, n_train_users=300, given_n=10, seed=args.seed)
    model = CFSF().fit(split.train)
    popularity = MeanPredictor("item").fit(split.train)

    # 1. A few concrete lists.
    print(f"top-{args.n} lists for the first three active users:")
    for user in range(3):
        rec = recommend_top_n(model, split.given, user, n=args.n)
        items = ", ".join(f"{i}({s:.1f})" for i, s in rec.as_pairs()[:5])
        print(f"  user {user}: {items}, ...")
    print()

    # 2 + 3. Ranking quality over all active users, candidates
    # restricted to each user's held-out items (the evaluable set).
    rng = np.random.default_rng(args.seed)

    class RandomRanker:
        """Scores items uniformly at random (the ranking floor)."""

        def predict_many(self, given, users, items):
            return rng.uniform(1.0, 5.0, size=len(items))

    rows = []
    for name, recommender in (
        ("CFSF", model),
        ("Popularity", popularity),
        ("Random", RandomRanker()),
    ):
        precisions, recalls, ndcgs, evaluated = [], [], [], 0
        for user in range(split.given.n_users):
            heldout = np.nonzero(split.heldout.mask[user])[0]
            liked = heldout[split.heldout.values[user, heldout] >= 4.0]
            if liked.size < 3 or heldout.size <= args.n:
                continue
            rec = recommend_top_n(
                recommender, split.given, user, n=args.n, candidate_items=heldout
            )
            p, r = precision_recall_at_n(liked, rec.items, args.n)
            precisions.append(p)
            recalls.append(r)
            ndcgs.append(ndcg_at_n(liked, rec.items, args.n))
            evaluated += 1
        rows.append(
            [name, float(np.mean(precisions)), float(np.mean(recalls)),
             float(np.mean(ndcgs)), evaluated]
        )

    print(
        format_table(
            ["ranker", f"precision@{args.n}", f"recall@{args.n}",
             f"NDCG@{args.n}", "users"],
            rows,
            title="Ranking quality on held-out items (liked = rating >= 4)",
        )
    )


if __name__ == "__main__":
    main()
