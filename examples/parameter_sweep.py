#!/usr/bin/env python
"""Sensitivity study: the paper's Figs. 2-4 and 6-8 as terminal plots.

    python examples/parameter_sweep.py                 # all six sweeps
    python examples/parameter_sweep.py --figure 6      # just lambda

Sweeps one CFSF parameter at a time over ML_300 (Given5/10/20) and
prints ASCII curves in the shape of the paper's figures:

=======  ==================  ===========================
figure   parameter           paper's finding
=======  ==================  ===========================
Fig. 2   M (similar items)   elbow near M=50-60, flat after
Fig. 3   K (similar users)   best 20-40, worse beyond
Fig. 4   C (user clusters)   best ~30, degrades past 90
Fig. 6   lambda              U-shape, minimum ~0.8
Fig. 7   delta               minimum ~0.1, rising after
Fig. 8   w / epsilon         best 0.2-0.4
=======  ==================  ===========================
"""

from __future__ import annotations

import argparse

from repro.core import CFSFConfig
from repro.data import default_dataset, make_split
from repro.eval import ascii_plot, sweep_cfsf_parameter

SWEEPS = {
    "2": ("top_m_items", [10, 20, 30, 40, 50, 60, 70, 80, 90, 100], "M similar items"),
    "3": ("top_k_users", [10, 20, 30, 40, 50, 60, 70, 80, 90, 100], "K like-minded users"),
    "4": ("n_clusters", [10, 20, 30, 50, 70, 90, 100], "C user clusters"),
    "6": ("lam", [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0], "lambda"),
    "7": ("delta", [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0], "delta"),
    "8": ("epsilon", [0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95], "w (epsilon)"),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=sorted(SWEEPS), help="run one figure only")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--given", type=int, nargs="+", default=[5, 10, 20], help="GivenN variants to plot"
    )
    args = parser.parse_args()

    ratings = default_dataset(seed=args.seed)
    figures = [args.figure] if args.figure else sorted(SWEEPS)

    for fig in figures:
        parameter, values, label = SWEEPS[fig]
        series = {}
        for given_n in args.given:
            split = make_split(ratings, n_train_users=300, given_n=given_n, seed=args.seed)
            results = sweep_cfsf_parameter(split, parameter, values, base_config=CFSFConfig())
            series[f"Given{given_n}"] = [r.mae for _, r in results]
            best_v, best_r = min(results, key=lambda vr: vr[1].mae)
            print(f"Fig.{fig} {label:20s} Given{given_n}: best {parameter}={best_v} "
                  f"(MAE {best_r.mae:.4f})")
        print()
        print(ascii_plot([float(v) for v in values], series,
                         title=f"Fig. {fig}: MAE vs {label} over ML_300",
                         x_label=label))
        print()


if __name__ == "__main__":
    main()
