#!/usr/bin/env python
"""Fig. 5 reproduction: online response time vs test-set size.

    python examples/scalability_study.py                  # ~3 min
    python examples/scalability_study.py --batched        # seconds
    python examples/scalability_study.py --train 100 300

Fits CFSF and SCBPCC once per training prefix, then times the online
phase over growing fractions of the 200 test users — the experiment
behind the paper's Fig. 5.

Serving mode matters and both are shown:

* default (**per-request**): each prediction is an individual
  ``model.predict`` call, the paper's serving model.  CFSF answers
  from its cached per-user state over the local M x K matrix; SCBPCC
  re-scores the whole training population per request.  Expected:
  linear growth, CFSF several times faster, gap growing with the
  training size.
* ``--batched``: the vectorised ``predict_many`` API.  Batching
  amortises exactly the per-request search the paper measures, so the
  two methods converge — worth seeing once to understand why the
  benchmark insists on per-request timing.
"""

from __future__ import annotations

import argparse
import time

from repro.baselines import SCBPCC
from repro.core import CFSF
from repro.data import default_dataset, make_split, subsample_heldout
from repro.eval import ascii_plot, format_table, scalability_sweep


def serve_per_request(model, split) -> float:
    """Wall-clock of serving every held-out request one at a time."""
    users, items, _ = split.targets_arrays()
    start = time.perf_counter()
    for u, i in zip(users.tolist(), items.tolist()):
        model.predict(split.given, u, i)
    return time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--train", type=int, nargs="+", default=[300])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--fractions", type=float, nargs="+", default=[0.25, 0.5, 0.75, 1.0]
    )
    parser.add_argument(
        "--batched", action="store_true",
        help="time the vectorised batch API instead of per-request serving",
    )
    args = parser.parse_args()

    ratings = default_dataset(seed=args.seed)

    for n_train in args.train:
        split = make_split(ratings, n_train_users=n_train, given_n=20, seed=args.seed)
        if args.batched:
            sweep = scalability_sweep(
                split,
                {"CFSF": lambda: CFSF(), "SCBPCC": lambda: SCBPCC()},
                fractions=tuple(args.fractions),
                seed=args.seed,
                repeats=2,
            )
            series = {name: [t for _, t in pts] for name, pts in sweep.items()}
            mode = "batched predict_many"
        else:
            models = {"CFSF": CFSF().fit(split.train), "SCBPCC": SCBPCC().fit(split.train)}
            series = {name: [] for name in models}
            for frac in args.fractions:
                sub = subsample_heldout(split, frac, seed=args.seed)
                for name, model in models.items():
                    if hasattr(model, "_cache"):
                        model._cache.clear()
                    series[name].append(serve_per_request(model, sub))
            mode = "per-request serving"

        rows = []
        for idx, frac in enumerate(args.fractions):
            t_cfsf = series["CFSF"][idx]
            t_scb = series["SCBPCC"][idx]
            rows.append([f"{frac:.0%}", t_cfsf, t_scb, t_scb / t_cfsf])
        print(
            format_table(
                ["testset", "CFSF (s)", "SCBPCC (s)", "SCBPCC/CFSF"],
                rows,
                title=f"Online response time ({mode}), ML_{n_train}, Given20",
            )
        )
        print()
        print(
            ascii_plot(
                [f * 100 for f in args.fractions],
                series,
                title=f"Fig. 5 shape, ML_{n_train} ({mode})",
                x_label="% of the 200-user testset",
                y_label="seconds",
            )
        )
        print()


if __name__ == "__main__":
    main()
