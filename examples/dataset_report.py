#!/usr/bin/env python
"""Dataset diagnostics: is the evaluation data MovieLens-shaped?

    python examples/dataset_report.py

Prints Table I plus the structural diagnostics the synthetic generator
is calibrated against: the rating-value distribution, the popularity
long tail (Gini, top-10 share), user-activity spread, and the
popularity/quality coupling the paper's PCC-vs-cosine argument rests
on.  Run it against a real MovieLens file (drop ``u.data`` in a
search path; see ``repro.data.movielens.SEARCH_PATHS``) to compare.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.data import dataset_source, default_dataset, summarize
from repro.data.stats import activity_histogram, popularity_curve, rating_histogram
from repro.eval import ascii_plot, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    ratings = default_dataset(seed=args.seed)
    report = summarize(ratings)

    print(f"data source: {dataset_source(seed=args.seed)}")
    print(format_table(["statistic", "value"], report["table1"].as_rows(),
                       title="Table I"))
    print()

    hist = rating_histogram(ratings)
    total = sum(hist.values())
    print(format_table(
        ["rating", "count", "share"],
        [[k, v, f"{v / total:.1%}"] for k, v in hist.items()],
        title="Rating-value distribution",
    ))
    print()

    print(format_table(
        ["diagnostic", "value"],
        [
            ["popularity Gini", f"{report['popularity_gini']:.3f}"],
            ["top-10 items' rating share", f"{report['top10_item_share']:.1%}"],
            ["popularity/quality corr", f"{report['popularity_quality_corr']:.3f}"],
            ["median user activity", f"{report['median_user_activity']:.0f}"],
        ],
        title="Structural diagnostics",
    ))
    print()

    curve = popularity_curve(ratings)
    deciles = [float(c.mean()) for c in np.array_split(curve, 10)]
    print(ascii_plot(
        list(range(1, 11)),
        {"mean ratings/item": deciles},
        title="Popularity long tail (item deciles, most popular first)",
        x_label="item decile",
        y_label="ratings",
    ))
    print()

    edges, counts = activity_histogram(ratings)
    print(format_table(
        ["user activity bin", "users"],
        [[f"{edges[i]:.0f}-{edges[i+1]:.0f}", int(c)] for i, c in enumerate(counts)],
        title="User activity distribution",
    ))


if __name__ == "__main__":
    main()
