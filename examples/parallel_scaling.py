#!/usr/bin/env python
"""Parallel online prediction: the paper's Section VI future work.

    python examples/parallel_scaling.py
    python examples/parallel_scaling.py --workers 1 2 4 8

Fits CFSF once, then serves the full ML_300/Given10 request stream
through process pools of increasing size, reporting throughput and
verifying the parallel predictions are identical to the serial ones.
Also times the shared-memory tiled construction of the GIS
(offline-phase parallelism).

On a single-core host the pools only add overhead — the printout makes
that visible rather than hiding it; on a multi-core machine the online
phase scales with workers because active users are independent.
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.core import CFSF
from repro.data import default_dataset, make_split
from repro.eval import format_table
from repro.parallel import ParallelPredictor, parallel_item_pcc
from repro.similarity import item_pcc


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    ratings = default_dataset(seed=args.seed)
    split = make_split(ratings, n_train_users=300, given_n=10, seed=args.seed)
    users, items, _ = split.targets_arrays()
    print(f"host CPUs: {os.cpu_count()}, request stream: {len(users)} predictions")
    print()

    model = CFSF().fit(split.train)

    # --- online phase -------------------------------------------------
    start = time.perf_counter()
    serial = model.predict_many(split.given, users, items)
    serial_s = time.perf_counter() - start

    rows = [["serial", 1, serial_s, len(users) / serial_s, "-"]]
    for n in args.workers:
        if n == 1:
            continue
        with ParallelPredictor(model, n_workers=n) as pp:
            pp.predict_many(split.given, users[:50], items[:50])  # warm the pool
            start = time.perf_counter()
            par = pp.predict_many(split.given, users, items)
            par_s = time.perf_counter() - start
        identical = bool(np.allclose(serial, par))
        rows.append([f"pool", n, par_s, len(users) / par_s, str(identical)])
    print(
        format_table(
            ["mode", "workers", "seconds", "preds/s", "matches serial"],
            rows,
            title="Online phase (predict_many over the full test stream)",
        )
    )
    print()

    # --- offline phase -------------------------------------------------
    start = time.perf_counter()
    ref = item_pcc(split.train.values, split.train.mask)
    t_serial = time.perf_counter() - start
    rows = [["serial", 1, t_serial, "-"]]
    for n in args.workers:
        if n == 1:
            continue
        start = time.perf_counter()
        sim = parallel_item_pcc(split.train, n_workers=n)
        t_par = time.perf_counter() - start
        rows.append(["tiled pool", n, t_par, str(bool(np.allclose(ref, sim, atol=1e-12)))])
    print(
        format_table(
            ["mode", "workers", "seconds", "matches serial"],
            rows,
            title="Offline phase (GIS construction, shared-memory tiles)",
        )
    )


if __name__ == "__main__":
    main()
