#!/usr/bin/env python
"""Explainable predictions: why did CFSF score this item this way?

    python examples/explainable_recommendations.py
    python examples/explainable_recommendations.py --user 7 --top 5

Neighbourhood recommenders decompose into visible evidence; this
example fits CFSF, takes one active user's top recommendation, and
prints the full evidence chain: the fused components (SIR'/SUR'/SUIR'
with their Eq. 14 weights), the most similar items the user's own
ratings contributed through, and the like-minded users whose opinions
of the item carried the most weight.
"""

from __future__ import annotations

import argparse

from repro.core import CFSF, explain, recommend_top_n
from repro.data import default_dataset, make_split


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--user", type=int, default=0, help="active user row")
    parser.add_argument("--top", type=int, default=3, help="evidence depth")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    ratings = default_dataset(seed=args.seed)
    split = make_split(ratings, n_train_users=300, given_n=10, seed=args.seed)
    model = CFSF().fit(split.train)

    rec = recommend_top_n(model, split.given, args.user, n=3)
    print(f"top recommendations for active user {args.user}: "
          + ", ".join(f"item {i} ({s:.2f})" for i, s in rec.as_pairs()))
    print()

    best_item = int(rec.items[0])
    explanation = explain(model, split.given, args.user, best_item, top_n=args.top)
    print(explanation.render())
    print()

    # The user's own given profile, for context.
    idx, vals = split.given.user_profile(args.user)
    profile = ", ".join(f"{i}:{v:.0f}" for i, v in zip(idx.tolist(), vals.tolist()))
    print(f"(the user's given profile: {profile})")


if __name__ == "__main__":
    main()
