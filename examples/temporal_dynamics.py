#!/usr/bin/env python
"""Time-decayed ratings (Section VI: "dates associated with the ratings").

    python examples/temporal_dynamics.py

Builds a dataset whose early ratings are uninformative (a cold-start /
taste-exploration era), evaluates recommenders on the most recent
ratings, and shows that exponentially decaying the stale deviations
toward each user's mean improves accuracy — the scenario the temporal
extension targets.  Also sweeps the half-life to show the trade-off:
too aggressive a decay erases still-valid history.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import ItemBasedCF, UserBasedCF
from repro.core import apply_time_decay
from repro.data import RatingMatrix, SyntheticConfig, make_movielens_like
from repro.eval import format_table, mae


def build_noise_era_dataset(seed: int):
    """MovieLens-shaped data whose oldest third of ratings is noise."""
    rng = np.random.default_rng(seed)
    ds = make_movielens_like(SyntheticConfig(), seed=seed)
    rm = ds.ratings
    times = np.zeros(rm.shape)
    times[rm.mask] = rng.uniform(0.0, 1.0, size=rm.n_ratings)
    values = rm.values.copy()
    noise_era = rm.mask & (times < 0.33)
    values[noise_era] = rng.integers(1, 6, size=int(noise_era.sum()))
    return RatingMatrix(values, rm.mask), times, rm


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    corrupted, times, clean = build_noise_era_dataset(args.seed)
    target_mask = clean.mask & (times > 0.85)
    train_mask = corrupted.mask & ~target_mask
    train = RatingMatrix(np.where(train_mask, corrupted.values, 0.0), train_mask)
    users, items = np.nonzero(target_mask)
    truth = clean.values[users, items]
    print(f"training ratings: {train.n_ratings}, targets (recent era): {len(users)}")
    print()

    rows = []
    for half_life in (None, 1.0, 0.5, 0.2, 0.1, 0.05):
        if half_life is None:
            matrix, label = train, "no decay"
        else:
            matrix = apply_time_decay(train, times, now=1.0, half_life=half_life)
            label = f"half-life {half_life}"
        m_item = mae(
            truth,
            ItemBasedCF(adjust_item_means=True).fit(matrix).predict_many(matrix, users, items),
        )
        m_user = mae(truth, UserBasedCF().fit(matrix).predict_many(matrix, users, items))
        rows.append([label, m_item, m_user])

    print(
        format_table(
            ["training matrix", "item-based MAE", "user-based MAE"],
            rows,
            title="Accuracy on recent ratings when the oldest era is noise",
        )
    )
    print()
    print(
        "Reading: moderate decay discounts the noise era and improves both\n"
        "methods; an extreme half-life also flattens valid history and the\n"
        "gain reverses — the half-life is a data-dependent knob."
    )


if __name__ == "__main__":
    main()
