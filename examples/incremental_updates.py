#!/usr/bin/env python
"""Keeping the GIS up-to-date under a rating stream (Section VI).

    python examples/incremental_updates.py
    python examples/incremental_updates.py --stream 5000

Simulates a live recommender: a fitted GIS receives a stream of new
ratings (plus occasional retractions and a new-user fold-in) and must
keep serving top-M item neighbourhoods.  Compares:

* **rebuild** — recompute the full item-similarity matrix after every
  batch (what the paper's offline phase would do), vs
* **incremental** — exact sufficient-statistic updates
  (:class:`repro.core.IncrementalGIS`), O(|I_u|) per rating.

Both produce the same similarities (the incremental path is exact, not
approximate); the printout shows the wall-clock gap and verifies the
maximum similarity deviation.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import IncrementalGIS
from repro.data import default_dataset
from repro.eval import format_table
from repro.similarity import pairwise_pcc


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stream", type=int, default=2000, help="ratings in the stream")
    parser.add_argument("--batch", type=int, default=200, help="rebuild cadence")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    ratings = default_dataset(seed=args.seed).subset_users(range(300))
    print(f"base matrix: {ratings}")

    gis = IncrementalGIS(ratings)
    events = []
    for _ in range(args.stream):
        u = int(rng.integers(0, gis.n_users))
        i = int(rng.integers(0, gis.n_items))
        if gis.matrix().mask[u, i] and rng.random() < 0.1:
            events.append(("remove", u, i, 0.0))
        else:
            events.append(("add", u, i, float(rng.integers(1, 6))))

    # --- incremental ----------------------------------------------------
    start = time.perf_counter()
    for kind, u, i, r in events:
        if kind == "add":
            gis.add_rating(u, i, r)
        else:
            gis.remove_rating(u, i)
    # a new user walks in mid-stream
    gis.add_user(np.arange(10), rng.integers(1, 6, size=10).astype(float))
    t_inc = time.perf_counter() - start

    # --- rebuild-per-batch ----------------------------------------------
    snapshot = gis.matrix()
    n_rebuilds = max(1, args.stream // args.batch)
    start = time.perf_counter()
    for _ in range(n_rebuilds):
        pairwise_pcc(snapshot.values, snapshot.mask, centering="corated_mean")
    t_rebuild = time.perf_counter() - start

    # --- verify exactness -------------------------------------------------
    ref = pairwise_pcc(snapshot.values, snapshot.mask, centering="corated_mean")
    got = np.vstack([gis.sim_row(j) for j in range(gis.n_items)])
    max_dev = float(np.abs(ref - got).max())

    print()
    print(
        format_table(
            ["strategy", "events", "seconds", "per event (ms)"],
            [
                ["incremental (exact)", args.stream + 1, t_inc, t_inc / args.stream * 1e3],
                [
                    f"rebuild every {args.batch}",
                    args.stream,
                    t_rebuild,
                    t_rebuild / args.stream * 1e3,
                ],
            ],
            title="GIS maintenance under a rating stream",
        )
    )
    print()
    print(f"max |incremental - rebuilt| similarity deviation: {max_dev:.2e}")
    print(f"speedup at this stream/batch shape: {t_rebuild / t_inc:.1f}x")
    idx, sims = gis.top_m(0, 10)
    print(f"live top-10 neighbours of item 0: {idx.tolist()}")


if __name__ == "__main__":
    main()
