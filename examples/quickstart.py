#!/usr/bin/env python
"""Quickstart: fit CFSF on MovieLens-shaped data and predict ratings.

Runs in a few seconds::

    python examples/quickstart.py

What it shows
-------------
1. Getting the evaluation dataset (a real MovieLens file if one is on
   disk, the calibrated synthetic generator otherwise).
2. Building the paper's experimental split (train prefix + GivenN
   active users).
3. Fitting CFSF (the offline phase) and predicting held-out ratings
   (the online phase).
4. Comparing MAE against the trivial mean predictors — the sanity
   floor any recommender must clear.
"""

from __future__ import annotations

from repro.baselines import MeanPredictor
from repro.core import CFSF
from repro.data import dataset_source, default_dataset, make_split
from repro.eval import evaluate, format_table


def main() -> None:
    # 1. Data: 500 users x 1000 items at MovieLens sparsity.
    ratings = default_dataset(seed=0)
    print(f"dataset source: {dataset_source(seed=0)}")
    print(f"dataset: {ratings}")
    print()

    # 2. The paper's protocol: train on the first 300 users, test on
    #    the last 200, revealing 10 ratings per active user.
    split = make_split(ratings, n_train_users=300, given_n=10, seed=0)
    print(f"split: {split.name} with {split.n_targets} held-out ratings")
    print()

    # 3 + 4. Fit, predict, compare.
    rows = []
    for model in (
        CFSF(),                      # paper defaults: C=30, M=95, K=25, ...
        MeanPredictor("user_item"),
        MeanPredictor("item"),
        MeanPredictor("global"),
    ):
        result = evaluate(model, split)
        rows.append(
            [model.name, result.mae, result.rmse, result.fit_seconds, result.predict_seconds]
        )
    print(
        format_table(
            ["method", "MAE", "RMSE", "fit (s)", "predict (s)"],
            rows,
            title=f"Results on {split.name}",
        )
    )
    print()

    # Bonus: a single online request, the way a recommender would
    # serve it.
    model = CFSF().fit(split.train)
    user, item = 0, 42
    score = model.predict(split.given, user, item)
    detail = model.predict_one_detailed(split.given, user, item)
    print(f"prediction for active user {user}, item {item}: {score:.2f}")
    print(
        f"  components: SIR'={detail.sir:.2f}  SUR'={detail.sur:.2f} "
        f" SUIR'={detail.suir:.2f}  (fused with lambda=0.8, delta=0.1)"
    )


if __name__ == "__main__":
    main()
