"""GIS — the Global Item Similarity matrix (Section IV-B, Eq. 5).

The first offline step of CFSF computes the PCC between every pair of
items over the whole training matrix, optionally filters entries below
a threshold ("the size of GIS will be greatly reduced"), and *sorts
each item's neighbours in descending order* so that the online phase
can "directly pick up the top M similar items" (Section IV-E.1) in
O(M) instead of O(Q log Q) per request.

The class also carries the sufficient statistics needed by the
incremental-maintenance extension (:mod:`repro.core.incremental`) to
fold in new ratings without a full recompute — the paper's Section VI
names "how it can keep GIS up-to-date" as future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.matrix import RatingMatrix
from repro.obs import span
from repro.similarity import Centering, apply_threshold, item_pcc
from repro.utils.validation import check_positive_int

__all__ = ["GlobalItemSimilarity", "build_gis"]


@dataclass
class GlobalItemSimilarity:
    """The GIS: item–item similarities plus descending neighbour lists.

    Attributes
    ----------
    sim:
        ``(Q, Q)`` thresholded similarity matrix (diagonal = 1).
    neighbours:
        ``(Q, Q-1)`` item indices, each row sorted by descending
        similarity to the row item (self excluded).  ``top_m`` slices
        this, so per-request selection is O(M).
    threshold:
        The |similarity| filter that was applied (0.0 = none).
    centering:
        PCC centering convention used to build ``sim``.
    """

    sim: np.ndarray = field(repr=False)
    neighbours: np.ndarray = field(repr=False)
    threshold: float
    centering: Centering

    @property
    def n_items(self) -> int:
        """Number of items ``Q``."""
        return self.sim.shape[0]

    def top_m(self, item: int, m: int) -> tuple[np.ndarray, np.ndarray]:
        """The paper's "top M similar items" for an active item.

        Returns ``(indices, similarities)`` of the ``m`` most similar
        items, descending, excluding the item itself and excluding
        neighbours whose (thresholded) similarity is not positive —
        a non-positively-correlated "similar item" would contribute
        noise with a negative or zero fusion weight.

        Notes
        -----
        The slice may be shorter than ``m`` when fewer positive
        neighbours exist (heavy thresholds, cold items).
        """
        check_positive_int(m, "m")
        if not 0 <= item < self.n_items:
            raise ValueError(f"item {item} out of range [0, {self.n_items})")
        cand = self.neighbours[item, : min(m, self.neighbours.shape[1])]
        sims = self.sim[item, cand]
        keep = sims > 0.0
        return cand[keep], sims[keep]

    def sparsity(self) -> float:
        """Fraction of off-diagonal entries zeroed by the threshold."""
        Q = self.n_items
        off = Q * (Q - 1)
        if off == 0:
            return 0.0
        nz = np.count_nonzero(self.sim) - Q  # minus the unit diagonal
        return 1.0 - nz / off

    def memory_bytes(self) -> int:
        """Approximate resident size (sim + neighbour lists)."""
        return int(self.sim.nbytes + self.neighbours.nbytes)


def build_gis(
    train: RatingMatrix,
    *,
    threshold: float = 0.0,
    centering: Centering = "global_mean",
    min_overlap: int = 2,
) -> GlobalItemSimilarity:
    """Offline step 1: compute, threshold, and sort the GIS.

    Parameters
    ----------
    train:
        Training matrix.
    threshold:
        Zero out |similarities| below this (Section IV-B's filter).
    centering, min_overlap:
        Threaded through to :func:`repro.similarity.item_pcc`.

    Examples
    --------
    >>> from repro.data import make_movielens_like
    >>> gis = build_gis(make_movielens_like(seed=0).ratings)
    >>> idx, sims = gis.top_m(0, 95)
    >>> bool((sims[:-1] >= sims[1:]).all())   # descending
    True
    """
    with span("gis.build", n_items=train.n_items, threshold=threshold) as sp:
        sim = item_pcc(train.values, train.mask, centering=centering, min_overlap=min_overlap)
        sim = apply_threshold(sim, threshold)
        # Descending argsort per row with self excluded.  `stable` keeps
        # deterministic output under ties (common after thresholding).
        Q = sim.shape[0]
        masked = sim.copy()
        np.fill_diagonal(masked, -np.inf)
        order = np.argsort(-masked, axis=1, kind="stable")[:, : Q - 1]
        gis = GlobalItemSimilarity(
            sim=sim,
            neighbours=order.astype(np.intp),
            threshold=float(threshold),
            centering=centering,
        )
        sp.set(sparsity=gis.sparsity())
        return gis
