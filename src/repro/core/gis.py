"""GIS — the Global Item Similarity matrix (Section IV-B, Eq. 5).

The first offline step of CFSF computes the PCC between every pair of
items over the whole training matrix, optionally filters entries below
a threshold ("the size of GIS will be greatly reduced"), and *sorts
each item's neighbours in descending order* so that the online phase
can "directly pick up the top M similar items" (Section IV-E.1) in
O(M) instead of O(Q log Q) per request.

The class also carries the sufficient statistics needed by the
incremental-maintenance extension (:mod:`repro.core.incremental`) to
fold in new ratings without a full recompute — the paper's Section VI
names "how it can keep GIS up-to-date" as future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.matrix import RatingMatrix
from repro.obs import span
from repro.similarity import Centering, apply_threshold, item_pcc
from repro.utils.validation import check_positive_int

__all__ = ["GlobalItemSimilarity", "NeighborCache", "build_gis", "build_neighbor_cache"]


@dataclass
class NeighborCache:
    """Precomputed per-item top-M neighbourhoods (the online hot path).

    ``top_m`` on the full GIS slices a ``(Q, Q-1)`` index matrix and
    gathers similarities from the dense ``(Q, Q)`` similarity matrix on
    every request.  This cache freezes the result of that selection at
    build time into compact ``int32``/``float32`` arrays so the online
    phase — and the snapshot a serving fleet ships around — touches
    ``O(Q·M)`` memory instead of ``O(Q²)``.

    Attributes
    ----------
    indices:
        ``(Q, M)`` ``int32`` neighbour item ids per row, descending
        similarity, zero-padded past ``counts[item]``.
    sims32:
        ``(Q, M)`` ``float32`` similarities aligned with ``indices``,
        zero-padded.  These rounded values are the *canonical* ones:
        every online path reads the same float64 upcast (``sims``), so
        scalar and batched predictions agree bit-for-bit and a model
        restored from a snapshot serves exactly what the builder did.
    counts:
        ``(Q,)`` ``int32`` number of valid (positive-similarity)
        neighbours per item.
    m:
        The configured neighbourhood size ``M``.
    """

    indices: np.ndarray = field(repr=False)
    sims32: np.ndarray = field(repr=False)
    counts: np.ndarray = field(repr=False)
    m: int

    def __post_init__(self) -> None:
        # Derived float64 views used by the fusion kernels; computed once
        # here so save/load round-trips stay deterministic.
        self.sims = self.sims32.astype(np.float64)
        self.sims_sq = self.sims * self.sims

    @property
    def n_items(self) -> int:
        """Number of items ``Q``."""
        return self.indices.shape[0]

    def top_m(self, item: int, m: int) -> tuple[np.ndarray, np.ndarray]:
        """Cached equivalent of :meth:`GlobalItemSimilarity.top_m`.

        Valid for any ``m <= self.m`` (rows are sorted descending, so a
        shorter prefix is exactly the smaller selection).
        """
        if m > self.m:
            raise ValueError(f"cache holds top-{self.m} neighbours, asked for {m}")
        count = min(int(self.counts[item]), m)
        return (
            self.indices[item, :count].astype(np.intp),
            self.sims[item, :count],
        )

    def narrowed(self, m: int) -> "NeighborCache":
        """A width-``m`` cache sharing this one's values (``m <= self.m``).

        Rows are descending, so the prefix slice *is* the smaller
        selection — used when a kernel needs exactly ``m`` columns but
        a wider cache is already attached.
        """
        if m == self.m:
            return self
        if m > self.m:
            raise ValueError(f"cache holds top-{self.m} neighbours, asked for {m}")
        return NeighborCache(
            indices=np.ascontiguousarray(self.indices[:, :m]),
            sims32=np.ascontiguousarray(self.sims32[:, :m]),
            counts=np.minimum(self.counts, np.int32(m)),
            m=int(m),
        )

    def memory_bytes(self) -> int:
        """Resident size of the persisted arrays (excludes f64 upcasts)."""
        return int(self.indices.nbytes + self.sims32.nbytes + self.counts.nbytes)


def build_neighbor_cache(gis: "GlobalItemSimilarity", m: int) -> NeighborCache:
    """Materialise every item's top-``m`` positive neighbours.

    The GIS rows are already sorted descending, so the positive entries
    form a prefix of each row; the cache is a slice + gather, padded
    with zeros (a zero similarity carries zero fusion weight, which is
    arithmetically identical to exclusion).
    """
    check_positive_int(m, "m")
    m_eff = min(m, gis.neighbours.shape[1])
    indices = gis.neighbours[:, :m_eff].astype(np.int32)
    if m_eff < m:  # tiny catalogues: pad out to the requested width
        pad = np.zeros((gis.n_items, m - m_eff), dtype=np.int32)
        indices = np.concatenate([indices, pad], axis=1)
    sims = np.take_along_axis(gis.sim, indices.astype(np.intp), axis=1)
    if m_eff < m:
        sims[:, m_eff:] = 0.0
    sims32 = np.maximum(sims, 0.0).astype(np.float32)
    valid = sims32 > 0.0
    counts = valid.sum(axis=1, dtype=np.int32)
    sims32[~valid] = 0.0
    indices = np.where(valid, indices, 0).astype(np.int32)
    return NeighborCache(indices=indices, sims32=sims32, counts=counts, m=int(m))


@dataclass
class GlobalItemSimilarity:
    """The GIS: item–item similarities plus descending neighbour lists.

    Attributes
    ----------
    sim:
        ``(Q, Q)`` thresholded similarity matrix (diagonal = 1).
    neighbours:
        ``(Q, Q-1)`` item indices, each row sorted by descending
        similarity to the row item (self excluded).  ``top_m`` slices
        this, so per-request selection is O(M).
    threshold:
        The |similarity| filter that was applied (0.0 = none).
    centering:
        PCC centering convention used to build ``sim``.
    """

    sim: np.ndarray = field(repr=False)
    neighbours: np.ndarray = field(repr=False)
    threshold: float
    centering: Centering
    #: Optional precomputed top-M cache (see :class:`NeighborCache`).
    #: When attached, ``top_m`` serves eligible requests from it so the
    #: scalar and batched online paths read identical similarity values.
    cache: NeighborCache | None = field(default=None, repr=False, compare=False)

    @property
    def n_items(self) -> int:
        """Number of items ``Q``."""
        return self.sim.shape[0]

    def attach_cache(self, m: int) -> NeighborCache:
        """Build (or reuse) a :class:`NeighborCache` of width ``m``."""
        if self.cache is None or self.cache.m < m:
            self.cache = build_neighbor_cache(self, m)
        return self.cache

    def top_m(self, item: int, m: int) -> tuple[np.ndarray, np.ndarray]:
        """The paper's "top M similar items" for an active item.

        Returns ``(indices, similarities)`` of the ``m`` most similar
        items, descending, excluding the item itself and excluding
        neighbours whose (thresholded) similarity is not positive —
        a non-positively-correlated "similar item" would contribute
        noise with a negative or zero fusion weight.

        When a :class:`NeighborCache` is attached and covers ``m``, the
        selection is a cached array slice instead of a gather over the
        full similarity row.

        Notes
        -----
        The slice may be shorter than ``m`` when fewer positive
        neighbours exist (heavy thresholds, cold items).
        """
        check_positive_int(m, "m")
        if not 0 <= item < self.n_items:
            raise ValueError(f"item {item} out of range [0, {self.n_items})")
        if self.cache is not None and m <= self.cache.m:
            return self.cache.top_m(item, m)
        cand = self.neighbours[item, : min(m, self.neighbours.shape[1])]
        sims = self.sim[item, cand]
        keep = sims > 0.0
        return cand[keep], sims[keep]

    def sparsity(self) -> float:
        """Fraction of off-diagonal entries zeroed by the threshold."""
        Q = self.n_items
        off = Q * (Q - 1)
        if off == 0:
            return 0.0
        nz = np.count_nonzero(self.sim) - Q  # minus the unit diagonal
        return 1.0 - nz / off

    def memory_bytes(self) -> int:
        """Approximate resident size (sim + neighbour lists)."""
        return int(self.sim.nbytes + self.neighbours.nbytes)


def build_gis(
    train: RatingMatrix,
    *,
    threshold: float = 0.0,
    centering: Centering = "global_mean",
    min_overlap: int = 2,
) -> GlobalItemSimilarity:
    """Offline step 1: compute, threshold, and sort the GIS.

    Parameters
    ----------
    train:
        Training matrix.
    threshold:
        Zero out |similarities| below this (Section IV-B's filter).
    centering, min_overlap:
        Threaded through to :func:`repro.similarity.item_pcc`.

    Examples
    --------
    >>> from repro.data import make_movielens_like
    >>> gis = build_gis(make_movielens_like(seed=0).ratings)
    >>> idx, sims = gis.top_m(0, 95)
    >>> bool((sims[:-1] >= sims[1:]).all())   # descending
    True
    """
    with span("gis.build", n_items=train.n_items, threshold=threshold) as sp:
        sim = item_pcc(train.values, train.mask, centering=centering, min_overlap=min_overlap)
        sim = apply_threshold(sim, threshold)
        # Descending argsort per row with self excluded.  `stable` keeps
        # deterministic output under ties (common after thresholding).
        Q = sim.shape[0]
        masked = sim.copy()
        np.fill_diagonal(masked, -np.inf)
        order = np.argsort(-masked, axis=1, kind="stable")[:, : Q - 1]
        gis = GlobalItemSimilarity(
            sim=sim,
            neighbours=order.astype(np.intp),
            threshold=float(threshold),
            centering=centering,
        )
        sp.set(sparsity=gis.sparsity())
        return gis
