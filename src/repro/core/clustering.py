"""K-means user clustering under PCC similarity (Section IV-C, Eq. 6).

CFSF clusters users "to eliminate the diversity in user ratings" and to
accelerate like-minded-user selection.  The paper specifies K-means
with the PCC of Eq. 6 as the (dis)similarity: each user is assigned to
the cluster whose centroid is *most similar* (K-means' objective is
stated as minimising ``Σ_i Σ_{u_j ∈ C_i} sim|u_j − ū|``).

Centroids are dense item vectors: "The feature of a user cluster is
denoted as a centroid that represents an average rating over all users
in the cluster" (Section IV-D).  An item no member has rated gets the
cluster's mean rating so that centroid vectors are fully dense and the
user-to-centroid PCC is well-defined for any user profile.

Implementation notes
--------------------
* Assignment is one :func:`repro.similarity.pcc_to_rows` call per
  iteration — an ``(P, L)`` masked-Gram product, no Python-level
  distance loops.
* Centroid update is a one-hot matrix product (``(L, P) @ (P, Q)``).
* Empty clusters are reseeded with the users *least similar* to their
  current centroid (the standard farthest-point repair), keeping
  exactly ``L`` non-empty clusters, which the smoothing stage assumes.
* Convergence: labels unchanged, or ``max_iter`` reached.  Each
  iteration is linear in the number of ratings, as the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.matrix import RatingMatrix
from repro.obs import span
from repro.similarity import Centering, pcc_to_rows
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["UserClusters", "cluster_users"]


@dataclass(frozen=True)
class UserClusters:
    """Result of :func:`cluster_users`.

    Attributes
    ----------
    labels:
        ``(P,)`` cluster index per training user.
    centroids:
        ``(L, Q)`` dense centroid rating vectors.
    similarities:
        ``(P, L)`` final user-to-centroid PCC matrix (reused by the
        iCluster step so it is not recomputed).
    n_iter:
        Iterations actually run.
    converged:
        Whether labels stabilised before ``max_iter``.
    """

    labels: np.ndarray
    centroids: np.ndarray
    similarities: np.ndarray = field(repr=False)
    n_iter: int
    converged: bool

    @property
    def n_clusters(self) -> int:
        """Number of clusters ``L``."""
        return self.centroids.shape[0]

    def members(self, cluster: int) -> np.ndarray:
        """Indices of the users assigned to *cluster*."""
        if not 0 <= cluster < self.n_clusters:
            raise ValueError(f"cluster {cluster} out of range [0, {self.n_clusters})")
        return np.nonzero(self.labels == cluster)[0]

    def sizes(self) -> np.ndarray:
        """``(L,)`` member counts."""
        return np.bincount(self.labels, minlength=self.n_clusters)

    def objective(self) -> float:
        """Mean similarity of users to their assigned centroid.

        The quantity K-means maximises here (the paper states the
        minimisation of dissimilarity equivalently); useful for tests
        asserting monotone improvement.
        """
        return float(self.similarities[np.arange(len(self.labels)), self.labels].mean())


def _compute_centroids(
    train: RatingMatrix, labels: np.ndarray, n_clusters: int
) -> np.ndarray:
    """Per-cluster, per-item mean rating, densified with cluster means."""
    onehot = np.zeros((n_clusters, train.n_users), dtype=np.float64)
    onehot[labels, np.arange(train.n_users)] = 1.0
    sums = onehot @ train.values  # (L, Q)
    counts = onehot @ train.mask.astype(np.float64)
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1.0), 0.0)
    # Fill items unrated by a cluster with the cluster's own mean so
    # the centroid is dense (global mean if the cluster is empty —
    # callers repair empties before using centroids).
    cluster_totals = sums.sum(axis=1)
    cluster_counts = counts.sum(axis=1)
    global_mean = train.global_mean()
    with np.errstate(invalid="ignore"):
        cluster_means = np.where(
            cluster_counts > 0, cluster_totals / np.maximum(cluster_counts, 1.0), global_mean
        )
    return np.where(counts > 0, means, cluster_means[:, None])


def cluster_users(
    train: RatingMatrix,
    n_clusters: int,
    *,
    seed: int | np.random.Generator | None = 0,
    max_iter: int = 30,
    centering: Centering = "global_mean",
    min_overlap: int = 2,
) -> UserClusters:
    """Cluster training users by rating-profile PCC.

    Parameters
    ----------
    train:
        Training rating matrix (users x items).
    n_clusters:
        The paper's ``C``.  Clamped to ``n_users`` when larger (every
        user its own cluster — smoothing then degenerates gracefully to
        user means, which the Fig. 4 sweep exercises at its right end).
    seed, max_iter:
        K-means initialisation seed and iteration cap.
    centering, min_overlap:
        PCC options threaded through to the similarity kernel.

    Returns
    -------
    UserClusters

    Examples
    --------
    >>> from repro.data import make_movielens_like
    >>> ds = make_movielens_like(seed=0)
    >>> clusters = cluster_users(ds.ratings, 30, seed=0)
    >>> clusters.labels.shape
    (500,)
    >>> int(clusters.sizes().min()) >= 1
    True
    """
    with span("cluster.fit", n_clusters=n_clusters, max_iter=max_iter) as sp:
        clusters = _cluster_users_impl(
            train,
            n_clusters,
            seed=seed,
            max_iter=max_iter,
            centering=centering,
            min_overlap=min_overlap,
        )
        sp.set(n_iter=clusters.n_iter, converged=clusters.converged)
        return clusters


def _cluster_users_impl(
    train: RatingMatrix,
    n_clusters: int,
    *,
    seed: int | np.random.Generator | None,
    max_iter: int,
    centering: Centering,
    min_overlap: int,
) -> UserClusters:
    """The K-means loop behind :func:`cluster_users`."""
    check_positive_int(n_clusters, "n_clusters")
    check_positive_int(max_iter, "max_iter")
    rng = as_generator(seed)
    P = train.n_users
    L = min(n_clusters, P)

    # Initialise centroids from L distinct random users.
    seeds = rng.choice(P, size=L, replace=False)
    labels = np.full(P, -1, dtype=np.intp)
    labels[seeds] = np.arange(L)
    centroids = train.values[seeds].copy()
    # Densify seed centroids with the seeds' own means.
    seed_counts = train.mask[seeds].sum(axis=1)
    seed_means = np.where(
        seed_counts > 0,
        train.values[seeds].sum(axis=1) / np.maximum(seed_counts, 1),
        train.global_mean(),
    )
    centroids = np.where(train.mask[seeds], centroids, seed_means[:, None])

    ones_mask = np.ones_like(centroids, dtype=bool)
    sims = np.zeros((P, L), dtype=np.float64)
    converged = False
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        sims = pcc_to_rows(
            train.values,
            train.mask,
            centroids,
            ones_mask,
            centering=centering,
            min_overlap=min_overlap,
        )
        new_labels = np.argmax(sims, axis=1)

        # Repair empty clusters: steal the user least similar to its
        # own centroid (ties broken by index), one per empty cluster.
        counts = np.bincount(new_labels, minlength=L)
        empties = np.nonzero(counts == 0)[0]
        if empties.size:
            own_sim = sims[np.arange(P), new_labels].copy()
            for c in empties:
                # Do not steal from singleton clusters.
                sizes = np.bincount(new_labels, minlength=L)
                candidates = np.nonzero(sizes[new_labels] > 1)[0]
                worst = candidates[np.argmin(own_sim[candidates])]
                new_labels[worst] = c
                own_sim[worst] = np.inf

        if np.array_equal(new_labels, labels):
            converged = True
            labels = new_labels
            break
        labels = new_labels
        centroids = _compute_centroids(train, labels, L)
        ones_mask = np.ones_like(centroids, dtype=bool)

    centroids = _compute_centroids(train, labels, L)
    sims = pcc_to_rows(
        train.values,
        train.mask,
        centroids,
        np.ones_like(centroids, dtype=bool),
        centering=centering,
        min_overlap=min_overlap,
    )
    return UserClusters(
        labels=labels,
        centroids=centroids,
        similarities=sims,
        n_iter=n_iter,
        converged=converged,
    )
