"""Top-N recommendation on top of rating prediction.

The paper evaluates rating-prediction MAE, but the product surface of
the systems it cites (Amazon, Yahoo! Music) is a *ranked item list*.
This module turns any :class:`~repro.baselines.base.Recommender` into a
top-N recommender: score every candidate item for an active user and
return the best N, excluding items the user already rated.

Ranking quality is measured with the metrics in
:mod:`repro.eval.metrics` (precision/recall@N, NDCG@N); see
``tests/test_recommend.py`` and the ranking section of the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import Recommender
from repro.data.matrix import RatingMatrix
from repro.utils.validation import check_positive_int

__all__ = ["Recommendation", "recommend_top_n", "recommend_for_all"]


@dataclass(frozen=True)
class Recommendation:
    """A ranked recommendation list for one active user."""

    user: int
    items: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return len(self.items)

    def as_pairs(self) -> list[tuple[int, float]]:
        """``[(item, score), ...]`` best first."""
        return list(zip(self.items.tolist(), self.scores.tolist()))


def recommend_top_n(
    model: Recommender,
    given: RatingMatrix,
    user: int,
    n: int = 10,
    *,
    exclude_given: bool = True,
    candidate_items: np.ndarray | None = None,
) -> Recommendation:
    """Rank the best *n* items for one active user.

    Parameters
    ----------
    model:
        A fitted recommender.
    given:
        Active users' revealed profiles (``user`` indexes its rows).
    n:
        List length.
    exclude_given:
        Drop items the user has already rated (the default; a
        recommender that re-recommends your own history is useless).
    candidate_items:
        Restrict scoring to these items (e.g. in-stock items); default
        is the full catalogue.

    Notes
    -----
    Scoring cost is one ``predict_many`` over the candidate set —
    for CFSF that reuses the cached per-user state, so a full-catalogue
    ranking costs the same as the Fig. 5 workload for one user.
    """
    check_positive_int(n, "n")
    if not 0 <= user < given.n_users:
        raise ValueError(f"user {user} out of range [0, {given.n_users})")
    if candidate_items is None:
        candidates = np.arange(given.n_items, dtype=np.intp)
    else:
        candidates = np.asarray(candidate_items, dtype=np.intp)
        if candidates.size and (candidates.min() < 0 or candidates.max() >= given.n_items):
            raise ValueError("candidate item index out of range")
    if exclude_given:
        candidates = candidates[~given.mask[user, candidates]]
    if candidates.size == 0:
        return Recommendation(user=user, items=candidates, scores=np.empty(0))

    scores = model.predict_many(
        given, np.full(candidates.shape, user, dtype=np.intp), candidates
    )
    k = min(n, candidates.size)
    part = np.argpartition(-scores, k - 1)[:k]
    order = part[np.argsort(-scores[part], kind="stable")]
    return Recommendation(user=user, items=candidates[order], scores=scores[order])


def recommend_for_all(
    model: Recommender,
    given: RatingMatrix,
    n: int = 10,
    *,
    exclude_given: bool = True,
) -> list[Recommendation]:
    """Top-N lists for every active user row of *given*."""
    return [
        recommend_top_n(model, given, user, n, exclude_given=exclude_given)
        for user in range(given.n_users)
    ]
