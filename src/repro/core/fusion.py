"""Fusing SIR', SUR' and SUIR' over the local matrix (Eqs. 12–14).

The three local predictors:

* ``SIR'`` — the active user's own (given or smoothed) ratings on the
  top-M similar items, weighted by item similarity and Eq. 11's ε::

      SIR' = Σ_s w·sim(i_s, i_a)·r(u_b, i_s) / Σ_s w·sim(i_s, i_a)

* ``SUR'`` — the top-K users' (smoothed) ratings on the active item,
  mean-offset as in Resnick::

      SUR' = r̄_b + Σ_t w·sim(u_t, u_b)·(r(u_t, i_a) − r̄_t)
                    / Σ_t w·sim(u_t, u_b)

* ``SUIR'`` — every (similar item, like-minded user) cell of the local
  matrix, weighted by the pair similarity of Eq. 13::

      sim((i_s,i_a),(u_t,u_b)) = sim_i · sim_u / sqrt(sim_i² + sim_u²)

and the fusion (Eq. 14)::

    SR' = (1−δ)(1−λ)·SIR' + (1−δ)·λ·SUR' + δ·SUIR'

``λ`` balances the two single-source predictors (the paper finds
SUR' more valuable: optimum λ ≈ 0.8) and ``δ`` admits the cross-source
SUIR' as a light supplement (optimum ≈ 0.1).

Degenerate components (empty neighbourhood or zero total weight) fall
back to the active user's mean so the convex combination stays within
the rating scale; the per-component availability is reported so
ablation benchmarks can count fallbacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.gis import NeighborCache
from repro.core.local_matrix import LocalMatrix
from repro.core.smoothing import SmoothedRatings
from repro.utils.validation import check_fraction

__all__ = [
    "FusedPrediction",
    "FusionKernel",
    "PreparedActiveUser",
    "fuse",
    "fusion_weights",
    "pair_similarity",
]


@dataclass(frozen=True)
class FusedPrediction:
    """One fused prediction with its components (for ablations).

    ``sir``, ``sur`` and ``suir`` are the component predictions (each
    already falls back to the active-user mean when its neighbourhood
    is degenerate); ``value`` is Eq. 14's combination.
    """

    value: float
    sir: float
    sur: float
    suir: float
    sir_ok: bool
    sur_ok: bool
    suir_ok: bool


def fusion_weights(lam: float, delta: float) -> tuple[float, float, float]:
    """Eq. 14's convex weights ``(w_sir, w_sur, w_suir)``.

    They always sum to 1, so the fused prediction is a convex
    combination of the components (property-tested).
    """
    check_fraction(lam, "lam")
    check_fraction(delta, "delta")
    return (1.0 - delta) * (1.0 - lam), (1.0 - delta) * lam, delta


def pair_similarity(item_sims: np.ndarray, user_sims: np.ndarray) -> np.ndarray:
    """Eq. 13 for all (item, user) pairs: ``(K, M)`` weight matrix.

    The form ``s_i·s_u / sqrt(s_i² + s_u²)`` is a smooth "soft minimum":
    it is bounded by ``min(s_i, s_u)/sqrt(2)``-ish behaviour, so a
    rating only carries weight when *both* the item is similar and the
    user is like-minded.
    """
    si = np.asarray(item_sims, dtype=np.float64)[None, :]    # (1, M)
    su = np.asarray(user_sims, dtype=np.float64)[:, None]    # (K, 1)
    denom = np.sqrt(si * si + su * su)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(denom > 0.0, (si * su) / np.where(denom > 0.0, denom, 1.0), 0.0)
    return out


def fuse(
    local: LocalMatrix, *, lam: float, delta: float, adjust_biases: bool = True
) -> FusedPrediction:
    """Compute SIR', SUR', SUIR' and their Eq. 14 fusion for one request.

    Parameters
    ----------
    adjust_biases:
        When ``True``, SIR' and SUIR' predict deviations from item (and
        user) means instead of raw ratings — the same offset treatment
        Eq. 12 already gives SUR'.  ``False`` evaluates the literal
        raw-rating forms of Eq. 12 (kept for the component ablation).
    """
    w_sir, w_sur, w_suir = fusion_weights(lam, delta)
    fallback = local.active_user_mean

    # --- SIR' ---------------------------------------------------------
    sir_weights = local.active_user_weights * np.maximum(local.item_sims, 0.0)
    sir_den = sir_weights.sum()
    sir_ok = bool(sir_den > 0.0)
    if sir_ok:
        if adjust_biases:
            offsets = local.active_user_ratings - local.item_means
            sir = float(local.active_item_mean + sir_weights @ offsets / sir_den)
        else:
            sir = float(sir_weights @ local.active_user_ratings / sir_den)
    else:
        sir = fallback

    # --- SUR' ---------------------------------------------------------
    sur_weights = local.active_item_weights * np.maximum(local.user_sims, 0.0)
    sur_den = sur_weights.sum()
    sur_ok = bool(sur_den > 0.0)
    if sur_ok:
        offsets = local.active_item_ratings - local.user_means
        sur = float(local.active_user_mean + sur_weights @ offsets / sur_den)
    else:
        sur = fallback

    # --- SUIR' --------------------------------------------------------
    pair = pair_similarity(np.maximum(local.item_sims, 0.0), np.maximum(local.user_sims, 0.0))
    suir_weights = local.weights * pair
    suir_den = suir_weights.sum()
    suir_ok = bool(suir_den > 0.0)
    if suir_ok:
        if adjust_biases:
            # Remove both the neighbour user's mean and the neighbour
            # item's quality offset, then re-anchor at the active pair.
            dev = (
                local.ratings
                - local.user_means[:, None]
                - (local.item_means[None, :] - local.global_mean)
            )
            suir = float(
                local.active_user_mean
                + (local.active_item_mean - local.global_mean)
                + (suir_weights * dev).sum() / suir_den
            )
        else:
            suir = float((suir_weights * local.ratings).sum() / suir_den)
    else:
        suir = fallback

    value = w_sir * sir + w_sur * sur + w_suir * suir
    return FusedPrediction(
        value=float(value),
        sir=sir,
        sur=sur,
        suir=suir,
        sir_ok=sir_ok,
        sur_ok=sur_ok,
        suir_ok=suir_ok,
    )


@dataclass(frozen=True)
class PreparedActiveUser:
    """Per-active-user arrays gathered once, reused across every request.

    Produced by :meth:`FusionKernel.prepare_user`.  The top-K data is
    stored *item-major*: ``(Q, K)`` contiguous transposed copies of the
    selected users' rows.  A request then gathers whole K-wide rows
    (one cache line each) instead of column-striding the ``(K, Q)``
    originals — several times faster — and the Eq. 13 inner loop
    broadcasts over the contiguous trailing axis.  The Eq. 10 user
    similarity is pre-multiplied into the weights (``wsu_cols``), which
    removes one full ``(R·M, K)`` pass from every fused batch.
    """

    #: ``(K,)`` clamped (non-negative) Eq. 10 similarities of the top-K users.
    su: np.ndarray = field(repr=False)
    #: ``(K,)`` ``su² + 1e-300`` — the Eq. 13 denominator terms with the
    #: exact-zero offset already baked in (see :meth:`FusionKernel._fuse_block`).
    su_sq: np.ndarray = field(repr=False)
    #: ``(Q, K)`` Eq. 11 weights of the top-K users, scaled by ``su``.
    wsu_cols: np.ndarray = field(repr=False)
    #: ``(Q, K)`` SUIR' deviation source: mean-centred ratings minus each
    #: item's quality offset when ``adjust_biases`` (folding Eq. 14's
    #: item-mean correction into the gathered rows removes a whole
    #: ``(R·M, K)`` reduction from the hot path), raw ratings otherwise.
    suir_cols: np.ndarray = field(repr=False)
    #: ``(Q, K)`` plain mean-centred ratings — only kept when
    #: ``adjust_biases`` is off (SUR' then cannot reuse ``suir_cols``).
    dev_cols: np.ndarray | None = field(repr=False)
    #: ``(Q,)`` Eq. 11 weights of the active profile.
    w_row: np.ndarray = field(repr=False)
    #: ``(Q,)`` active profile, item-mean-centred when ``adjust_biases``.
    profile_sir: np.ndarray = field(repr=False)
    #: Active user's mean rating (the fallback anchor).
    mean: float

    @property
    def k(self) -> int:
        """Number of selected like-minded users."""
        return int(self.su.size)


#: How many prepared-user allocations each bump-allocator slab holds.
#: Refills are rare at this size (once per 32 distinct active users),
#: and :meth:`FusionKernel.warm_prep_slab` pre-faults the first slab
#: offline so steady-state request handling never pays the fill.
_PREP_SLAB_USERS = 32


class FusionKernel:
    """Batched evaluation of Eqs. 12–14 over stacked local matrices.

    The scalar path (:func:`fuse`) materialises one ``(K, M)`` local
    matrix per request.  This kernel evaluates each active user's block
    of requests at once: the three component predictors become
    einsum-fused reductions over ``(R, M)``, ``(R, K)`` and
    ``(R·M, K)`` stacks gathered from the user's prepared item-major
    arrays.  Zero-padded neighbour slots carry *exactly* zero weight
    (the Eq. 13 pair similarity is computed in an exact-zero
    formulation), so padded cells are arithmetically identical to
    exclusion and the batched results match the scalar path to float64
    round-off.

    The kernel holds three extra ``(P, Q)`` float64 matrices (the
    global Eq. 11 weights, the mean-centred ratings, and the
    item-mean-adjusted SUIR' deviations) — the same O(P·Q) footprint
    class as the dense smoothed matrix they derive from.

    Requests are processed in chunks bounded by ``chunk_elems`` stacked
    elements so temporary memory stays flat regardless of batch size.
    """

    def __init__(
        self,
        smoothed: SmoothedRatings,
        cache: NeighborCache,
        item_means: np.ndarray,
        global_mean: float,
        *,
        lam: float,
        delta: float,
        epsilon: float,
        adjust_biases: bool = True,
        chunk_elems: int = 2_000_000,
    ) -> None:
        check_fraction(epsilon, "epsilon")
        self.w_sir, self.w_sur, self.w_suir = fusion_weights(lam, delta)
        self.epsilon = float(epsilon)
        self.adjust_biases = bool(adjust_biases)
        self.chunk_elems = int(chunk_elems)
        self.cache = cache
        self.item_means = np.asarray(item_means, dtype=np.float64)
        self.global_mean = float(global_mean)
        self._imean_dev = self.item_means - self.global_mean
        # Global per-cell Eq. 11 weights and mean-centred ratings; built
        # with the same np.where/subtract the scalar path applies per
        # request, so gathered entries are bit-identical.
        self._weight_matrix = smoothed.weights(epsilon)
        self._dev_matrix = smoothed.values - smoothed.user_means[:, None]
        self._values = smoothed.values
        # SUIR' deviation source, with the item-mean correction already
        # folded in when adjust_biases (see PreparedActiveUser).
        if self.adjust_biases:
            self._suir_matrix = self._dev_matrix - self._imean_dev[None, :]
        else:
            self._suir_matrix = self._values
        # Reusable per-block workspaces (the three largest temporaries:
        # the Eq. 13 pair weights and the gathered user-column stacks).
        # Fresh >=128 KiB allocations tend to come from fresh mmap pages,
        # whose first-touch page faults show up directly in serving
        # latency; reusing kernel-owned buffers keeps the pages warm.
        # fuse_many is correspondingly not re-entrant — callers that
        # share a kernel across threads must serialise calls.
        self._pair_scratch = np.empty(0, dtype=np.float64)
        self._wg_scratch = np.empty(0, dtype=np.float64)
        self._dg_scratch = np.empty(0, dtype=np.float64)
        # Row-gather staging for prepare_user: a fresh (k, Q) temporary
        # per call would exceed the allocator's mmap threshold, so each
        # gather would fault in (and then unmap) ~200 KiB of pages.
        self._row_scratch = np.empty(0, dtype=np.float64)
        # Bump allocator for the persistent per-user prepared arrays.
        # Each slab is pre-faulted in one streaming pass (sequential
        # first-touch is several times cheaper than faulting the same
        # pages on demand from the scattered gather writes), then
        # handed out slab-sequentially.  A retired slab is freed as
        # soon as every PreparedActiveUser viewing it is dropped, so
        # resident growth stays bounded by the caller's state cache.
        self._prep_slab = np.empty(0, dtype=np.float64)
        self._prep_slab_pos = 0

    def clone(self) -> "FusionKernel":
        """A worker copy for concurrent serving: shared inputs, private scratch.

        The derived global matrices (Eq. 11 weights, mean-centred
        ratings, SUIR' deviations) and the neighbour cache are shared
        by reference — they are read-only after construction, so N
        clones cost N × scratch, not N × O(P·Q).  Everything that
        makes :meth:`fuse_many` non-re-entrant (the pair/gather
        scratch buffers, the row-gather staging area, the prepared-user
        slab) starts fresh, so each clone may run on its own thread.
        Clones produce bit-identical results to the original: every
        computation reads the same shared arrays, and scratch contents
        never leak into outputs.
        """
        twin = object.__new__(FusionKernel)
        # Immutable / read-only shared state.
        twin.w_sir, twin.w_sur, twin.w_suir = self.w_sir, self.w_sur, self.w_suir
        twin.epsilon = self.epsilon
        twin.adjust_biases = self.adjust_biases
        twin.chunk_elems = self.chunk_elems
        twin.cache = self.cache
        twin.item_means = self.item_means
        twin.global_mean = self.global_mean
        twin._imean_dev = self._imean_dev
        twin._weight_matrix = self._weight_matrix
        twin._dev_matrix = self._dev_matrix
        twin._values = self._values
        twin._suir_matrix = self._suir_matrix
        # Private mutable scratch.
        twin._pair_scratch = np.empty(0, dtype=np.float64)
        twin._wg_scratch = np.empty(0, dtype=np.float64)
        twin._dg_scratch = np.empty(0, dtype=np.float64)
        twin._row_scratch = np.empty(0, dtype=np.float64)
        twin._prep_slab = np.empty(0, dtype=np.float64)
        twin._prep_slab_pos = 0
        return twin

    @property
    def weight_matrix(self) -> np.ndarray:
        """``(P, Q)`` global Eq. 11 weights (shared with user selection)."""
        return self._weight_matrix

    @property
    def deviation_matrix(self) -> np.ndarray:
        """``(P, Q)`` global mean-centred ratings (shared with selection)."""
        return self._dev_matrix

    def memory_bytes(self) -> int:
        """Resident size of the kernel's derived global matrices."""
        total = self._weight_matrix.nbytes + self._dev_matrix.nbytes
        if self._suir_matrix is not self._values:
            total += self._suir_matrix.nbytes
        return int(total)

    def warm_prep_slab(self, k: int) -> None:
        """Pre-fault the first prepared-user slab for top-``k`` selection.

        Called from the offline/build path so the first
        ``_PREP_SLAB_USERS`` online :meth:`prepare_user` calls write
        into already-faulted pages instead of taking minor faults on
        the request path.  A no-op when a slab with room already exists.
        """
        count = 2 if self.adjust_biases else 3
        need = self._weight_matrix.shape[1] * max(int(k), 1) * count
        if self._prep_slab.size - self._prep_slab_pos < need:
            self._prep_views(self._weight_matrix.shape[1], max(int(k), 1), count)
            self._prep_slab_pos = 0

    def _prep_views(self, rows: int, cols: int, count: int) -> list[np.ndarray]:
        """Carve ``count`` contiguous ``(rows, cols)`` arrays off the slab."""
        per = rows * cols
        need = per * count
        if self._prep_slab.size - self._prep_slab_pos < need:
            slab = np.empty(need * _PREP_SLAB_USERS, dtype=np.float64)
            slab.fill(0.0)  # sequential first-touch faults every page now
            self._prep_slab = slab
            self._prep_slab_pos = 0
        pos = self._prep_slab_pos
        self._prep_slab_pos = pos + need
        return [
            self._prep_slab[pos + i * per : pos + (i + 1) * per].reshape(rows, cols)
            for i in range(count)
        ]

    def prepare_user(
        self,
        users: np.ndarray,
        user_sims: np.ndarray,
        profile: np.ndarray,
        observed: np.ndarray,
        mean: float,
    ) -> PreparedActiveUser:
        """Gather the per-active-user arrays the batched path needs.

        Parameters mirror the scalar path's inputs: the selected top-K
        training users with their similarities, the active profile
        (dense, blended), its provenance mask, and the active mean.
        """
        su = np.maximum(np.asarray(user_sims, dtype=np.float64), 0.0)
        users = np.asarray(users, dtype=np.intp)
        k = int(users.size)
        q_n = self._weight_matrix.shape[1]
        if k:
            views = self._prep_views(q_n, k, 2 if self.adjust_biases else 3)
            if self._row_scratch.size < k * q_n:
                self._row_scratch = np.empty(k * q_n, dtype=np.float64)
            rows = self._row_scratch[: k * q_n].reshape(k, q_n)
            # Row-gather into the staging buffer (contiguous reads),
            # then write the column-major copy in one pass, folding in
            # the su factor where it applies.
            wsu_cols = views[0]
            np.take(self._weight_matrix, users, axis=0, mode="clip", out=rows)
            np.multiply(rows.T, su[None, :], out=wsu_cols)
            suir_cols = views[1]
            np.take(self._suir_matrix, users, axis=0, mode="clip", out=rows)
            np.copyto(suir_cols, rows.T)
            if self.adjust_biases:
                dev_cols = None
            else:
                dev_cols = views[2]
                np.take(self._dev_matrix, users, axis=0, mode="clip", out=rows)
                np.copyto(dev_cols, rows.T)
        else:
            wsu_cols = np.zeros((q_n, 0), dtype=np.float64)
            suir_cols = np.zeros((q_n, 0), dtype=np.float64)
            dev_cols = None if self.adjust_biases else np.zeros((q_n, 0), dtype=np.float64)
        return PreparedActiveUser(
            su=su,
            su_sq=su * su + 1e-300,
            wsu_cols=wsu_cols,
            suir_cols=suir_cols,
            dev_cols=dev_cols,
            w_row=np.where(observed, self.epsilon, 1.0 - self.epsilon),
            profile_sir=(profile - self.item_means) if self.adjust_biases else profile,
            mean=float(mean),
        )

    def fuse_many(
        self, blocks: Sequence[tuple[PreparedActiveUser, np.ndarray]]
    ) -> np.ndarray:
        """Fused predictions for many ``(active user, items)`` blocks.

        ``blocks`` is a sequence of ``(prepared, item_indices)`` pairs;
        the return value concatenates the per-block predictions in
        order.  Oversized blocks are split so each stacked evaluation
        stays under ``chunk_elems`` elements.
        """
        pieces: list[tuple[PreparedActiveUser, np.ndarray]] = []
        for prep, items in blocks:
            arr = np.asarray(items, dtype=np.intp)
            if arr.size:
                pieces.append((prep, arr))
        total = sum(arr.size for _, arr in pieces)
        out = np.empty(total, dtype=np.float64)
        if not total:
            return out
        M = max(self.cache.m, 1)
        budget = max(self.chunk_elems, M)
        pos = 0
        for prep, items in pieces:
            cap = max(1, budget // (max(prep.k, 1) * M))
            for start in range(0, items.size, cap):
                sub = items[start : start + cap]
                self._fuse_block(prep, sub, out[pos : pos + sub.size])
                pos += sub.size
        return out

    def _fuse_block(
        self, prep: PreparedActiveUser, q: np.ndarray, out: np.ndarray
    ) -> None:
        """Evaluate one active user's block of requests into ``out``."""
        R = q.size
        M = self.cache.m
        K = prep.k
        mean = prep.mean
        # All gathers below use np.take(..., mode="clip"): the indices
        # are kernel-built (neighbour cache rows and validated request
        # items, always within range), and skipping numpy's bounds-check
        # pass makes the gathers measurably cheaper.
        nbr = self.cache.indices[q]                  # (R, M) int32, zero-padded
        si = self.cache.sims[q]                      # (R, M) float64, >= 0
        si_sq = self.cache.sims_sq[q]
        flat = nbr.ravel()
        adjust = self.adjust_biases

        # --- SIR': active-user ratings on each request's neighbours ---
        sir_w = np.take(prep.w_row, flat, mode="clip").reshape(R, M)
        sir_w *= si
        pdev = np.take(prep.profile_sir, flat, mode="clip").reshape(R, M)
        sir_den = sir_w.sum(axis=1)
        sir_num = np.einsum("rm,rm->r", sir_w, pdev)
        ok = sir_den > 0.0
        safe = np.where(ok, sir_den, 1.0)
        if adjust:
            sir = np.where(ok, self.item_means[q] + sir_num / safe, mean)
        else:
            sir = np.where(ok, sir_num / safe, mean)

        if not K:
            np.multiply(sir, self.w_sir, out=out)
            out += (self.w_sur + self.w_suir) * mean
            return

        # --- SUR': top-K users' ratings on the active item --------------
        # wsu_cols already carries the su factor; when adjust_biases the
        # deviation source is item-mean-shifted, which the constant
        # imean_dev[q] term undoes after the weighted average.
        w_col = np.take(prep.wsu_cols, q, axis=0, mode="clip")       # (R, K)
        d_col = np.take(
            prep.suir_cols if prep.dev_cols is None else prep.dev_cols,
            q,
            axis=0,
            mode="clip",
        )
        sur_den = w_col.sum(axis=1)
        sur_num = np.einsum("rk,rk->r", w_col, d_col)
        ok = sur_den > 0.0
        safe = np.where(ok, sur_den, 1.0)
        if prep.dev_cols is None:
            sur = np.where(ok, mean + self._imean_dev[q] + sur_num / safe, mean)
        else:
            sur = np.where(ok, mean + sur_num / safe, mean)

        # --- SUIR': every (neighbour item, top-K user) cell -------------
        need = R * M * K
        if self._pair_scratch.size < need:
            self._pair_scratch = np.empty(need, dtype=np.float64)
            self._wg_scratch = np.empty(need, dtype=np.float64)
            self._dg_scratch = np.empty(need, dtype=np.float64)
        Wg = np.take(
            prep.wsu_cols, flat, axis=0, mode="clip",
            out=self._wg_scratch[:need].reshape(R * M, K),
        )
        Dg = np.take(
            prep.suir_cols, flat, axis=0, mode="clip",
            out=self._dg_scratch[:need].reshape(R * M, K),
        )
        # Eq. 13 in an exact-zero form: the tiny offset keeps the
        # denominator away from 0 without perturbing any real value,
        # and si/den is exactly 0 whenever si is 0 (incl. zero-padded
        # cells) while wsu_cols is exactly 0 wherever su is 0 — so the
        # den > 0 fallback below matches the scalar path's branch.
        pair = self._pair_scratch[:need].reshape(R * M, K)
        np.add(prep.su_sq, si_sq.reshape(R * M, 1), out=pair)
        np.sqrt(pair, out=pair)
        np.divide(si.reshape(R * M, 1), pair, out=pair)
        pair *= Wg                                   # T = pair-sim · su · weight
        suir_den = pair.reshape(R, M * K).sum(axis=1)
        # The item-mean correction lives in suir_cols, so the whole
        # numerator is one two-operand contraction against T.
        num = np.einsum("nk,nk->n", pair, Dg).reshape(R, M).sum(axis=1)
        ok = suir_den > 0.0
        safe = np.where(ok, suir_den, 1.0)
        if adjust:
            suir = np.where(ok, mean + self._imean_dev[q] + num / safe, mean)
        else:
            suir = np.where(ok, num / safe, mean)

        np.multiply(sir, self.w_sir, out=out)
        out += self.w_sur * sur
        out += self.w_suir * suir
