"""Fusing SIR', SUR' and SUIR' over the local matrix (Eqs. 12–14).

The three local predictors:

* ``SIR'`` — the active user's own (given or smoothed) ratings on the
  top-M similar items, weighted by item similarity and Eq. 11's ε::

      SIR' = Σ_s w·sim(i_s, i_a)·r(u_b, i_s) / Σ_s w·sim(i_s, i_a)

* ``SUR'`` — the top-K users' (smoothed) ratings on the active item,
  mean-offset as in Resnick::

      SUR' = r̄_b + Σ_t w·sim(u_t, u_b)·(r(u_t, i_a) − r̄_t)
                    / Σ_t w·sim(u_t, u_b)

* ``SUIR'`` — every (similar item, like-minded user) cell of the local
  matrix, weighted by the pair similarity of Eq. 13::

      sim((i_s,i_a),(u_t,u_b)) = sim_i · sim_u / sqrt(sim_i² + sim_u²)

and the fusion (Eq. 14)::

    SR' = (1−δ)(1−λ)·SIR' + (1−δ)·λ·SUR' + δ·SUIR'

``λ`` balances the two single-source predictors (the paper finds
SUR' more valuable: optimum λ ≈ 0.8) and ``δ`` admits the cross-source
SUIR' as a light supplement (optimum ≈ 0.1).

Degenerate components (empty neighbourhood or zero total weight) fall
back to the active user's mean so the convex combination stays within
the rating scale; the per-component availability is reported so
ablation benchmarks can count fallbacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.local_matrix import LocalMatrix
from repro.utils.validation import check_fraction

__all__ = ["FusedPrediction", "pair_similarity", "fuse", "fusion_weights"]


@dataclass(frozen=True)
class FusedPrediction:
    """One fused prediction with its components (for ablations).

    ``sir``, ``sur`` and ``suir`` are the component predictions (each
    already falls back to the active-user mean when its neighbourhood
    is degenerate); ``value`` is Eq. 14's combination.
    """

    value: float
    sir: float
    sur: float
    suir: float
    sir_ok: bool
    sur_ok: bool
    suir_ok: bool


def fusion_weights(lam: float, delta: float) -> tuple[float, float, float]:
    """Eq. 14's convex weights ``(w_sir, w_sur, w_suir)``.

    They always sum to 1, so the fused prediction is a convex
    combination of the components (property-tested).
    """
    check_fraction(lam, "lam")
    check_fraction(delta, "delta")
    return (1.0 - delta) * (1.0 - lam), (1.0 - delta) * lam, delta


def pair_similarity(item_sims: np.ndarray, user_sims: np.ndarray) -> np.ndarray:
    """Eq. 13 for all (item, user) pairs: ``(K, M)`` weight matrix.

    The form ``s_i·s_u / sqrt(s_i² + s_u²)`` is a smooth "soft minimum":
    it is bounded by ``min(s_i, s_u)/sqrt(2)``-ish behaviour, so a
    rating only carries weight when *both* the item is similar and the
    user is like-minded.
    """
    si = np.asarray(item_sims, dtype=np.float64)[None, :]    # (1, M)
    su = np.asarray(user_sims, dtype=np.float64)[:, None]    # (K, 1)
    denom = np.sqrt(si * si + su * su)
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(denom > 0.0, (si * su) / np.where(denom > 0.0, denom, 1.0), 0.0)
    return out


def fuse(
    local: LocalMatrix, *, lam: float, delta: float, adjust_biases: bool = True
) -> FusedPrediction:
    """Compute SIR', SUR', SUIR' and their Eq. 14 fusion for one request.

    Parameters
    ----------
    adjust_biases:
        When ``True``, SIR' and SUIR' predict deviations from item (and
        user) means instead of raw ratings — the same offset treatment
        Eq. 12 already gives SUR'.  ``False`` evaluates the literal
        raw-rating forms of Eq. 12 (kept for the component ablation).
    """
    w_sir, w_sur, w_suir = fusion_weights(lam, delta)
    fallback = local.active_user_mean

    # --- SIR' ---------------------------------------------------------
    sir_weights = local.active_user_weights * np.maximum(local.item_sims, 0.0)
    sir_den = sir_weights.sum()
    sir_ok = bool(sir_den > 0.0)
    if sir_ok:
        if adjust_biases:
            offsets = local.active_user_ratings - local.item_means
            sir = float(local.active_item_mean + sir_weights @ offsets / sir_den)
        else:
            sir = float(sir_weights @ local.active_user_ratings / sir_den)
    else:
        sir = fallback

    # --- SUR' ---------------------------------------------------------
    sur_weights = local.active_item_weights * np.maximum(local.user_sims, 0.0)
    sur_den = sur_weights.sum()
    sur_ok = bool(sur_den > 0.0)
    if sur_ok:
        offsets = local.active_item_ratings - local.user_means
        sur = float(local.active_user_mean + sur_weights @ offsets / sur_den)
    else:
        sur = fallback

    # --- SUIR' --------------------------------------------------------
    pair = pair_similarity(np.maximum(local.item_sims, 0.0), np.maximum(local.user_sims, 0.0))
    suir_weights = local.weights * pair
    suir_den = suir_weights.sum()
    suir_ok = bool(suir_den > 0.0)
    if suir_ok:
        if adjust_biases:
            # Remove both the neighbour user's mean and the neighbour
            # item's quality offset, then re-anchor at the active pair.
            dev = (
                local.ratings
                - local.user_means[:, None]
                - (local.item_means[None, :] - local.global_mean)
            )
            suir = float(
                local.active_user_mean
                + (local.active_item_mean - local.global_mean)
                + (suir_weights * dev).sum() / suir_den
            )
        else:
            suir = float((suir_weights * local.ratings).sum() / suir_den)
    else:
        suir = fallback

    value = w_sir * sir + w_sur * sur + w_suir * suir
    return FusedPrediction(
        value=float(value),
        sir=sir,
        sur=sur,
        suir=suir,
        sir_ok=sir_ok,
        sur_ok=sur_ok,
        suir_ok=suir_ok,
    )
