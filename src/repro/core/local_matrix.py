"""The local M x K item–user matrix (Section IV-E).

The heart of CFSF's scalability: instead of predicting over the full
``Q x P`` matrix, each request extracts a tiny matrix holding only the
top-M similar items (columns of the GIS) and the top-K like-minded
users, plus the weights needed by the fused predictors.

:class:`LocalMatrix` is a plain container — building it is pure
gathering (fancy indexing into the smoothed matrix), and the fusion
stage (:mod:`repro.core.fusion`) consumes it without touching anything
global.  This separation lets the tests assert the paper's complexity
claim directly: once a ``LocalMatrix`` exists, prediction cost depends
only on M and K.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.smoothing import SmoothedRatings

__all__ = ["LocalMatrix", "build_local_matrix"]


@dataclass(frozen=True)
class LocalMatrix:
    """Everything Eq. 12 needs, reduced to the local neighbourhood.

    Attributes
    ----------
    item_indices:
        ``(M',)`` the selected similar items (``M' <= M`` after the
        positive-similarity filter).
    item_sims:
        ``(M',)`` their GIS similarities to the active item.
    user_indices:
        ``(K',)`` the selected like-minded users.
    user_sims:
        ``(K',)`` their Eq. 10 similarities to the active user.
    ratings:
        ``(K', M')`` smoothed ratings of the selected users on the
        selected items.
    weights:
        ``(K', M')`` Eq. 11 weights for those cells (ε original,
        1−ε smoothed).
    active_item_ratings:
        ``(K',)`` smoothed ratings of the selected users on the
        *active* item, with matching ``active_item_weights`` — SUR'
        reads these.
    active_user_ratings:
        ``(M',)`` the active user's (given-or-smoothed) ratings on the
        selected items, with matching ``active_user_weights`` — SIR'
        reads these.
    user_means:
        ``(K',)`` the selected users' observed means (SUR's offsets).
    active_user_mean:
        The active user's mean over their given ratings.
    item_means:
        ``(M',)`` training means of the selected items — the offsets
        used by the bias-adjusted SIR'/SUIR' forms.
    active_item_mean:
        Training mean of the active item.
    global_mean:
        Training global mean (reference point for item deviations).
    """

    item_indices: np.ndarray
    item_sims: np.ndarray
    user_indices: np.ndarray
    user_sims: np.ndarray
    ratings: np.ndarray = field(repr=False)
    weights: np.ndarray = field(repr=False)
    active_item_ratings: np.ndarray = field(repr=False)
    active_item_weights: np.ndarray = field(repr=False)
    active_user_ratings: np.ndarray = field(repr=False)
    active_user_weights: np.ndarray = field(repr=False)
    user_means: np.ndarray = field(repr=False)
    active_user_mean: float = 0.0
    item_means: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]
    active_item_mean: float = 0.0
    global_mean: float = 0.0

    @property
    def shape(self) -> tuple[int, int]:
        """``(K', M')`` — users by items, matching Algorithm 1's
        "local M x K matrix" transposed to this library's user-major
        convention."""
        return self.ratings.shape


def build_local_matrix(
    *,
    active_item: int,
    item_indices: np.ndarray,
    item_sims: np.ndarray,
    user_indices: np.ndarray,
    user_sims: np.ndarray,
    smoothed: SmoothedRatings,
    active_profile: np.ndarray,
    active_observed: np.ndarray,
    active_user_mean: float,
    epsilon: float,
    item_means: np.ndarray,
    global_mean: float,
    weight_matrix: np.ndarray | None = None,
) -> LocalMatrix:
    """Gather the local matrix for one (active user, active item) pair.

    Parameters
    ----------
    active_item:
        The item being predicted (used for the SUR' column).
    item_indices, item_sims:
        Top-M selection from :meth:`repro.core.gis.GlobalItemSimilarity.top_m`.
    user_indices, user_sims:
        Top-K selection from :func:`repro.core.selection.select_top_k_users`.
    smoothed:
        Offline smoothing output for the training population.
    active_profile:
        ``(Q,)`` the active user's dense profile: given ratings where
        revealed, cluster-smoothed estimates elsewhere (the model
        folds active users into a cluster exactly as it smooths
        training users).
    active_observed:
        ``(Q,)`` provenance for ``active_profile``.
    active_user_mean:
        Mean of the active user's given ratings.
    epsilon:
        Eq. 11's ε.
    item_means:
        ``(Q,)`` per-item training means.
    global_mean:
        Training global mean.
    weight_matrix:
        Optional precomputed ``(P, Q)`` Eq. 11 weight matrix (e.g. the
        :class:`repro.core.fusion.FusionKernel`'s).  When given, the
        training-side weights are gathered from it instead of being
        rebuilt from the provenance mask per request.  Must match
        ``smoothed`` + ``epsilon`` (not re-checked).
    """
    if weight_matrix is not None:
        w_user = weight_matrix[np.ix_(user_indices, item_indices)]
        w_active_col = weight_matrix[user_indices, active_item]
    else:
        w_user = np.where(
            smoothed.observed_mask[np.ix_(user_indices, item_indices)], epsilon, 1.0 - epsilon
        )
        w_active_col = np.where(
            smoothed.observed_mask[user_indices, active_item], epsilon, 1.0 - epsilon
        )
    w_active_row = np.where(active_observed[item_indices], epsilon, 1.0 - epsilon)
    return LocalMatrix(
        item_indices=item_indices,
        item_sims=item_sims,
        user_indices=user_indices,
        user_sims=user_sims,
        ratings=smoothed.values[np.ix_(user_indices, item_indices)],
        weights=w_user,
        active_item_ratings=smoothed.values[user_indices, active_item],
        active_item_weights=w_active_col,
        active_user_ratings=active_profile[item_indices],
        active_user_weights=w_active_row,
        user_means=smoothed.user_means[user_indices],
        active_user_mean=float(active_user_mean),
        item_means=np.asarray(item_means, dtype=np.float64)[item_indices],
        active_item_mean=float(item_means[active_item]),
        global_mean=float(global_mean),
    )
