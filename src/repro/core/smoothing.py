"""Cluster smoothing of unrated data (Section IV-D, Eqs. 7–8).

Users in the same cluster share tastes but differ in rating *style*;
smoothing fills each user's unrated entries with the user's own mean
shifted by the cluster's consensus deviation for the item::

    r(u, i) = r(u, i)                         if u rated i     (Eq. 7)
            = r̄_u + Δr_{C(u), i}             otherwise

    Δr_{C, i} = Σ_{u ∈ C, u rated i} (r(u, i) − r̄_u) / |C_i|   (Eq. 8)

The result is a *dense* matrix: every (user, item) cell holds either an
original rating or a smoothed estimate, plus a provenance mask so that
downstream stages (Eq. 10's ε-weighting, Eq. 12's fused predictors) can
weight the two kinds differently.

When no member of the cluster rated the item, ``Δr`` is 0 and the
smoothed value degenerates to the user's mean — the same convention
SCBPCC (Xue et al. 2005) uses.

The whole computation is two one-hot matrix products; no loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.matrix import RatingMatrix
from repro.obs import span
from repro.utils.validation import check_positive_int

__all__ = ["SmoothedRatings", "smooth_ratings", "cluster_deviations"]


@dataclass(frozen=True)
class SmoothedRatings:
    """Output of :func:`smooth_ratings`.

    Attributes
    ----------
    values:
        ``(P, Q)`` dense matrix: original ratings where rated, smoothed
        estimates elsewhere, clipped to the rating scale.
    observed_mask:
        ``(P, Q)`` provenance: ``True`` where the value is an original
        rating (drives the ε-weighting of Eq. 11).
    deviations:
        ``(L, Q)`` per-cluster item deviations ``Δr_{C,i}`` (Eq. 8),
        reused by the iCluster affinity of Eq. 9.
    deviation_counts:
        ``(L, Q)`` number of raters behind each deviation (``|C_i|``);
        0 marks deviations that defaulted to 0.
    user_means:
        ``(P,)`` the ``r̄_u`` used for filling.
    labels:
        ``(P,)`` cluster assignment used.
    """

    values: np.ndarray = field(repr=False)
    observed_mask: np.ndarray = field(repr=False)
    deviations: np.ndarray = field(repr=False)
    deviation_counts: np.ndarray = field(repr=False)
    user_means: np.ndarray = field(repr=False)
    labels: np.ndarray = field(repr=False)

    @property
    def shape(self) -> tuple[int, int]:
        """``(P, Q)``."""
        return self.values.shape

    @property
    def n_clusters(self) -> int:
        """Number of clusters ``L``."""
        return self.deviations.shape[0]

    def smoothed_fraction(self) -> float:
        """Fraction of cells that hold smoothed (not original) values."""
        return 1.0 - self.observed_mask.mean()

    def weights(self, epsilon: float) -> np.ndarray:
        """Eq. 11's per-cell weight matrix: ``ε`` where original, ``1−ε``
        where smoothed."""
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        return np.where(self.observed_mask, epsilon, 1.0 - epsilon)


def cluster_deviations(
    train: RatingMatrix,
    labels: np.ndarray,
    n_clusters: int,
    *,
    shrinkage: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. 8: ``Δr_{C,i}`` and rater counts, for all clusters at once.

    Parameters
    ----------
    shrinkage:
        Empirical-Bayes shrinkage mass ``β``: the deviation is scaled
        by ``n / (n + β)`` where ``n`` is the backing rater count.
        Eq. 8 is the unshrunk ``β = 0``; a small positive β keeps a
        deviation estimated from a single rater from being trusted as
        much as one estimated from ten, which matters when clusters
        are small (ML_100 with C=30 leaves ~3 users per cluster).

    Returns
    -------
    (deviations, counts):
        Both ``(L, Q)``; ``deviations`` is 0 where ``counts`` is 0.
    """
    if shrinkage < 0:
        raise ValueError(f"shrinkage must be >= 0, got {shrinkage}")
    check_positive_int(n_clusters, "n_clusters")
    labels = np.asarray(labels, dtype=np.intp)
    if labels.shape != (train.n_users,):
        raise ValueError(
            f"labels shape {labels.shape} does not match n_users={train.n_users}"
        )
    if labels.size and (labels.min() < 0 or labels.max() >= n_clusters):
        raise ValueError("labels out of range for n_clusters")

    user_means = train.user_means()
    dev = (train.values - user_means[:, None]) * train.mask  # (P, Q)
    onehot = np.zeros((n_clusters, train.n_users), dtype=np.float64)
    onehot[labels, np.arange(train.n_users)] = 1.0
    dev_sums = onehot @ dev
    counts = onehot @ train.mask.astype(np.float64)
    with np.errstate(invalid="ignore"):
        deviations = np.where(counts > 0, dev_sums / np.maximum(counts, 1.0), 0.0)
    if shrinkage > 0.0:
        deviations = deviations * (counts / (counts + shrinkage))
    return deviations, counts


def smooth_ratings(
    train: RatingMatrix,
    labels: np.ndarray,
    n_clusters: int,
    *,
    shrinkage: float = 0.0,
) -> SmoothedRatings:
    """Apply Eqs. 7–8 to produce the dense smoothed matrix.

    Parameters
    ----------
    train:
        Training matrix.
    labels:
        ``(P,)`` cluster assignment from
        :func:`repro.core.clustering.cluster_users`.
    n_clusters:
        Total number of clusters ``L`` (labels may not cover all of
        them if a cluster emptied; its deviations are all-zero).
    shrinkage:
        Deviation shrinkage β forwarded to :func:`cluster_deviations`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.data import RatingMatrix
    >>> rm = RatingMatrix(np.array([[5., 0.], [3., 4.]]))
    >>> sm = smooth_ratings(rm, np.array([0, 0]), 1)
    >>> bool(sm.observed_mask[0, 1])
    False
    >>> float(sm.values[0, 0])   # original rating preserved
    5.0
    """
    with span("smooth.apply", n_clusters=n_clusters, shrinkage=shrinkage) as sp:
        deviations, counts = cluster_deviations(train, labels, n_clusters, shrinkage=shrinkage)
        user_means = train.user_means()
        smoothed = user_means[:, None] + deviations[np.asarray(labels, dtype=np.intp)]
        lo, hi = train.rating_scale
        np.clip(smoothed, lo, hi, out=smoothed)
        values = np.where(train.mask, train.values, smoothed)
        result = SmoothedRatings(
            values=values,
            observed_mask=train.mask.copy(),
            deviations=deviations,
            deviation_counts=counts,
            user_means=user_means,
            labels=np.asarray(labels, dtype=np.intp).copy(),
        )
        sp.set(smoothed_fraction=result.smoothed_fraction())
        return result
