"""iCluster: per-user ranked cluster affinity (Section IV-D, Eq. 9).

After smoothing, CFSF computes for every user the similarity to every
user cluster and stores the clusters *sorted descending* — the user's
"iCluster".  The online phase walks this ranking to build the candidate
set from which the top-K like-minded users are drawn, instead of
scanning the whole population.

Eq. 9 correlates the user's mean-centred ratings with the cluster's
item deviations ``Δr_{C,i}`` over the items both have rated::

    sim(u, C) = Σ_i Δr_{C,i} (r_{u,i} − r̄_u)
                / ( sqrt(Σ_i Δr_{C,i}²) · sqrt(Σ_i (r_{u,i} − r̄_u)²) )

with all sums over ``i ∈ I{u} ∧ I{C}``.  Note this is a correlation of
*deviations* — a user matches a cluster when they deviate from their
personal mean on the same items in the same direction, which is exactly
the style-free notion of shared taste the smoothing stage is built on.

The full ``(P, L)`` affinity matrix is three Gram products.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.smoothing import SmoothedRatings
from repro.obs import span

__all__ = [
    "IClusterIndex",
    "PreparedAffinity",
    "build_icluster",
    "prepare_affinity",
    "profile_cluster_affinity",
    "user_cluster_affinity",
]


@dataclass(frozen=True)
class PreparedAffinity:
    """Cluster-side factors of Eq. 9, computed once per fitted model.

    :func:`user_cluster_affinity` needs the masked deviations, their
    squares and the coverage mask on every call; for a fitted model
    these ``(L, Q)`` products never change, so precomputing them shaves
    the dominant per-new-active-user cost off the online fold-in.
    """

    masked_deviations: np.ndarray = field(repr=False)   #: ``(L, Q)`` Δr·coverage
    squared_deviations: np.ndarray = field(repr=False)  #: ``(L, Q)`` (Δr·coverage)²
    cluster_mask: np.ndarray = field(repr=False)        #: ``(L, Q)`` coverage (0/1)


def prepare_affinity(deviations: np.ndarray, deviation_counts: np.ndarray) -> PreparedAffinity:
    """Precompute the cluster-side Eq. 9 factors for repeated use."""
    cmask = (np.asarray(deviation_counts) > 0).astype(np.float64)  # (L, Q)
    D = np.asarray(deviations, dtype=np.float64) * cmask
    return PreparedAffinity(masked_deviations=D, squared_deviations=D * D, cluster_mask=cmask)


def user_cluster_affinity(
    values: np.ndarray,
    mask: np.ndarray,
    user_means: np.ndarray,
    deviations: np.ndarray | None = None,
    deviation_counts: np.ndarray | None = None,
    *,
    prepared: PreparedAffinity | None = None,
) -> np.ndarray:
    """Eq. 9 for a block of users against all clusters.

    Parameters
    ----------
    values, mask:
        ``(n, Q)`` user ratings and rated-mask (training users or
        active users' given profiles alike).
    user_means:
        ``(n,)`` per-user observed means (``r̄_u``).
    deviations, deviation_counts:
        ``(L, Q)`` cluster deviations and backing rater counts from
        :func:`repro.core.smoothing.cluster_deviations`.  May be
        omitted when ``prepared`` is given.
    prepared:
        Precomputed cluster-side factors from :func:`prepare_affinity`;
        pass this on hot paths to skip recomputing the ``(L, Q)``
        products per call.

    Returns
    -------
    numpy.ndarray
        ``(n, L)`` affinities in ``[-1, 1]``; 0 where the user and the
        cluster share no rated item or either side is constant.
    """
    if prepared is None:
        if deviations is None or deviation_counts is None:
            raise ValueError("need either prepared= or deviations + deviation_counts")
        prepared = prepare_affinity(deviations, deviation_counts)
    values = np.asarray(values, dtype=np.float64)
    mask = np.asarray(mask, dtype=bool)
    dev_u = (values - np.asarray(user_means, dtype=np.float64)[:, None]) * mask  # (n, Q)
    D = prepared.masked_deviations

    num = dev_u @ D.T                                            # (n, L)
    den1 = mask.astype(np.float64) @ prepared.squared_deviations.T  # Σ Δr² over user's items
    den2 = (dev_u * dev_u) @ prepared.cluster_mask.T                # Σ dev² over cluster's items
    denom = np.sqrt(den1 * den2)
    with np.errstate(invalid="ignore", divide="ignore"):
        sim = np.where(denom > 0.0, num / np.where(denom > 0.0, denom, 1.0), 0.0)
    np.clip(sim, -1.0, 1.0, out=sim)
    return sim


def profile_cluster_affinity(
    item_indices: np.ndarray,
    deviations: np.ndarray,
    prepared: PreparedAffinity,
) -> np.ndarray:
    """Eq. 9 for one sparse active profile — the online fold-in hot path.

    Equivalent to :func:`user_cluster_affinity` on the densified
    single-row inputs, but sums run over the ``f`` rated items only
    (``O(L·f)`` instead of ``O(L·Q)``): every skipped column
    contributes exactly zero to each dense matmul, so only float
    summation order differs.

    Parameters
    ----------
    item_indices:
        ``(f,)`` item indices the active user has rated.
    deviations:
        ``(f,)`` the active user's mean-centred ratings on those items.
    prepared:
        Cluster-side factors from :func:`prepare_affinity`.

    Returns
    -------
    numpy.ndarray
        ``(L,)`` affinities in ``[-1, 1]``; 0 where degenerate.
    """
    if item_indices.size == 0:
        return np.zeros(prepared.masked_deviations.shape[0], dtype=np.float64)
    D = prepared.masked_deviations[:, item_indices]          # (L, f)
    num = D @ deviations
    den1 = prepared.squared_deviations[:, item_indices].sum(axis=1)
    den2 = prepared.cluster_mask[:, item_indices] @ (deviations * deviations)
    denom = np.sqrt(den1 * den2)
    ok = denom > 0.0
    sim = np.where(ok, num / np.where(ok, denom, 1.0), 0.0)
    np.clip(sim, -1.0, 1.0, out=sim)
    return sim


@dataclass(frozen=True)
class IClusterIndex:
    """Per-user descending cluster ranking plus supporting arrays.

    Attributes
    ----------
    affinity:
        ``(P, L)`` Eq. 9 affinities for the training users.
    ranking:
        ``(P, L)`` cluster indices, each row sorted by descending
        affinity — the paper's per-user iCluster list (e.g.
        ``{C0, C1, C7, ...}`` in Section IV-D).
    cluster_members:
        Tuple of ``L`` index arrays; ``cluster_members[c]`` lists the
        training users in cluster *c*, so the online candidate walk is
        an array concatenation instead of a scan.
    """

    affinity: np.ndarray = field(repr=False)
    ranking: np.ndarray = field(repr=False)
    cluster_members: tuple[np.ndarray, ...] = field(repr=False)

    @property
    def n_users(self) -> int:
        """Number of indexed (training) users."""
        return self.affinity.shape[0]

    @property
    def n_clusters(self) -> int:
        """Number of clusters ``L``."""
        return self.affinity.shape[1]

    def candidates_for_ranking(
        self, ranking_row: np.ndarray, pool_size: int, *, max_clusters: int | None = None
    ) -> np.ndarray:
        """Walk a cluster ranking, concatenating members until
        *pool_size* users are collected.

        This is Section IV-E.2's candidate-set construction: "CFSF
        selects users from clusters in iCluster one by one".

        Parameters
        ----------
        ranking_row:
            ``(L,)`` cluster indices in descending affinity order
            (typically a row of :attr:`ranking`, or a fresh ranking
            computed for an active user).
        pool_size:
            Stop once at least this many candidates are collected (the
            last cluster is included whole; the caller trims).
        max_clusters:
            Visit at most this many clusters regardless of pool fill.
        """
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        limit = len(ranking_row) if max_clusters is None else min(max_clusters, len(ranking_row))
        chunks: list[np.ndarray] = []
        total = 0
        for c in ranking_row[:limit]:
            members = self.cluster_members[int(c)]
            if members.size == 0:
                continue
            chunks.append(members)
            total += members.size
            if total >= pool_size:
                break
        if not chunks:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(chunks)


def build_icluster(
    smoothed: SmoothedRatings, train_mask: np.ndarray, train_values: np.ndarray
) -> IClusterIndex:
    """Build the iCluster index for the training population.

    Parameters
    ----------
    smoothed:
        Output of :func:`repro.core.smoothing.smooth_ratings` (supplies
        the deviations, user means and labels).
    train_mask, train_values:
        The *original* training mask/values — Eq. 9 runs on observed
        ratings, not smoothed ones.
    """
    with span("icluster.build", n_clusters=smoothed.n_clusters):
        affinity = user_cluster_affinity(
            train_values,
            train_mask,
            smoothed.user_means,
            smoothed.deviations,
            smoothed.deviation_counts,
        )
        ranking = np.argsort(-affinity, axis=1, kind="stable").astype(np.intp)
        L = smoothed.n_clusters
        members = tuple(
            np.nonzero(smoothed.labels == c)[0].astype(np.intp) for c in range(L)
        )
        return IClusterIndex(affinity=affinity, ranking=ranking, cluster_members=members)
