"""Core: the paper's contribution — CFSF and its offline/online stages.

Each stage of Algorithm 1 is its own module with its own tests:

====================  ====================================================
:mod:`~repro.core.gis`         Offline step 1 — global item similarity (Eq. 5)
:mod:`~repro.core.clustering`  Offline step 2 — K-means user clusters (Eq. 6)
:mod:`~repro.core.smoothing`   Offline step 3 — cluster smoothing (Eqs. 7–8)
:mod:`~repro.core.icluster`    Offline step 3b — per-user cluster ranking (Eq. 9)
:mod:`~repro.core.selection`   Online step 5 — ε-weighted top-K users (Eqs. 10–11)
:mod:`~repro.core.local_matrix` Online step 6a — the local M x K matrix
:mod:`~repro.core.fusion`      Online step 6b — SIR'/SUR'/SUIR' fusion (Eqs. 12–14)
:mod:`~repro.core.model`       The end-to-end :class:`CFSF` estimator
:mod:`~repro.core.incremental` Extension — GIS maintenance without refit (§VI)
:mod:`~repro.core.temporal`    Extension — time-decayed ratings (§VI)
====================  ====================================================
"""

from repro.core.config import PAPER_DEFAULTS, CFSFConfig
from repro.core.clustering import UserClusters, cluster_users
from repro.core.incremental import IncrementalGIS
from repro.core.temporal import apply_time_decay, decay_weights
from repro.core.fusion import (
    FusedPrediction,
    FusionKernel,
    PreparedActiveUser,
    fuse,
    fusion_weights,
    pair_similarity,
)
from repro.core.gis import GlobalItemSimilarity, NeighborCache, build_gis, build_neighbor_cache
from repro.core.icluster import (
    IClusterIndex,
    PreparedAffinity,
    build_icluster,
    prepare_affinity,
    user_cluster_affinity,
)
from repro.core.local_matrix import LocalMatrix, build_local_matrix
from repro.core.explain import Contribution, Explanation, explain
from repro.core.model import CFSF, ActiveUserState
from repro.core.persistence import load_model, save_model
from repro.core.recommend import Recommendation, recommend_for_all, recommend_top_n
from repro.core.selection import TopKUsers, select_top_k_users, weighted_user_similarity
from repro.core.smoothing import SmoothedRatings, cluster_deviations, smooth_ratings

__all__ = [
    "CFSF",
    "ActiveUserState",
    "CFSFConfig",
    "Contribution",
    "Explanation",
    "FusedPrediction",
    "FusionKernel",
    "GlobalItemSimilarity",
    "IClusterIndex",
    "IncrementalGIS",
    "NeighborCache",
    "PreparedActiveUser",
    "PreparedAffinity",
    "apply_time_decay",
    "decay_weights",
    "LocalMatrix",
    "PAPER_DEFAULTS",
    "Recommendation",
    "load_model",
    "recommend_for_all",
    "recommend_top_n",
    "save_model",
    "SmoothedRatings",
    "TopKUsers",
    "UserClusters",
    "build_gis",
    "build_icluster",
    "build_local_matrix",
    "build_neighbor_cache",
    "prepare_affinity",
    "cluster_deviations",
    "cluster_users",
    "explain",
    "fuse",
    "fusion_weights",
    "pair_similarity",
    "select_top_k_users",
    "smooth_ratings",
    "user_cluster_affinity",
    "weighted_user_similarity",
]
