"""Temporal extension: time-decayed rating weights (Section VI).

The paper's future work names "dates associated with the ratings" as an
accuracy lever — user preferences drift, so older ratings should count
less.  This module implements the standard exponential time decay as a
*preprocessing* transform compatible with every recommender in the
library: instead of changing each algorithm, it reweights the training
matrix by shifting each rating toward the user's mean in proportion to
its age::

    r'(u, i) = r̄_u + decay(t) · (r(u, i) − r̄_u)
    decay(t) = exp(−(t_now − t(u, i)) / half_life · ln 2)

A fully decayed rating (age ≫ half-life) degenerates to the user's
mean — it still marks *that* the user rated the item (so similarity
overlaps are preserved) but no longer asserts a strong preference
direction.  This is the rating-value analogue of the weighting
Koren's "Collaborative Filtering with Temporal Dynamics" applies inside
the model, chosen here because it composes with arbitrary downstream
recommenders.

``examples/temporal_dynamics.py`` shows it recovering accuracy on the
drifted synthetic dataset of :func:`repro.data.synthetic.make_timestamped`.
"""

from __future__ import annotations

import numpy as np

from repro.data.matrix import RatingMatrix

__all__ = ["decay_weights", "apply_time_decay"]


def decay_weights(
    timestamps: np.ndarray,
    *,
    now: float,
    half_life: float,
) -> np.ndarray:
    """Exponential decay factors in ``(0, 1]`` for each timestamp.

    Parameters
    ----------
    timestamps:
        Rating times (any consistent unit).
    now:
        The reference "current" time; ratings in the future of *now*
        are clamped to weight 1.0 rather than amplified.
    half_life:
        Age at which a rating's deviation weight halves.
    """
    if half_life <= 0:
        raise ValueError(f"half_life must be > 0, got {half_life}")
    age = np.maximum(now - np.asarray(timestamps, dtype=np.float64), 0.0)
    return np.exp(-age / half_life * np.log(2.0))


def apply_time_decay(
    train: RatingMatrix,
    timestamps: np.ndarray,
    *,
    now: float | None = None,
    half_life: float = 0.5,
) -> RatingMatrix:
    """Reweight a training matrix by rating age.

    Parameters
    ----------
    train:
        The training matrix.
    timestamps:
        ``(P, Q)`` per-cell rating times (only cells where
        ``train.mask`` holds are read).
    now:
        Reference time; defaults to the newest observed timestamp.
    half_life:
        Decay half-life in the timestamps' unit.

    Returns
    -------
    RatingMatrix
        Same mask, values shifted toward each user's mean according to
        age.  Values stay within the rating scale (a convex blend of
        an in-scale rating and an in-scale mean).
    """
    timestamps = np.asarray(timestamps, dtype=np.float64)
    if timestamps.shape != train.shape:
        raise ValueError(
            f"timestamps shape {timestamps.shape} does not match ratings {train.shape}"
        )
    if now is None:
        observed_times = timestamps[train.mask]
        now = float(observed_times.max()) if observed_times.size else 0.0
    w = decay_weights(timestamps, now=now, half_life=half_life)
    user_means = train.user_means()
    decayed = user_means[:, None] + w * (train.values - user_means[:, None])
    values = np.where(train.mask, decayed, 0.0)
    return RatingMatrix(values, train.mask.copy(), rating_scale=train.rating_scale)
