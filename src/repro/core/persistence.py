"""Saving and loading fitted CFSF models.

The offline phase is the expensive part of CFSF by design; a serving
deployment fits once in the backend and ships the artefacts to request
handlers.  This module serialises the entire fitted state — the
training matrix, the GIS (similarities + sorted neighbour lists), the
clustering, the smoothing output, and the iCluster index — into a
single compressed ``.npz`` alongside the JSON-encoded configuration,
and restores a bit-identical model.

The format is plain NumPy: no pickle of code objects, so snapshots are
loadable across library versions as long as the array schema (listed
in :data:`_ARRAY_FIELDS`) is intact, and safe to share (nothing
executes on load).

Durability guarantees (what a serving fleet relies on):

* **Atomic writes.**  :func:`save_model` writes to a deterministic
  ``<path>.tmp`` sibling through an open file handle (so NumPy cannot
  append a surprise ``.npz`` suffix), fsyncs it, and publishes with
  ``os.replace`` — a crashed save never leaves a half-written snapshot
  at the published path, and the tmp file is removed on failure.
* **Corruption detection.**  Every snapshot carries a SHA-256 digest
  of its logical content (config + every array's dtype/shape/bytes).
  :func:`load_model` verifies it and raises
  :class:`~repro.serving.errors.SnapshotCorruptError` on mismatch — as
  it does for unreadable archives and missing arrays — so a damaged
  artefact is rejected *before* it can serve garbage.  The serving
  layer's reload path catches this and keeps the last-known-good model
  (:meth:`repro.serving.PredictionService.reload`).
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import zipfile
import zlib

import numpy as np

from repro.core.clustering import UserClusters
from repro.core.config import CFSFConfig
from repro.core.gis import GlobalItemSimilarity, NeighborCache
from repro.core.icluster import IClusterIndex
from repro.core.model import CFSF
from repro.core.smoothing import SmoothedRatings
from repro.data.matrix import RatingMatrix
from repro.serving.errors import SnapshotCorruptError, SnapshotVersionError
from repro.utils.cache import LRUCache

__all__ = ["save_model", "load_model"]

#: Schema version written into every snapshot.  Version 2 added the
#: precomputed top-M neighbour cache (``nbr_*`` arrays); version-1
#: snapshots are still accepted — the cache is rebuilt from the GIS.
FORMAT_VERSION = 2

_SUPPORTED_VERSIONS = (1, 2)

_ARRAY_FIELDS = (
    "train_values",
    "train_mask",
    "gis_sim",
    "gis_neighbours",
    "cluster_labels",
    "cluster_centroids",
    "cluster_similarities",
    "smoothed_values",
    "smoothed_observed",
    "smoothed_deviations",
    "smoothed_counts",
    "smoothed_user_means",
    "icluster_affinity",
    "icluster_ranking",
)

#: Arrays added in format version 2 (the serialised neighbour cache).
_V2_ARRAY_FIELDS = (
    "nbr_indices",
    "nbr_sims",
    "nbr_counts",
)


def _array_fields(version: int) -> tuple[str, ...]:
    """The full array schema for a given format version."""
    return _ARRAY_FIELDS + _V2_ARRAY_FIELDS if version >= 2 else _ARRAY_FIELDS


def _content_digest(meta_json: str, arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over the snapshot's logical content.

    Hashing the decoded content (not the file bytes) keeps the digest
    stable across compression levels and lets it live inside the same
    archive it protects.
    """
    h = hashlib.sha256()
    h.update(meta_json.encode("utf-8"))
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        h.update(name.encode("utf-8"))
        h.update(str(arr.dtype).encode("utf-8"))
        h.update(str(arr.shape).encode("utf-8"))
        h.update(arr.tobytes())
    return h.hexdigest()


def save_model(model: CFSF, path: str) -> None:
    """Serialise a fitted CFSF to ``path`` (``.npz``, compressed).

    The write is atomic (tmp file + fsync + ``os.replace``): readers
    either see the previous snapshot or the complete new one, never a
    torn write.

    Raises
    ------
    ValueError
        If the model has not been fitted.
    """
    train = model._train
    if train is None or model.gis is None or model.smoothed is None:
        raise ValueError("cannot save an unfitted CFSF model")
    assert model.clusters is not None and model.icluster is not None
    # Ship the precomputed neighbour cache so the serving side starts
    # hot instead of re-deriving it from the O(Q²) similarity matrix.
    cache = model.gis.attach_cache(model.config.top_m_items)

    meta = {
        "format_version": FORMAT_VERSION,
        "config": dataclasses.asdict(model.config),
        "rating_scale": list(train.rating_scale),
        "gis_threshold": model.gis.threshold,
        "gis_centering": model.gis.centering,
        "kmeans_n_iter": model.clusters.n_iter,
        "kmeans_converged": model.clusters.converged,
        "nbr_cache_m": cache.m,
    }
    arrays = {
        "train_values": train.values,
        "train_mask": train.mask,
        "gis_sim": model.gis.sim,
        "gis_neighbours": model.gis.neighbours,
        "cluster_labels": model.clusters.labels,
        "cluster_centroids": model.clusters.centroids,
        "cluster_similarities": model.clusters.similarities,
        "smoothed_values": model.smoothed.values,
        "smoothed_observed": model.smoothed.observed_mask,
        "smoothed_deviations": model.smoothed.deviations,
        "smoothed_counts": model.smoothed.deviation_counts,
        "smoothed_user_means": model.smoothed.user_means,
        "icluster_affinity": model.icluster.affinity,
        "icluster_ranking": model.icluster.ranking,
        "nbr_indices": cache.indices,
        "nbr_sims": cache.sims32,
        "nbr_counts": cache.counts,
    }
    meta_json = json.dumps(meta)
    checksum = _content_digest(meta_json, arrays)

    tmp = f"{path}.tmp"
    try:
        # Writing through an open handle pins the tmp name exactly
        # (np.savez_compressed appends ".npz" to bare *names* only) and
        # lets us fsync before publishing.
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, meta=meta_json, checksum=checksum, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    # Persist the rename itself (POSIX: directory metadata).
    dir_fd = os.open(os.path.dirname(os.path.abspath(path)), os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def load_model(path: str) -> CFSF:
    """Restore a fitted CFSF from a :func:`save_model` snapshot.

    Raises
    ------
    FileNotFoundError
        If *path* does not exist (a missing snapshot is an operational
        condition, not corruption).
    repro.serving.errors.SnapshotCorruptError
        If the archive is unreadable, arrays are missing, or the
        stored checksum does not match the content.  (A ``ValueError``
        subclass, so pre-taxonomy callers keep working.)
    repro.serving.errors.SnapshotVersionError
        If the snapshot declares an unsupported format version.
    """
    try:
        with np.load(path, allow_pickle=False) as archive:
            # Force-decompress every member inside the handler: zip CRC
            # and zlib stream errors surface here, not lazily later.
            data = {name: archive[name] for name in archive.files}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, zlib.error, EOFError, OSError, KeyError, ValueError) as exc:
        raise SnapshotCorruptError(path, f"unreadable archive ({exc})") from exc

    if "meta" not in data:
        raise SnapshotCorruptError(path, "archive has no 'meta' member")
    try:
        meta = json.loads(str(data["meta"]))
    except json.JSONDecodeError as exc:
        raise SnapshotCorruptError(path, f"meta is not valid JSON ({exc})") from exc

    version = meta.get("format_version")
    if version not in _SUPPORTED_VERSIONS:
        raise SnapshotVersionError(f"unsupported snapshot version {version!r}")
    fields = _array_fields(int(version))
    missing = [f for f in fields if f not in data]
    if missing:
        raise SnapshotCorruptError(path, f"snapshot is missing arrays: {missing}")

    if "checksum" in data:
        stored = str(data["checksum"])
        actual = _content_digest(str(data["meta"]), {f: data[f] for f in fields})
        if stored != actual:
            raise SnapshotCorruptError(
                path,
                "content checksum mismatch",
                expected_checksum=stored,
                actual_checksum=actual,
            )

    config = CFSFConfig(**meta["config"])
    model = CFSF(config)
    scale = tuple(meta["rating_scale"])
    train = RatingMatrix(data["train_values"], data["train_mask"], rating_scale=scale)
    model._train = train
    model.gis = GlobalItemSimilarity(
        sim=data["gis_sim"],
        neighbours=data["gis_neighbours"].astype(np.intp),
        threshold=float(meta["gis_threshold"]),
        centering=meta["gis_centering"],
    )
    if int(version) >= 2:
        model.gis.cache = NeighborCache(
            indices=data["nbr_indices"].astype(np.int32),
            sims32=data["nbr_sims"].astype(np.float32),
            counts=data["nbr_counts"].astype(np.int32),
            m=int(meta["nbr_cache_m"]),
        )
    # v1 snapshots carry no cache; build_online_kernel below rebuilds it
    # from the GIS (identical values, just a slower load).
    model.clusters = UserClusters(
        labels=data["cluster_labels"].astype(np.intp),
        centroids=data["cluster_centroids"],
        similarities=data["cluster_similarities"],
        n_iter=int(meta["kmeans_n_iter"]),
        converged=bool(meta["kmeans_converged"]),
    )
    model.smoothed = SmoothedRatings(
        values=data["smoothed_values"],
        observed_mask=data["smoothed_observed"],
        deviations=data["smoothed_deviations"],
        deviation_counts=data["smoothed_counts"],
        user_means=data["smoothed_user_means"],
        labels=data["cluster_labels"].astype(np.intp),
    )
    members = tuple(
        np.nonzero(model.clusters.labels == c)[0].astype(np.intp)
        for c in range(model.clusters.n_clusters)
    )
    model.icluster = IClusterIndex(
        affinity=data["icluster_affinity"],
        ranking=data["icluster_ranking"].astype(np.intp),
        cluster_members=members,
    )
    model._item_means = train.item_means()
    model._global_mean = train.global_mean()
    model._cache = LRUCache(maxsize=config.cache_size)
    # Restore the online hot path (fusion kernel + affinity factors) so
    # the first request after a (re)load serves at steady-state speed.
    model.build_online_kernel()
    return model
