"""Saving and loading fitted CFSF models.

The offline phase is the expensive part of CFSF by design; a serving
deployment fits once in the backend and ships the artefacts to request
handlers.  This module serialises the entire fitted state — the
training matrix, the GIS (similarities + sorted neighbour lists), the
clustering, the smoothing output, and the iCluster index — into a
single compressed ``.npz`` alongside the JSON-encoded configuration,
and restores a bit-identical model.

The format is plain NumPy: no pickle of code objects, so snapshots are
loadable across library versions as long as the array schema (listed
in :data:`_ARRAY_FIELDS`) is intact, and safe to share (nothing
executes on load).
"""

from __future__ import annotations

import dataclasses
import json
import os

import numpy as np

from repro.core.clustering import UserClusters
from repro.core.config import CFSFConfig
from repro.core.gis import GlobalItemSimilarity
from repro.core.icluster import IClusterIndex
from repro.core.model import CFSF
from repro.core.smoothing import SmoothedRatings
from repro.data.matrix import RatingMatrix
from repro.utils.cache import LRUCache

__all__ = ["save_model", "load_model"]

#: Schema version written into every snapshot.
FORMAT_VERSION = 1

_ARRAY_FIELDS = (
    "train_values",
    "train_mask",
    "gis_sim",
    "gis_neighbours",
    "cluster_labels",
    "cluster_centroids",
    "cluster_similarities",
    "smoothed_values",
    "smoothed_observed",
    "smoothed_deviations",
    "smoothed_counts",
    "smoothed_user_means",
    "icluster_affinity",
    "icluster_ranking",
)


def save_model(model: CFSF, path: str) -> None:
    """Serialise a fitted CFSF to ``path`` (``.npz``, compressed).

    Raises
    ------
    ValueError
        If the model has not been fitted.
    """
    train = model._train
    if train is None or model.gis is None or model.smoothed is None:
        raise ValueError("cannot save an unfitted CFSF model")
    assert model.clusters is not None and model.icluster is not None

    meta = {
        "format_version": FORMAT_VERSION,
        "config": dataclasses.asdict(model.config),
        "rating_scale": list(train.rating_scale),
        "gis_threshold": model.gis.threshold,
        "gis_centering": model.gis.centering,
        "kmeans_n_iter": model.clusters.n_iter,
        "kmeans_converged": model.clusters.converged,
    }
    arrays = {
        "train_values": train.values,
        "train_mask": train.mask,
        "gis_sim": model.gis.sim,
        "gis_neighbours": model.gis.neighbours,
        "cluster_labels": model.clusters.labels,
        "cluster_centroids": model.clusters.centroids,
        "cluster_similarities": model.clusters.similarities,
        "smoothed_values": model.smoothed.values,
        "smoothed_observed": model.smoothed.observed_mask,
        "smoothed_deviations": model.smoothed.deviations,
        "smoothed_counts": model.smoothed.deviation_counts,
        "smoothed_user_means": model.smoothed.user_means,
        "icluster_affinity": model.icluster.affinity,
        "icluster_ranking": model.icluster.ranking,
    }
    tmp = f"{path}.tmp"
    np.savez_compressed(tmp, meta=json.dumps(meta), **arrays)
    # numpy appends .npz to a name without it.
    produced = tmp if os.path.exists(tmp) else f"{tmp}.npz"
    os.replace(produced, path)


def load_model(path: str) -> CFSF:
    """Restore a fitted CFSF from a :func:`save_model` snapshot."""
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"]))
        if meta.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported snapshot version {meta.get('format_version')!r}"
            )
        missing = [f for f in _ARRAY_FIELDS if f not in archive]
        if missing:
            raise ValueError(f"snapshot is missing arrays: {missing}")
        data = {f: archive[f] for f in _ARRAY_FIELDS}

    config = CFSFConfig(**meta["config"])
    model = CFSF(config)
    scale = tuple(meta["rating_scale"])
    train = RatingMatrix(data["train_values"], data["train_mask"], rating_scale=scale)
    model._train = train
    model.gis = GlobalItemSimilarity(
        sim=data["gis_sim"],
        neighbours=data["gis_neighbours"].astype(np.intp),
        threshold=float(meta["gis_threshold"]),
        centering=meta["gis_centering"],
    )
    model.clusters = UserClusters(
        labels=data["cluster_labels"].astype(np.intp),
        centroids=data["cluster_centroids"],
        similarities=data["cluster_similarities"],
        n_iter=int(meta["kmeans_n_iter"]),
        converged=bool(meta["kmeans_converged"]),
    )
    model.smoothed = SmoothedRatings(
        values=data["smoothed_values"],
        observed_mask=data["smoothed_observed"],
        deviations=data["smoothed_deviations"],
        deviation_counts=data["smoothed_counts"],
        user_means=data["smoothed_user_means"],
        labels=data["cluster_labels"].astype(np.intp),
    )
    members = tuple(
        np.nonzero(model.clusters.labels == c)[0].astype(np.intp)
        for c in range(model.clusters.n_clusters)
    )
    model.icluster = IClusterIndex(
        affinity=data["icluster_affinity"],
        ranking=data["icluster_ranking"].astype(np.intp),
        cluster_members=members,
    )
    model._item_means = train.item_means()
    model._global_mean = train.global_mean()
    model._cache = LRUCache(maxsize=config.cache_size)
    return model
