"""Human-readable explanations of CFSF predictions.

Herlocker et al. (CSCW 2000) showed that recommendations users can
inspect are trusted and acted on more; neighbourhood methods are prized
over latent-factor ones precisely because their predictions decompose
into visible evidence.  CFSF's local matrix makes that decomposition
direct: a prediction is a weighted blend of

* the active user's own (given or smoothed) ratings on the most
  similar items (SIR'),
* the most like-minded users' ratings of the target item (SUR'),
* the like-minded users' ratings of the similar items (SUIR').

:func:`explain` reconstructs exactly the quantities the fused
prediction used — via the same :class:`~repro.core.local_matrix.LocalMatrix`
path the tests verify against the batched predictor — and ranks the
top contributing items and users by their weight share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.fusion import fuse, fusion_weights
from repro.core.model import CFSF
from repro.data.matrix import RatingMatrix
from repro.utils.validation import check_positive_int

__all__ = ["Contribution", "Explanation", "explain"]


@dataclass(frozen=True)
class Contribution:
    """One piece of evidence behind a prediction."""

    kind: str          # "item" or "user"
    index: int         # item id or training-user row
    similarity: float  # GIS / Eq. 10 similarity
    rating: float      # the rating this evidence contributed
    weight_share: float  # fraction of its component's total weight
    observed: bool     # True = original rating, False = smoothed


@dataclass(frozen=True)
class Explanation:
    """A fused prediction with its ranked evidence."""

    user: int
    item: int
    prediction: float
    sir: float
    sur: float
    suir: float
    component_weights: tuple[float, float, float]
    top_items: tuple[Contribution, ...] = field(repr=False)
    top_users: tuple[Contribution, ...] = field(repr=False)

    def render(self) -> str:
        """A terminal-friendly multi-line explanation."""
        w_sir, w_sur, w_suir = self.component_weights
        lines = [
            f"prediction for user {self.user}, item {self.item}: "
            f"{self.prediction:.2f}",
            f"  = {w_sir:.2f} x SIR'({self.sir:.2f})"
            f" + {w_sur:.2f} x SUR'({self.sur:.2f})"
            f" + {w_suir:.2f} x SUIR'({self.suir:.2f})",
            "  because you rated similar items:",
        ]
        for c in self.top_items:
            prov = "you rated" if c.observed else "estimated for you"
            lines.append(
                f"    item {c.index}: {c.rating:.1f} ({prov}, "
                f"similarity {c.similarity:.2f}, {c.weight_share:.0%} of SIR')"
            )
        lines.append("  and users with matching taste rated it:")
        for c in self.top_users:
            prov = "rated it" if c.observed else "estimated"
            lines.append(
                f"    user {c.index}: {c.rating:.1f} ({prov}, "
                f"similarity {c.similarity:.2f}, {c.weight_share:.0%} of SUR')"
            )
        return "\n".join(lines)


def explain(
    model: CFSF,
    given: RatingMatrix,
    user: int,
    item: int,
    *,
    top_n: int = 3,
) -> Explanation:
    """Explain one CFSF prediction.

    Parameters
    ----------
    model:
        A fitted CFSF.
    given, user, item:
        The request being explained.
    top_n:
        Evidence items/users to include, ranked by weight share.
    """
    check_positive_int(top_n, "top_n")
    local = model.build_local(given, user, item)
    fused = fuse(
        local,
        lam=model.config.lam,
        delta=model.config.delta,
        adjust_biases=model.config.adjust_biases,
    )
    weights = fusion_weights(model.config.lam, model.config.delta)

    # --- item evidence (SIR' weights) ----------------------------------
    sir_w = local.active_user_weights * np.maximum(local.item_sims, 0.0)
    total = sir_w.sum()
    item_contribs: list[Contribution] = []
    if total > 0:
        order = np.argsort(-sir_w, kind="stable")[:top_n]
        for idx in order:
            if sir_w[idx] <= 0:
                break
            item_contribs.append(
                Contribution(
                    kind="item",
                    index=int(local.item_indices[idx]),
                    similarity=float(local.item_sims[idx]),
                    rating=float(local.active_user_ratings[idx]),
                    weight_share=float(sir_w[idx] / total),
                    observed=bool(local.active_user_weights[idx] == model.config.epsilon),
                )
            )

    # --- user evidence (SUR' weights) ----------------------------------
    sur_w = local.active_item_weights * np.maximum(local.user_sims, 0.0)
    total_u = sur_w.sum()
    user_contribs: list[Contribution] = []
    if total_u > 0:
        order = np.argsort(-sur_w, kind="stable")[:top_n]
        for idx in order:
            if sur_w[idx] <= 0:
                break
            user_contribs.append(
                Contribution(
                    kind="user",
                    index=int(local.user_indices[idx]),
                    similarity=float(local.user_sims[idx]),
                    rating=float(local.active_item_ratings[idx]),
                    weight_share=float(sur_w[idx] / total_u),
                    observed=bool(
                        local.active_item_weights[idx] == model.config.epsilon
                    ),
                )
            )

    train = model._require_fitted()
    return Explanation(
        user=int(user),
        item=int(item),
        prediction=float(train.clip(np.array([fused.value]))[0]),
        sir=fused.sir,
        sur=fused.sur,
        suir=fused.suir,
        component_weights=weights,
        top_items=tuple(item_contribs),
        top_users=tuple(user_contribs),
    )
