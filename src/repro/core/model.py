"""The CFSF recommender (Algorithm 1 of the paper).

Offline phase (:meth:`CFSF.fit`):

1. ``Creating GIS`` — global item–item PCC, thresholded, sorted
   (:mod:`repro.core.gis`).
2. ``Clustering users`` — K-means under PCC (:mod:`repro.core.clustering`).
3. ``Smoothing user ratings`` within each cluster
   (:mod:`repro.core.smoothing`) and building the per-user iCluster
   ranking (:mod:`repro.core.icluster`).

Online phase (:meth:`CFSF.predict_many`), per active user:

4. Fold the active user in: rank clusters by Eq. 9 affinity against
   the user's given profile, assign the best cluster, and densify the
   profile with that cluster's smoothing (the paper "inserts a record
   in the item-user matrix" for each active user).
5. Build the candidate set by walking the iCluster ranking and select
   the top-K like-minded users with the ε-weighted PCC of Eq. 10.
6. For each requested item, pick the top-M similar items from the GIS,
   extract the local matrix, and fuse SIR'/SUR'/SUIR' (Eqs. 12–14).

Two equivalent online implementations exist:

* :meth:`CFSF.predict_one_detailed` — the literal per-request path via
  :class:`~repro.core.local_matrix.LocalMatrix` and
  :func:`~repro.core.fusion.fuse`; transparent, introspectable, used by
  tests and ablations.
* :meth:`CFSF.predict_many` — the production path: a batched
  :class:`~repro.core.fusion.FusionKernel` evaluates every request of a
  batch over stacked local matrices, reading top-M neighbourhoods from
  the offline-built :class:`~repro.core.gis.NeighborCache`.  The test
  suite asserts the two agree to float precision; the batched path is
  what the scalability experiments (Fig. 5) time.

Per-active-user intermediate results (cluster assignment, densified
profile, top-K selection) are LRU-cached across calls, reproducing the
paper's "caching intermediate results" optimisation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from repro.baselines.base import Recommender
from repro.core.config import CFSFConfig
from repro.core.clustering import UserClusters, cluster_users
from repro.core.fusion import FusedPrediction, FusionKernel, PreparedActiveUser, fuse
from repro.core.gis import GlobalItemSimilarity, build_gis
from repro.core.icluster import (
    IClusterIndex,
    PreparedAffinity,
    build_icluster,
    prepare_affinity,
    profile_cluster_affinity,
    user_cluster_affinity,
)
from repro.core.local_matrix import LocalMatrix, build_local_matrix
from repro.core.selection import TopKUsers, select_top_k_users
from repro.core.smoothing import SmoothedRatings, smooth_ratings
from repro.data.matrix import RatingMatrix
from repro.obs import span
from repro.serving.errors import InvalidRequestError
from repro.utils.cache import LRUCache

__all__ = ["CFSF", "ActiveUserState"]


@dataclass(frozen=True)
class ActiveUserState:
    """Cached per-active-user online artefacts (steps 4–5)."""

    profile: np.ndarray          # (Q,) dense given-or-smoothed ratings
    observed: np.ndarray         # (Q,) True where given
    mean: float                  # mean of given ratings
    cluster_ranking: np.ndarray  # (L,) clusters by descending affinity
    top_k: TopKUsers             # selected like-minded users
    prepared: PreparedActiveUser | None = None  # kernel-side gathered arrays


class CFSF(Recommender):
    """Collaborative Filtering with Smoothing and Fusing.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.CFSFConfig`; keyword overrides are
        applied on top, so ``CFSF(top_m_items=50)`` works directly.

    Examples
    --------
    >>> from repro.data import make_movielens_like, make_split
    >>> split = make_split(make_movielens_like(seed=0).ratings,
    ...                    n_train_users=300, given_n=10)
    >>> model = CFSF().fit(split.train)
    >>> users, items, truth = split.targets_arrays()
    >>> preds = model.predict_many(split.given, users[:5], items[:5])
    >>> preds.shape
    (5,)
    """

    def __init__(self, config: CFSFConfig | None = None, **overrides: Any) -> None:
        cfg = config or CFSFConfig()
        if overrides:
            cfg = cfg.with_(**overrides)
        self.config = cfg
        self.gis: GlobalItemSimilarity | None = None
        self.clusters: UserClusters | None = None
        self.smoothed: SmoothedRatings | None = None
        self.icluster: IClusterIndex | None = None
        self.kernel: FusionKernel | None = None
        self._kernel_params: tuple | None = None
        self._affinity_prep: PreparedAffinity | None = None
        self._cache = LRUCache(maxsize=cfg.cache_size)
        # Per-thread kernel override (see borrowed_kernel) plus a lock
        # so concurrent _require_kernel calls cannot race a rebuild.
        self._tl_kernel = threading.local()
        self._kernel_build_lock = threading.Lock()

    # Thread-locals and locks cannot cross a pickle boundary (the
    # spawn-mode parallel executor ships the fitted model to workers);
    # each process re-creates its own.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_tl_kernel", None)
        state.pop("_kernel_build_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._tl_kernel = threading.local()
        self._kernel_build_lock = threading.Lock()

    @property
    def name(self) -> str:
        return "CFSF"

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------
    def fit(self, train: RatingMatrix) -> "CFSF":
        """Run the offline phase (GIS, clustering, smoothing, iCluster).

        Each stage is traced as a child span of ``model.fit``
        (``gis.build``, ``cluster.fit``, ``smooth.apply``,
        ``icluster.build``) when an observability registry is active —
        see :mod:`repro.obs` — so per-stage offline timings are
        measurable without ad-hoc stopwatches.
        """
        super().fit(train)
        cfg = self.config
        with span(
            "model.fit", model=self.name, n_users=train.n_users, n_items=train.n_items
        ):
            self.gis = build_gis(
                train,
                threshold=cfg.gis_threshold,
                centering=cfg.centering,
                min_overlap=cfg.min_overlap,
            )
            self.clusters = cluster_users(
                train,
                cfg.n_clusters,
                seed=cfg.kmeans_seed,
                max_iter=cfg.kmeans_max_iter,
                centering=cfg.centering,
                min_overlap=cfg.min_overlap,
            )
            self.smoothed = smooth_ratings(
                train,
                self.clusters.labels,
                self.clusters.n_clusters,
                shrinkage=cfg.smoothing_shrinkage,
            )
            self.icluster = build_icluster(self.smoothed, train.mask, train.values)
        self._item_means = train.item_means()
        self._global_mean = train.global_mean()
        self.build_online_kernel()
        return self

    def build_online_kernel(self) -> None:
        """Materialise the online hot-path structures from the offline state.

        Attaches the top-M :class:`~repro.core.gis.NeighborCache` to the
        GIS, builds the batched :class:`~repro.core.fusion.FusionKernel`
        and precomputes the cluster-side Eq. 9 factors.  Called by
        :meth:`fit` and by snapshot restore; idempotent, and safe to
        call again after mutating the offline state (it clears the
        per-active-user cache so stale prepared arrays are dropped).
        """
        train, gis, smoothed, _ = self._require_online()
        cfg = self.config
        cache = gis.attach_cache(cfg.top_m_items).narrowed(cfg.top_m_items)
        self.kernel = FusionKernel(
            smoothed,
            cache,
            self._item_means,
            self._global_mean,
            lam=cfg.lam,
            delta=cfg.delta,
            epsilon=cfg.epsilon,
            adjust_biases=cfg.adjust_biases,
        )
        self.kernel.warm_prep_slab(cfg.top_k_users)
        self._kernel_params = (cfg.lam, cfg.delta, cfg.epsilon, cfg.adjust_biases, cfg.top_m_items)
        self._affinity_prep = prepare_affinity(smoothed.deviations, smoothed.deviation_counts)
        self._cache.clear()

    def _require_online(
        self,
    ) -> tuple[RatingMatrix, GlobalItemSimilarity, SmoothedRatings, IClusterIndex]:
        train = self._require_fitted()
        assert self.gis is not None and self.smoothed is not None and self.icluster is not None
        return train, self.gis, self.smoothed, self.icluster

    # ------------------------------------------------------------------
    # Online phase: per-user state (steps 4-5)
    # ------------------------------------------------------------------
    def _given_fingerprint(self, given: RatingMatrix) -> int:
        """Cheap identity for a given-matrix, for the cross-call cache."""
        return hash(given)

    def _validate_given(self, given: RatingMatrix) -> None:
        """Reject NaN / out-of-scale given ratings at the boundary.

        Historically a poisoned given matrix (possible when an
        ingestion layer bypasses :class:`RatingMatrix` validation)
        failed deep inside the fusion kernel with an opaque NaN
        result; now it is rejected here with a typed
        :class:`~repro.serving.errors.InvalidRequestError`.  The scan
        is O(P·Q) so its verdict is memoised per given-fingerprint in
        the online cache.
        """
        key = ("given_valid", self._given_fingerprint(given))
        if self._cache.get(key) is not None:
            return
        observed = given.values[given.mask]
        if observed.size:
            if not np.isfinite(observed).all():
                raise InvalidRequestError(
                    "given matrix contains non-finite observed ratings"
                )
            lo, hi = self._require_fitted().rating_scale
            omin, omax = float(observed.min()), float(observed.max())
            if omin < lo or omax > hi:
                raise InvalidRequestError(
                    f"given ratings lie in [{omin:g}, {omax:g}], outside the "
                    f"trained scale [{lo:g}, {hi:g}]"
                )
        self._cache.put(key, True)

    def active_user_state(self, given: RatingMatrix, user: int) -> ActiveUserState:
        """Fold one active user in and select their top-K users (cached)."""
        if not 0 <= int(user) < given.n_users:
            raise InvalidRequestError(
                f"user {user} out of range [0, {given.n_users})"
            )
        key = (self._given_fingerprint(given), int(user))
        state = self._cache.get(key)
        if state is not None:
            return state
        state = self._compute_active_state(given, user)
        self._cache.put(key, state)
        return state

    def _compute_active_state(self, given: RatingMatrix, user: int) -> ActiveUserState:
        train, _gis, smoothed, icluster = self._require_online()
        cfg = self.config
        items_idx, ratings = given.user_profile(user)
        mean = float(ratings.mean()) if ratings.size else train.global_mean()
        active_dev = ratings - mean

        if self._affinity_prep is not None:
            affinity = profile_cluster_affinity(
                items_idx, active_dev, self._affinity_prep
            )
        else:
            affinity = user_cluster_affinity(
                given.values[user : user + 1],
                given.mask[user : user + 1],
                np.array([mean]),
                smoothed.deviations,
                smoothed.deviation_counts,
            )[0]
        ranking = np.argsort(-affinity, kind="stable").astype(np.intp)

        # Smooth the active profile from the top clusters.  With one
        # cluster this is exactly the Eq. 7 treatment a training user
        # gets; blending several (affinity-weighted) hedges the noisy
        # cluster pick a Given5 profile produces.
        n_soft = min(cfg.active_smoothing_clusters, ranking.size) or 1
        chosen = ranking[:n_soft]
        weights = np.maximum(affinity[chosen], 0.0)
        if weights.sum() <= 0.0:
            weights = np.ones(chosen.size)
        weights = weights / weights.sum()
        smoothed_row = mean + weights @ smoothed.deviations[chosen]
        lo, hi = train.rating_scale
        np.clip(smoothed_row, lo, hi, out=smoothed_row)
        profile = np.where(given.mask[user], given.values[user], smoothed_row)

        candidates = icluster.candidates_for_ranking(
            ranking,
            cfg.effective_candidate_pool(),
            max_clusters=cfg.candidate_clusters,
        )
        if candidates.size == 0:
            candidates = np.arange(train.n_users, dtype=np.intp)
        kernel = getattr(self._tl_kernel, "kernel", None) or self.kernel
        top_k = select_top_k_users(
            items_idx,
            active_dev,
            candidates,
            smoothed,
            k=cfg.top_k_users,
            epsilon=cfg.epsilon,
            weight_matrix=kernel.weight_matrix if kernel is not None else None,
            deviation_matrix=kernel.deviation_matrix if kernel is not None else None,
        )
        observed = given.mask[user].copy()
        prepared = (
            kernel.prepare_user(top_k.users, top_k.similarities, profile, observed, mean)
            if kernel is not None
            else None
        )
        return ActiveUserState(
            profile=profile,
            observed=observed,
            mean=mean,
            cluster_ranking=ranking,
            top_k=top_k,
            prepared=prepared,
        )

    # ------------------------------------------------------------------
    # Online phase: literal single-request path (step 6)
    # ------------------------------------------------------------------
    def build_local(self, given: RatingMatrix, user: int, item: int) -> LocalMatrix:
        """Construct the local M x K matrix for one request."""
        train, gis, smoothed, _ = self._require_online()
        if not 0 <= item < train.n_items:
            raise InvalidRequestError(
                f"item {item} out of range [0, {train.n_items})"
            )
        self._validate_given(given)
        kernel = self._require_kernel()
        state = self.active_user_state(given, user)
        item_idx, item_sims = gis.top_m(item, self.config.top_m_items)
        return build_local_matrix(
            active_item=item,
            item_indices=item_idx,
            item_sims=item_sims,
            user_indices=state.top_k.users,
            user_sims=state.top_k.similarities,
            smoothed=smoothed,
            active_profile=state.profile,
            active_observed=state.observed,
            active_user_mean=state.mean,
            epsilon=self.config.epsilon,
            item_means=self._item_means,
            global_mean=self._global_mean,
            weight_matrix=kernel.weight_matrix,
        )

    def predict_one_detailed(
        self, given: RatingMatrix, user: int, item: int
    ) -> FusedPrediction:
        """One request through the literal LocalMatrix + fuse path."""
        local = self.build_local(given, user, item)
        return fuse(
            local,
            lam=self.config.lam,
            delta=self.config.delta,
            adjust_biases=self.config.adjust_biases,
        )

    # ------------------------------------------------------------------
    # Online phase: batched path
    # ------------------------------------------------------------------
    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        users, items = self._check_request(given, users, items)
        if users.size == 0:
            return np.empty(0, dtype=np.float64)
        self._validate_given(given)
        self._require_online()
        kernel = self._require_kernel()
        out = np.empty(users.shape, dtype=np.float64)

        diffs = np.diff(users)
        boundaries = np.nonzero(diffs)[0]
        if boundaries.size == 0:
            # Single-user batch (the common live-traffic shape): skip
            # the sort/split bookkeeping entirely.
            prepared = self._prepared_for(given, int(users[0]), kernel)
            return self._clip(kernel.fuse_many([(prepared, items)]))

        if (diffs[boundaries] > 0).all():
            # Already user-sorted (the live-traffic shape after a
            # router groups requests): contiguous runs are the blocks
            # and the fused output is already in request order, so the
            # argsort / scatter bookkeeping drops out entirely.
            edges = [0, *(boundaries + 1).tolist(), users.size]
            fuse_blocks = []
            for start, stop in zip(edges[:-1], edges[1:]):
                prepared = self._prepared_for(given, int(users[start]), kernel)
                fuse_blocks.append((prepared, items[start:stop]))
            return self._clip(kernel.fuse_many(fuse_blocks))

        order = np.argsort(users, kind="stable")
        boundaries = np.nonzero(np.diff(users[order]))[0] + 1
        blocks = np.split(np.arange(users.size)[order], boundaries)
        fuse_blocks = []
        for block in blocks:
            prepared = self._prepared_for(given, int(users[block[0]]), kernel)
            fuse_blocks.append((prepared, items[block]))
        fused = kernel.fuse_many(fuse_blocks)
        pos = 0
        for block in blocks:
            out[block] = fused[pos : pos + block.size]
            pos += block.size
        return self._clip(out)

    def _prepared_for(
        self, given: RatingMatrix, user: int, kernel: FusionKernel
    ) -> PreparedActiveUser:
        """Cached prepared-user arrays for ``user`` (preparing if stale)."""
        state = self.active_user_state(given, user)
        prepared = state.prepared
        if prepared is None:  # state cached before the kernel existed
            prepared = kernel.prepare_user(
                state.top_k.users,
                state.top_k.similarities,
                state.profile,
                state.observed,
                state.mean,
            )
        return prepared

    def warm_online(self) -> None:
        """Ensure the online hot-path structures exist (idempotent).

        Serving layers call this before forking workers or taking
        traffic so the first request does not pay the one-off kernel
        build.  A fresh kernel is a no-op; only a missing or stale one
        (config changed since fit) is rebuilt.
        """
        self._require_kernel()

    @contextmanager
    def borrowed_kernel(self, kernel: FusionKernel) -> Iterator[FusionKernel]:
        """Route this thread's predictions through *kernel*.

        The serving layer's :class:`~repro.serving.pool.KernelPool`
        checks out per-worker :meth:`FusionKernel.clone` copies and
        pins one here for the duration of a dispatch, so concurrent
        ``predict_many`` calls never share the non-re-entrant scratch
        buffers.  The override is **per thread** (a ``threading.local``),
        so borrowing on one thread does not disturb others, and it
        nests (the previous override is restored on exit).
        """
        prev = getattr(self._tl_kernel, "kernel", None)
        self._tl_kernel.kernel = kernel
        try:
            yield kernel
        finally:
            self._tl_kernel.kernel = prev

    def _require_kernel(self) -> FusionKernel:
        """The batched fusion kernel, (re)built when absent or stale.

        A thread-local :meth:`borrowed_kernel` override wins outright —
        the pool that lent it owns its lifecycle.  Staleness covers
        direct ``model.config`` replacement after fit (the ablation
        suites flip ``lam``/``delta``/``adjust_biases`` on a fitted
        model): the kernel bakes those in, so a changed config
        triggers a rebuild (serialised by a lock so concurrent callers
        cannot race the rebuild).
        """
        borrowed = getattr(self._tl_kernel, "kernel", None)
        if borrowed is not None:
            return borrowed
        cfg = self.config
        params = (cfg.lam, cfg.delta, cfg.epsilon, cfg.adjust_biases, cfg.top_m_items)
        if self.kernel is None or params != getattr(self, "_kernel_params", None):
            with self._kernel_build_lock:
                if self.kernel is None or params != getattr(self, "_kernel_params", None):
                    self.build_online_kernel()
        assert self.kernel is not None
        return self.kernel

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def offline_summary(self) -> dict[str, Any]:
        """Diagnostics of the fitted offline state (for reports/tests)."""
        train, gis, smoothed, _ = self._require_online()
        assert self.clusters is not None
        return {
            "n_users": train.n_users,
            "n_items": train.n_items,
            "gis_threshold": gis.threshold,
            "gis_sparsity": gis.sparsity(),
            "n_clusters": self.clusters.n_clusters,
            "kmeans_iterations": self.clusters.n_iter,
            "kmeans_converged": self.clusters.converged,
            "cluster_sizes": self.clusters.sizes().tolist(),
            "smoothed_fraction": smoothed.smoothed_fraction(),
            "cache_size": self._cache.maxsize,
            "neighbor_cache_bytes": gis.cache.memory_bytes() if gis.cache is not None else 0,
            "kernel_bytes": self.kernel.memory_bytes() if self.kernel is not None else 0,
        }

    def cache_stats(self) -> dict[str, float]:
        """Hit/miss counters of the online intermediate-result cache."""
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "hit_rate": self._cache.hit_rate,
            "entries": len(self._cache),
        }
