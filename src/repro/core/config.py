"""CFSF hyper-parameter configuration.

All knobs named in the paper, with the defaults of Section V-C.1:
``C=30, lambda=0.8, delta=0.1, K=25, M=95, w=0.35`` (the paper calls
the smoothed/original weighting parameter both ``w`` and ``epsilon``;
we use ``epsilon`` for the scalar and reserve ``w`` for the per-rating
weight it induces via Eq. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.similarity import Centering
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["CFSFConfig", "PAPER_DEFAULTS"]


@dataclass(frozen=True)
class CFSFConfig:
    """Hyper-parameters of the CFSF model.

    Attributes
    ----------
    n_clusters:
        ``C`` — number of user clusters for smoothing (paper: 30;
        Fig. 4 sweeps 10..100).
    top_m_items:
        ``M`` — similar items picked from the GIS per request
        (paper: 95; Fig. 2 sweeps 10..100).
    top_k_users:
        ``K`` — like-minded users per request (paper: 25; Fig. 3
        sweeps 10..100 and finds 20–40 best).
    lam:
        ``lambda`` — SUR' weight within the non-SUIR' mass (paper: 0.8;
        Fig. 6).  ``lam=1`` drops SIR', ``lam=0`` drops SUR'.
    delta:
        ``delta`` — SUIR' weight (paper: 0.1; Fig. 7).  ``delta=1``
        predicts from SUIR' alone.
    epsilon:
        ``w``/``epsilon`` of Eq. 11 — weight of *original* ratings; a
        smoothed rating weighs ``1 − epsilon``.  Paper: 0.35; Fig. 8
        finds 0.2–0.4 best.  (Note the direction: the paper's Fig. 8
        optimum below 0.5 means smoothed ratings carry *more* weight
        than original ones during neighbour selection and fusion.)
    gis_threshold:
        Minimum |similarity| kept in the GIS (Section IV-B's "set
        thresholds for Eq. 5 to filter less important items").
        0.0 keeps everything.
    centering:
        PCC centering convention used everywhere (``"global_mean"``
        matches the paper's Eq. 5/6 literally).
    min_overlap:
        Minimum co-ratings for a similarity to be trusted.
    candidate_clusters:
        How many top iCluster entries feed the online candidate set
        (``None`` = all clusters, i.e. the candidate set is the whole
        training population but scanned in iCluster order and cut to
        ``candidate_pool`` users).
    candidate_pool:
        Size cap of the online candidate user set from which the top-K
        like-minded users are selected (``None`` = 4*K, a small
        multiple so the online phase stays O(M*K)-ish as claimed).
    cache_size:
        LRU entries for per-active-user intermediate results
        (Section V-D's "caching intermediate results"); 0 disables.
    kmeans_max_iter, kmeans_seed:
        K-means iteration cap and seed.
    adjust_biases:
        When ``True`` (default), SIR' and SUIR' predict *deviations*
        from item/user means instead of raw ratings (SUR' already does
        in Eq. 12, whose offset form the paper adopted).  The raw Eq.
        12 forms (``False``) are systematically biased on data with
        item-quality offsets — on the synthetic substrate, which
        plants the popularity/quality coupling the paper describes,
        the raw forms inflate MAE by ~0.1; the adjusted forms restore
        the paper's component orderings.  Benchmarked in
        ``bench_ablation_components``.
    smoothing_shrinkage:
        Empirical-Bayes shrinkage β for the Eq. 8 cluster deviations
        (0.0 = the literal paper formula).  See
        :func:`repro.core.smoothing.cluster_deviations`.
    active_smoothing_clusters:
        How many top-affinity clusters to blend when smoothing an
        *active* user's profile online.  1 = the hard assignment a
        training user gets in Eq. 7; a few clusters hedge the noisy
        cluster pick produced by a Given5 profile.
    """

    n_clusters: int = 30
    top_m_items: int = 95
    top_k_users: int = 25
    lam: float = 0.8
    delta: float = 0.1
    epsilon: float = 0.35
    gis_threshold: float = 0.0
    centering: Centering = "global_mean"
    min_overlap: int = 2
    candidate_clusters: int | None = None
    candidate_pool: int | None = None
    cache_size: int = 4096
    kmeans_max_iter: int = 30
    kmeans_seed: int = 0
    adjust_biases: bool = True
    smoothing_shrinkage: float = 0.0
    active_smoothing_clusters: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.n_clusters, "n_clusters")
        check_positive_int(self.top_m_items, "top_m_items")
        check_positive_int(self.top_k_users, "top_k_users")
        check_fraction(self.lam, "lam")
        check_fraction(self.delta, "delta")
        check_fraction(self.epsilon, "epsilon")
        check_fraction(self.gis_threshold, "gis_threshold")
        check_positive_int(self.min_overlap, "min_overlap", minimum=1)
        if self.candidate_clusters is not None:
            check_positive_int(self.candidate_clusters, "candidate_clusters")
        if self.candidate_pool is not None:
            check_positive_int(self.candidate_pool, "candidate_pool")
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")
        check_positive_int(self.kmeans_max_iter, "kmeans_max_iter")
        if self.smoothing_shrinkage < 0:
            raise ValueError(
                f"smoothing_shrinkage must be >= 0, got {self.smoothing_shrinkage}"
            )
        check_positive_int(self.active_smoothing_clusters, "active_smoothing_clusters")

    def with_(self, **changes: Any) -> "CFSFConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)

    def effective_candidate_pool(self) -> int:
        """Resolved candidate-pool size (``4*K`` when unset)."""
        return self.candidate_pool if self.candidate_pool is not None else 4 * self.top_k_users


#: The exact parameterisation of Section V-C.1.
PAPER_DEFAULTS = CFSFConfig()
