"""Incremental GIS maintenance (Section VI: "keep GIS up-to-date").

The paper leaves open how the Global Item Similarity matrix should
track a live rating stream without periodic full recomputation.  This
module closes that gap with exact sufficient-statistic maintenance:

For every item pair the co-rated Pearson correlation is a function of
six pairwise sums — ``n, Σx, Σy, Σxy, Σx², Σy²`` over the co-raters.
Adding (or removing) one rating ``(u, i, r)`` only touches the pairs
``(i, j)`` for the items ``j`` the user has rated, so an update costs
O(|I_u|) — about 94 pair updates per new MovieLens rating versus the
O(P·Q²)-ish full rebuild.

The correlation uses co-rated-mean centering (``corated_mean`` in
:mod:`repro.similarity`), the one PCC variant whose sufficient
statistics are local to the pair; the paper's global-mean centering
couples every pair containing item *i* to *i*'s overall mean, which
cannot be maintained pair-locally.  The accuracy impact of the variant
switch is measured in ``bench_ext_incremental``.

Neighbour rankings (the sorted GIS rows the online phase slices) are
re-derived lazily per dirty item, so a burst of updates costs one sort
per touched item at the next read, not per update.
"""

from __future__ import annotations

import numpy as np

from repro.data.matrix import RatingMatrix
from repro.similarity import pairwise_pcc
from repro.utils.validation import check_positive_int

__all__ = ["IncrementalGIS"]


class IncrementalGIS:
    """Exactly-maintained item–item PCC under a rating stream.

    Examples
    --------
    >>> from repro.data import make_movielens_like
    >>> rm = make_movielens_like(seed=0).ratings.subset_items(range(50))
    >>> gis = IncrementalGIS(rm)
    >>> gis.add_rating(0, 3, 4.0)       # user 0 rates item 3 with 4.0
    >>> sims = gis.sim_row(3)           # exact, no rebuild
    >>> sims.shape
    (50,)
    """

    def __init__(self, train: RatingMatrix, *, min_overlap: int = 2) -> None:
        check_positive_int(min_overlap, "min_overlap")
        self.min_overlap = min_overlap
        self._values = np.where(train.mask, train.values, 0.0).copy()
        self._mask = train.mask.copy()
        self.rating_scale = train.rating_scale

        R = self._values
        W = self._mask.astype(np.float64)
        R2 = R * R
        # Pairwise sufficient statistics, all (Q, Q).
        self._n = W.T @ W
        self._sx = R.T @ W    # Σ over co-raters of r(u, row-item)
        self._sxy = R.T @ R
        self._sxx = R2.T @ W
        # Σy/Σyy are the transposes of Σx/Σxx by symmetry; not stored.

        Q = train.n_items
        self._dirty = np.zeros(Q, dtype=bool)
        self._neighbours = self._full_neighbour_sort(self.full_sim())
        self.n_updates = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        """Catalogue size ``Q``."""
        return self._values.shape[1]

    @property
    def n_users(self) -> int:
        """Current user-row count (grows with :meth:`add_user`)."""
        return self._values.shape[0]

    def matrix(self) -> RatingMatrix:
        """Snapshot of the maintained rating matrix."""
        return RatingMatrix(
            self._values.copy(), self._mask.copy(), rating_scale=self.rating_scale
        )

    # ------------------------------------------------------------------
    # Stream operations
    # ------------------------------------------------------------------
    def add_user(self, profile_items: np.ndarray, profile_ratings: np.ndarray) -> int:
        """Fold a brand-new user in; returns their row index.

        The profile's ratings are applied through :meth:`add_rating`,
        so all pair statistics stay exact.
        """
        row = self.n_users
        self._values = np.vstack([self._values, np.zeros((1, self.n_items))])
        self._mask = np.vstack([self._mask, np.zeros((1, self.n_items), dtype=bool)])
        for item, rating in zip(np.asarray(profile_items), np.asarray(profile_ratings)):
            self.add_rating(row, int(item), float(rating))
        return row

    def add_rating(self, user: int, item: int, rating: float) -> None:
        """Apply one new rating; O(|I_user|) statistic updates.

        Re-rating (the pair already observed) is handled as
        remove-then-add so duplicates cannot skew the statistics.
        """
        self._check_pair(user, item)
        if self._mask[user, item]:
            self.remove_rating(user, item)
        others = np.nonzero(self._mask[user])[0]
        r_others = self._values[user, others]
        self._apply(item, others, rating, r_others, sign=+1.0)
        # The (i, i) self-pair.
        self._n[item, item] += 1.0
        self._sx[item, item] += rating
        self._sxy[item, item] += rating * rating
        self._sxx[item, item] += rating * rating
        self._values[user, item] = rating
        self._mask[user, item] = True
        self._mark_dirty(item, others)
        self.n_updates += 1

    def remove_rating(self, user: int, item: int) -> None:
        """Retract an existing rating (exact inverse of add)."""
        self._check_pair(user, item)
        if not self._mask[user, item]:
            raise ValueError(f"user {user} has no rating for item {item}")
        rating = self._values[user, item]
        self._values[user, item] = 0.0
        self._mask[user, item] = False
        others = np.nonzero(self._mask[user])[0]
        r_others = self._values[user, others]
        self._apply(item, others, rating, r_others, sign=-1.0)
        self._n[item, item] -= 1.0
        self._sx[item, item] -= rating
        self._sxy[item, item] -= rating * rating
        self._sxx[item, item] -= rating * rating
        self._mark_dirty(item, others)
        self.n_updates += 1

    def _apply(
        self,
        item: int,
        others: np.ndarray,
        rating: float,
        r_others: np.ndarray,
        *,
        sign: float,
    ) -> None:
        """Add/subtract the (item, others) pair contributions."""
        if others.size == 0:
            return
        self._n[item, others] += sign
        self._n[others, item] += sign
        self._sx[item, others] += sign * rating        # row view: x = item
        self._sx[others, item] += sign * r_others       # row view: x = other
        self._sxy[item, others] += sign * rating * r_others
        self._sxy[others, item] += sign * rating * r_others
        self._sxx[item, others] += sign * rating * rating
        self._sxx[others, item] += sign * r_others * r_others

    def _check_pair(self, user: int, item: int) -> None:
        if not 0 <= user < self.n_users:
            raise ValueError(f"user {user} out of range [0, {self.n_users})")
        if not 0 <= item < self.n_items:
            raise ValueError(f"item {item} out of range [0, {self.n_items})")

    def _mark_dirty(self, item: int, others: np.ndarray) -> None:
        self._dirty[item] = True
        self._dirty[others] = True

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def sim_row(self, item: int) -> np.ndarray:
        """Exact PCC of *item* against every item, from the statistics."""
        if not 0 <= item < self.n_items:
            raise ValueError(f"item {item} out of range [0, {self.n_items})")
        n = self._n[item]
        sx = self._sx[item]
        sy = self._sx.T[item]   # Σ of the column item over co-raters
        sxy = self._sxy[item]
        sxx = self._sxx[item]
        syy = self._sxx.T[item]
        with np.errstate(invalid="ignore", divide="ignore"):
            inv_n = np.where(n > 0, 1.0 / np.maximum(n, 1.0), 0.0)
            cov = sxy - sx * sy * inv_n
            varx = np.maximum(sxx - sx * sx * inv_n, 0.0)
            vary = np.maximum(syy - sy * sy * inv_n, 0.0)
            denom = np.sqrt(varx * vary)
            sim = np.where(denom > 0.0, cov / np.where(denom > 0.0, denom, 1.0), 0.0)
        sim[n < self.min_overlap] = 0.0
        np.clip(sim, -1.0, 1.0, out=sim)
        sim[item] = 1.0
        return sim

    def full_sim(self) -> np.ndarray:
        """The complete similarity matrix from the current statistics."""
        return pairwise_pcc(
            self._values, self._mask, centering="corated_mean", min_overlap=self.min_overlap
        )

    def top_m(self, item: int, m: int) -> tuple[np.ndarray, np.ndarray]:
        """Top-M neighbour slice, refreshing the item's ranking lazily."""
        check_positive_int(m, "m")
        if self._dirty[item]:
            sims = self.sim_row(item)
            sims[item] = -np.inf
            self._neighbours[item] = np.argsort(-sims, kind="stable")[: self.n_items - 1]
            self._dirty[item] = False
        cand = self._neighbours[item][:m]
        sims = self.sim_row(item)[cand]
        keep = sims > 0.0
        return cand[keep], sims[keep]

    def _full_neighbour_sort(self, sim: np.ndarray) -> np.ndarray:
        masked = sim.copy()
        np.fill_diagonal(masked, -np.inf)
        return np.argsort(-masked, axis=1, kind="stable")[:, : self.n_items - 1].astype(np.intp)

    def rebuild(self) -> None:
        """Full recompute of statistics and rankings (drift barrier).

        The statistics are exact, so this exists only to bound
        floating-point accumulation drift in month-long streams; tests
        assert the pre/post difference stays at rounding level.
        """
        R = self._values
        W = self._mask.astype(np.float64)
        R2 = R * R
        self._n = W.T @ W
        self._sx = R.T @ W
        self._sxy = R.T @ R
        self._sxx = R2.T @ W
        self._neighbours = self._full_neighbour_sort(self.full_sim())
        self._dirty[:] = False
