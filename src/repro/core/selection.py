"""Online selection of like-minded users (Section IV-E.2, Eqs. 10–11).

Given an active user's (partial) profile, CFSF builds a *candidate set*
by walking the user's iCluster ranking and then selects the top-K
like-minded users from the candidates with an ε-weighted PCC that
distinguishes original from smoothed ratings::

    sim(u_a, u) = Σ_f w_{u,i} (r(u,i) − r̄_u)(r(u_a,i) − r̄_{u_a})
                  / ( sqrt(Σ_f w²(r(u,i) − r̄_u)²) · sqrt(Σ_f (r(u_a,i) − r̄_{u_a})²) )

    w_{u,i} = ε      if u originally rated i                (Eq. 11)
            = 1 − ε  otherwise (the value is smoothed)

where ``f`` ranges over the items the *active user* has rated.  The
candidate ratings come from the dense smoothed matrix, so every
candidate has a value for every one of the active user's items — the
weighting, not availability, is what differentiates them.

Because the candidate set is a few times K (not the whole population),
this step costs O(|candidates| · GivenN) per request — the locality
the paper's scalability argument rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.smoothing import SmoothedRatings
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["TopKUsers", "weighted_user_similarity", "select_top_k_users"]


@dataclass(frozen=True)
class TopKUsers:
    """Selected like-minded users for one active profile.

    Attributes
    ----------
    users:
        ``(k,)`` training-user indices, descending similarity.
    similarities:
        ``(k,)`` their Eq. 10 similarities (all positive).
    pool_size:
        Number of candidates actually examined (for diagnostics /
        the scalability benchmarks).
    """

    users: np.ndarray
    similarities: np.ndarray
    pool_size: int

    def __len__(self) -> int:
        return len(self.users)


def weighted_user_similarity(
    active_items: np.ndarray,
    active_dev: np.ndarray,
    candidates: np.ndarray,
    smoothed: SmoothedRatings,
    epsilon: float,
    *,
    weight_matrix: np.ndarray | None = None,
    deviation_matrix: np.ndarray | None = None,
) -> np.ndarray:
    """Eq. 10 between one active profile and a block of candidates.

    Parameters
    ----------
    active_items:
        ``(f,)`` item indices the active user has rated.
    active_dev:
        ``(f,)`` the active user's mean-centred ratings on those items.
    candidates:
        ``(n,)`` training-user indices to score.
    smoothed:
        The offline smoothing output (dense values + provenance).
    epsilon:
        Eq. 11's ε — weight of original ratings (smoothed get 1−ε).
    weight_matrix, deviation_matrix:
        Optional precomputed ``(P, Q)`` Eq. 11 weights and mean-centred
        ratings (e.g. the :class:`repro.core.fusion.FusionKernel`'s
        globals).  When given, scoring is a pure gather — the per-call
        ``np.where``/subtraction over the candidate block disappears.
        Values must match ``smoothed`` + ``epsilon`` (not re-checked).

    Returns
    -------
    numpy.ndarray
        ``(n,)`` similarities in ``[-1, 1]`` (0 when degenerate).
    """
    check_fraction(epsilon, "epsilon")
    if active_items.size == 0 or candidates.size == 0:
        return np.zeros(candidates.shape, dtype=np.float64)
    ix = np.ix_(candidates, active_items)
    if weight_matrix is not None:
        w = weight_matrix[ix]
    else:
        w = np.where(smoothed.observed_mask[ix], epsilon, 1.0 - epsilon)
    if deviation_matrix is not None:
        dev = deviation_matrix[ix]
    else:
        dev = smoothed.values[ix] - smoothed.user_means[candidates][:, None]
    wd = w * dev
    num = wd @ active_dev
    den1 = np.einsum("nf,nf->n", wd, wd)    # Σ w²·dev², sharing the w·dev product
    den2 = float(active_dev @ active_dev)
    denom = np.sqrt(den1 * den2)
    ok = denom > 0.0
    sim = np.where(ok, num / np.where(ok, denom, 1.0), 0.0)
    np.clip(sim, -1.0, 1.0, out=sim)
    return sim


def select_top_k_users(
    active_items: np.ndarray,
    active_dev: np.ndarray,
    candidates: np.ndarray,
    smoothed: SmoothedRatings,
    *,
    k: int,
    epsilon: float,
    min_sim: float = 0.0,
    weight_matrix: np.ndarray | None = None,
    deviation_matrix: np.ndarray | None = None,
) -> TopKUsers:
    """Pick the top-K like-minded users from a candidate set.

    Candidates with similarity ``<= min_sim`` are dropped (a negatively
    correlated "like-minded user" would invert every contribution in
    Eq. 12's SUR'/SUIR').  If every candidate is dropped the selection
    falls back to the ``k`` highest-similarity candidates regardless of
    sign with their similarities floored at a tiny positive value —
    prediction quality degrades but stays defined, matching the
    paper's expectation that a request always gets an answer.
    """
    check_positive_int(k, "k")
    sims = weighted_user_similarity(
        active_items,
        active_dev,
        candidates,
        smoothed,
        epsilon,
        weight_matrix=weight_matrix,
        deviation_matrix=deviation_matrix,
    )
    order = np.argsort(-sims, kind="stable")
    ranked = candidates[order]
    ranked_sims = sims[order]
    keep = ranked_sims > min_sim
    if keep.any():
        ranked, ranked_sims = ranked[keep], ranked_sims[keep]
    else:
        ranked_sims = np.full_like(ranked_sims, 1e-6)
    k_eff = min(k, ranked.size)
    return TopKUsers(
        users=ranked[:k_eff].astype(np.intp),
        similarities=ranked_sims[:k_eff].astype(np.float64),
        pool_size=int(candidates.size),
    )
