"""Random-number-generator plumbing.

All stochastic components (the synthetic dataset generator, K-means
initialisation, the aspect-model EM initialisation, experiment split
shuffling) accept either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None``, and normalise it through
:func:`as_generator`.  This gives deterministic experiments end-to-end:
the benchmark harness seeds everything from a single root seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_seeds", "DEFAULT_ROOT_SEED"]

#: Root seed used by the benchmark harness and examples when the caller
#: does not provide one.  Chosen arbitrarily; fixed so that the tables
#: in EXPERIMENTS.md are reproducible bit-for-bit.
DEFAULT_ROOT_SEED = 20090922  # ICPP 2009 conference dates.


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` for a fresh
        seeded generator, or an existing generator which is returned
        unchanged (so that callers can thread one generator through a
        pipeline of components).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int or numpy Generator, got {type(seed).__name__}")


def spawn_seeds(seed: int | np.random.Generator | None, n: int) -> list[int]:
    """Derive *n* independent child seeds from a root seed.

    Used by the parallel executor to give each worker process its own
    deterministic stream without sharing generator state across process
    boundaries (generators do not survive ``fork`` + concurrent use).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = as_generator(seed)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=n)]
