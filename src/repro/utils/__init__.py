"""Shared low-level utilities for the CFSF reproduction.

This subpackage intentionally has no dependencies on the rest of
:mod:`repro` so that every other subpackage may import it freely.

Contents
--------
``validation``
    Defensive argument checking helpers shared by all public entry
    points (shape/dtype/range checks with uniform error messages).
``rng``
    Seed plumbing: every stochastic component in the library accepts
    ``seed`` / ``rng`` arguments that are normalised through
    :func:`repro.utils.rng.as_generator`.
``cache``
    A small, bounded LRU cache used by the online phase of CFSF to
    cache intermediate per-user results (the paper attributes part of
    its Fig. 5 response-time advantage to "caching intermediate
    results").
``timing``
    Wall-clock measurement helpers used by the scalability experiments
    (Fig. 5) and by the benchmark harness.
"""

from repro.utils.cache import LRUCache
from repro.utils.rng import as_generator, spawn_seeds
from repro.utils.timing import Stopwatch, time_call
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_rating_matrix,
    require,
)

__all__ = [
    "LRUCache",
    "Stopwatch",
    "as_generator",
    "check_fraction",
    "check_positive_int",
    "check_rating_matrix",
    "require",
    "spawn_seeds",
    "time_call",
]
