"""A small bounded LRU cache.

The paper attributes part of CFSF's online response-time advantage to
"using the locally reduced item-user matrix and caching intermediate
results" (Section V-D).  The intermediate results worth caching are the
per-active-user artefacts of the online phase — the selected top-K
like-minded users and their similarity weights — because a recommender
serves many requests for the same user against different items.

:class:`functools.lru_cache` is unsuitable here because the cached
values are keyed by user index but depend on mutable model state (the
cache must be invalidated on refit/incremental update), and because we
want introspection (hit/miss counters) for the scalability benchmarks.

The cache is thread-safe: a single mutex guards the ordered dict and
the hit/miss counters, so the concurrent serving front (the
micro-batcher's dispatch workers plus any direct callers) can share
one cache without corrupting the recency list.  ``OrderedDict``
operations are O(1) and the critical sections hold no other locks, so
contention stays well below the cost of the cached computations.  The
mutex is excluded from pickling (a model carrying this cache is
shipped to spawn-mode pool workers); each process re-creates its own.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator

__all__ = ["LRUCache"]


class LRUCache:
    """Bounded mapping with least-recently-used eviction (thread-safe).

    Parameters
    ----------
    maxsize:
        Maximum number of entries.  ``0`` disables caching entirely
        (every lookup misses), which the ablation benchmarks use to
        quantify the cache's contribution to online latency.

    Examples
    --------
    >>> cache = LRUCache(maxsize=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)      # evicts "b", the least recently used
    >>> cache.get("b") is None
    True
    """

    __slots__ = ("_data", "_maxsize", "_mutex", "hits", "misses")

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self._maxsize = int(maxsize)
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._mutex = threading.Lock()
        self.hits = 0
        self.misses = 0

    @property
    def maxsize(self) -> int:
        """The configured capacity."""
        return self._maxsize

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value for *key*, refreshing its recency."""
        with self._mutex:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite *key*, evicting the LRU entry when full."""
        if self._maxsize == 0:
            return
        with self._mutex:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self._maxsize:
                self._data.popitem(last=False)

    def get_or_compute(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return cached value for *key*, computing and storing on a miss.

        The factory runs outside the mutex (it may be expensive); two
        threads missing concurrently both compute, and the last write
        wins — acceptable because cached values are deterministic
        functions of the key.
        """
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            value = factory()
            self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._mutex:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when no lookups)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # The mutex cannot cross a pickle boundary (spawn-mode pool workers
    # receive the model, cache included); state travels without it.
    def __getstate__(self) -> tuple:
        with self._mutex:
            return (self._maxsize, list(self._data.items()), self.hits, self.misses)

    def __setstate__(self, state: tuple) -> None:
        maxsize, items, hits, misses = state
        self._maxsize = maxsize
        self._data = OrderedDict(items)
        self._mutex = threading.Lock()
        self.hits = hits
        self.misses = misses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LRUCache(maxsize={self._maxsize}, len={len(self._data)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
