"""Argument validation helpers with uniform error messages.

Every public entry point in :mod:`repro` validates its inputs through
these helpers so that user-facing errors are consistent and informative
(``ValueError``/``TypeError`` with the offending name and value), and so
that the validation logic itself is unit-testable in one place.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "require",
    "check_positive_int",
    "check_fraction",
    "check_rating_matrix",
    "check_mask",
    "check_same_shape",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds.

    A terse guard used where constructing a specialised checker would be
    noise.  Prefer the specific ``check_*`` helpers when one fits.
    """
    if not condition:
        raise ValueError(message)


def check_positive_int(value: Any, name: str, *, minimum: int = 1) -> int:
    """Validate that *value* is an integer ``>= minimum`` and return it.

    Accepts Python ints and NumPy integer scalars; rejects bools (which
    are ints in Python but never a sensible count).
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_fraction(value: Any, name: str, *, closed: bool = True) -> float:
    """Validate that *value* lies in ``[0, 1]`` (or ``(0, 1)``) and return it.

    Parameters
    ----------
    closed:
        When ``True`` (default) the endpoints 0 and 1 are allowed, which
        matches the paper's fusion parameters lambda and delta
        ("between 0 and 1", Eq. 14).  When ``False`` the interval is
        open, e.g. for sampling densities that must be strictly inside.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float, np.floating, np.integer)):
        raise TypeError(f"{name} must be a float, got {type(value).__name__}")
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if closed:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def check_rating_matrix(ratings: Any, name: str = "ratings") -> np.ndarray:
    """Validate a raw 2-D rating array and return it as C-contiguous float64.

    The convention throughout the library is *users on rows, items on
    columns* (the paper's ``P x Q`` user-vector view, transposed from
    its ``Q x P`` item-vector view).  Unrated entries are represented by
    a separate boolean mask, so the value array itself must be finite
    wherever it will be read; NaNs are tolerated here because callers
    combine this with :func:`check_mask`.
    """
    arr = np.asarray(ratings, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D (users x items), got ndim={arr.ndim}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ValueError(f"{name} must be non-empty, got shape {arr.shape}")
    return np.ascontiguousarray(arr)


def check_mask(mask: Any, shape: tuple[int, int], name: str = "mask") -> np.ndarray:
    """Validate a boolean rated-mask against an expected *shape*."""
    arr = np.asarray(mask)
    if arr.dtype != np.bool_:
        if not np.isin(arr, (0, 1)).all():
            raise ValueError(f"{name} must be boolean or 0/1 valued")
        arr = arr.astype(bool)
    if arr.shape != tuple(shape):
        raise ValueError(f"{name} shape {arr.shape} does not match ratings shape {tuple(shape)}")
    return np.ascontiguousarray(arr)


def check_same_shape(a: np.ndarray, b: np.ndarray, names: tuple[str, str] = ("a", "b")) -> None:
    """Raise if two arrays differ in shape."""
    if a.shape != b.shape:
        raise ValueError(
            f"{names[0]} shape {a.shape} does not match {names[1]} shape {b.shape}"
        )
