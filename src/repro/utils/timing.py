"""Wall-clock timing helpers for the scalability experiments.

Fig. 5 of the paper plots *online response time* against test-set size.
Reproducing it needs (a) a way to time just the online phase of a fitted
model, excluding the offline fit, and (b) repeated measurements with a
cheap summary.  ``timeit`` is awkward for measuring methods with large
bound state, so we provide a tiny stopwatch and a ``time_call`` helper
that the benchmark harness layers on top of.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Stopwatch", "time_call", "TimingResult"]


class Stopwatch:
    """Accumulating stopwatch with context-manager ergonomics.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> with sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed > 0.0
    True
    >>> sw.laps
    1
    """

    __slots__ = ("elapsed", "laps", "_start")

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps = 0
        self._start: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        assert self._start is not None, "Stopwatch exited without entering"
        self.elapsed += time.perf_counter() - self._start
        self.laps += 1
        self._start = None

    def reset(self) -> None:
        """Zero the accumulated time and lap count."""
        self.elapsed = 0.0
        self.laps = 0
        self._start = None

    @property
    def mean(self) -> float:
        """Mean seconds per lap (0.0 before the first lap completes)."""
        return self.elapsed / self.laps if self.laps else 0.0


@dataclass(frozen=True)
class TimingResult:
    """Summary of repeated timings of one callable."""

    seconds: tuple[float, ...]
    value: Any = field(repr=False, default=None)

    @property
    def best(self) -> float:
        """Minimum observed time — the standard noise-robust statistic."""
        return min(self.seconds)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed times."""
        return sum(self.seconds) / len(self.seconds)

    @property
    def total(self) -> float:
        """Sum of all observed times."""
        return sum(self.seconds)


def time_call(
    func: Callable[..., Any],
    *args: Any,
    repeats: int = 3,
    registry: Any = None,
    metric: str = "timing.time_call",
    **kwargs: Any,
) -> TimingResult:
    """Run ``func(*args, **kwargs)`` *repeats* times and time each run.

    Returns the per-run wall-clock times and the value from the final
    run (so callers can both time and use a prediction pass without
    running it twice).

    When *registry* (a :class:`repro.obs.MetricsRegistry`) is given,
    every sample is also recorded into its *metric* histogram, so the
    Fig. 5 benchmark harness and the serving layer share one
    measurement path.  The return type is unchanged either way; a
    disabled (no-op) registry is skipped with one attribute check.
    The two keyword names are reserved — a *func* expecting its own
    ``registry=``/``metric=`` kwarg must be wrapped in a lambda.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    record = registry is not None and registry.enabled
    seconds: list[float] = []
    value: Any = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = func(*args, **kwargs)
        elapsed = time.perf_counter() - start
        seconds.append(elapsed)
        if record:
            registry.histogram(metric).observe(elapsed)
    return TimingResult(seconds=tuple(seconds), value=value)
