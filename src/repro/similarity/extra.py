"""Additional similarity measures beyond the paper's PCC/VSS pair.

The CF literature the paper builds on uses several other measures; a
usable library carries them, and the similarity ablation benchmarks
use them to show how much (or little) the GIS's choice of measure
matters on a given dataset:

* :func:`adjusted_cosine` — cosine over *user-mean-centred* ratings
  (Sarwar et al. 2001's best item–item measure): removes rating-style
  generosity before comparing items, which is the user-side analogue
  of what PCC's item-centering does.
* :func:`spearman_rho` — Pearson over within-column ranks; robust to
  monotone distortions of the rating scale.
* :func:`mean_squared_difference` — inverted MSD similarity
  (Shardanand & Maes 1995), ``1 / (1 + msd)``; bounded in (0, 1].
* :func:`jaccard` — co-rating structure only (values ignored); the
  degenerate baseline that shows how much signal the rating *values*
  add over mere co-occurrence.

All operate column-wise on the masked matrix, like
:func:`repro.similarity.pairwise_pcc`, and share its conventions
(symmetric output, unit diagonal, ``min_overlap`` zeroing).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_mask, check_rating_matrix

__all__ = [
    "adjusted_cosine",
    "spearman_rho",
    "mean_squared_difference",
    "jaccard",
]


def _prep(values: np.ndarray, mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    values = check_rating_matrix(values)
    mask = check_mask(mask, values.shape)
    return np.where(mask, values, 0.0), mask


def adjusted_cosine(
    values: np.ndarray, mask: np.ndarray, *, min_overlap: int = 2
) -> np.ndarray:
    """Sarwar's adjusted cosine between columns (user-mean centred)."""
    R, W = _prep(values, mask)
    Wf = W.astype(np.float64)
    row_counts = Wf.sum(axis=1)
    with np.errstate(invalid="ignore"):
        row_means = np.where(row_counts > 0, R.sum(axis=1) / np.maximum(row_counts, 1), 0.0)
    Rc = (R - row_means[:, None]) * Wf
    n = Wf.T @ Wf
    num = Rc.T @ Rc
    Rc2 = Rc * Rc
    den = np.sqrt((Rc2.T @ Wf) * (Wf.T @ Rc2))
    with np.errstate(invalid="ignore", divide="ignore"):
        sim = np.where(den > 0.0, num / np.where(den > 0.0, den, 1.0), 0.0)
    sim[n < min_overlap] = 0.0
    np.clip(sim, -1.0, 1.0, out=sim)
    np.fill_diagonal(sim, 1.0)
    return sim


def spearman_rho(
    values: np.ndarray, mask: np.ndarray, *, min_overlap: int = 2
) -> np.ndarray:
    """Spearman rank correlation between columns.

    Ranks are computed per column over that column's observed entries
    (average ranks for ties), then fed through the co-rated Pearson
    kernel — the standard Spearman-with-missing-data treatment used in
    early CF work (Herlocker et al. 1999).
    """
    from repro.similarity.pcc import pairwise_pcc
    from scipy.stats import rankdata

    R, W = _prep(values, mask)
    ranks = np.zeros_like(R)
    for col in range(R.shape[1]):
        rows = np.nonzero(W[:, col])[0]
        if rows.size:
            ranks[rows, col] = rankdata(R[rows, col], method="average")
    return pairwise_pcc(ranks, W, centering="corated_mean", min_overlap=min_overlap)


def mean_squared_difference(
    values: np.ndarray, mask: np.ndarray, *, min_overlap: int = 2
) -> np.ndarray:
    """Inverted mean-squared-difference similarity: ``1 / (1 + msd)``.

    ``msd(a, b)`` is the mean squared rating difference over co-raters;
    identical columns score 1.0, and the measure decays smoothly with
    disagreement.  Unlike correlation it is *location-sensitive*: two
    items rated identically-shifted profiles are not "similar".
    """
    R, W = _prep(values, mask)
    Wf = W.astype(np.float64)
    n = Wf.T @ Wf
    R2 = R * R
    # Σ (x − y)² over co-raters = Σx² + Σy² − 2Σxy, each co-rated.
    sum_sq = (R2.T @ Wf) + (Wf.T @ R2) - 2.0 * (R.T @ R)
    with np.errstate(invalid="ignore", divide="ignore"):
        msd = np.where(n > 0, sum_sq / np.maximum(n, 1.0), np.inf)
    np.maximum(msd, 0.0, out=msd)  # tiny negatives from cancellation
    sim = 1.0 / (1.0 + msd)
    sim[n < min_overlap] = 0.0
    np.fill_diagonal(sim, 1.0)
    return sim


def jaccard(mask: np.ndarray, *, min_overlap: int = 1) -> np.ndarray:
    """Jaccard overlap of the rater sets: ``|A ∩ B| / |A ∪ B|``."""
    mask = np.asarray(mask)
    if mask.dtype != np.bool_:
        mask = mask.astype(bool)
    Wf = mask.astype(np.float64)
    inter = Wf.T @ Wf
    counts = Wf.sum(axis=0)
    union = counts[:, None] + counts[None, :] - inter
    with np.errstate(invalid="ignore", divide="ignore"):
        sim = np.where(union > 0.0, inter / np.where(union > 0.0, union, 1.0), 0.0)
    sim[inter < min_overlap] = 0.0
    np.fill_diagonal(sim, 1.0)
    return sim
