"""Similarity post-processing: significance weighting and thresholds.

Section IV-B of the paper: "Given the large number of items, we set
thresholds for Eq. 5 to filter less important items. Then, the size of
GIS will be greatly reduced."  This module provides that thresholding
plus the classic Herlocker significance weighting (devaluing
correlations computed from few co-ratings), which EMDP's source paper
also applies and which we expose as an option everywhere a raw PCC is
consumed.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = [
    "significance_weight",
    "apply_threshold",
    "overlap_counts",
    "top_k_indices",
]


def overlap_counts(mask: np.ndarray, *, axis: str = "columns") -> np.ndarray:
    """Co-rating counts for every pair of columns (or rows) of a mask.

    Parameters
    ----------
    mask:
        Boolean rated-mask, users on rows and items on columns.
    axis:
        ``"columns"`` for item pairs, ``"rows"`` for user pairs.
    """
    W = mask.astype(np.float64)
    if axis == "columns":
        return (W.T @ W).astype(np.intp)
    if axis == "rows":
        return (W @ W.T).astype(np.intp)
    raise ValueError(f"axis must be 'columns' or 'rows', got {axis!r}")


def significance_weight(
    sim: np.ndarray, counts: np.ndarray, *, gamma: int = 30
) -> np.ndarray:
    """Shrink similarities backed by few co-ratings: ``sim * min(n,γ)/γ``.

    Herlocker et al.'s devaluation: a correlation computed from 3
    common ratings is numerically a correlation but statistically
    noise.  ``gamma`` is the co-rating count at which a similarity is
    trusted at full strength.
    """
    check_positive_int(gamma, "gamma")
    if sim.shape != counts.shape:
        raise ValueError(f"sim shape {sim.shape} != counts shape {counts.shape}")
    return sim * (np.minimum(counts, gamma) / float(gamma))


def apply_threshold(sim: np.ndarray, threshold: float) -> np.ndarray:
    """Zero out similarities with absolute value below *threshold*.

    This is the paper's GIS filtering knob: entries below the threshold
    are dropped, shrinking the effective neighbour lists.  The diagonal
    is preserved.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    if threshold == 0.0:
        return sim
    out = np.where(np.abs(sim) >= threshold, sim, 0.0)
    if out.ndim == 2 and out.shape[0] == out.shape[1]:
        np.fill_diagonal(out, np.diagonal(sim))
    return out


def top_k_indices(
    scores: np.ndarray, k: int, *, exclude: int | None = None
) -> np.ndarray:
    """Indices of the *k* largest entries of a 1-D score vector, sorted
    by descending score.

    Parameters
    ----------
    exclude:
        Optional index to skip (typically the query itself, whose
        self-similarity of 1.0 would always win).

    Notes
    -----
    Uses ``argpartition`` + a small sort so the cost is O(n + k log k),
    not O(n log n) — this sits on the online path of CFSF.
    """
    check_positive_int(k, "k")
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError(f"scores must be 1-D, got ndim={scores.ndim}")
    if exclude is not None:
        scores = scores.copy()
        scores[exclude] = -np.inf
    k = min(k, scores.size - (1 if exclude is not None else 0))
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    part = np.argpartition(-scores, k - 1)[:k]
    order = np.argsort(-scores[part], kind="stable")
    top = part[order]
    return top[np.isfinite(scores[top])]
