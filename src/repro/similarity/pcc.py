"""Masked pairwise Pearson Correlation Coefficient (PCC) kernels.

Every similarity in the paper — the item–item similarity of the GIS
(Eq. 5), the user–user similarity driving K-means (Eq. 6), the
user-to-cluster affinity (Eq. 9) and the ε-weighted online similarity
(Eq. 10) — is a PCC restricted to *co-rated* entries.  Naively that is
an O(n² · overlap) Python double loop; here every kernel is expressed
as a handful of masked Gram products (``A.T @ B`` on C-contiguous
float64 arrays), which is the difference between milliseconds and
minutes at MovieLens scale and the reason the offline phase is viable
in pure NumPy.

Two centering conventions are supported because the paper's Eq. 5/6
subtract the *overall* item/user mean (``r̄_i`` over all raters) inside
a sum restricted to co-raters, whereas the classic Sarwar/Resnick PCC
subtracts the mean over the *co-rated* subset:

* ``centering="global_mean"`` — the paper's formula.  Deviations are
  taken from each column's overall observed mean; sums (numerator and
  both denominator sums) run over co-rated rows only.
* ``centering="corated_mean"`` — textbook Pearson over the co-rated
  subset (means recomputed per pair).

Both are exact (no sampling, no approximation) and fully vectorised.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.utils.validation import check_mask, check_rating_matrix

__all__ = [
    "pairwise_pcc",
    "item_pcc",
    "user_pcc",
    "pcc_to_rows",
    "Centering",
]

Centering = Literal["global_mean", "corated_mean"]


def _masked_columns(values: np.ndarray, mask: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and zero-out unrated entries; returns (R, W) float64."""
    values = check_rating_matrix(values)
    mask = check_mask(mask, values.shape)
    R = np.where(mask, values, 0.0)
    W = mask.astype(np.float64)
    return R, W


def pairwise_pcc(
    values: np.ndarray,
    mask: np.ndarray,
    *,
    centering: Centering = "global_mean",
    min_overlap: int = 2,
) -> np.ndarray:
    """All-pairs PCC between the **columns** of a masked matrix.

    Parameters
    ----------
    values, mask:
        ``(n_rows, n_cols)`` ratings and rated-mask.  Similarity is
        computed between columns over rows where *both* columns are
        rated.
    centering:
        ``"global_mean"`` (paper's Eq. 5/6) or ``"corated_mean"``
        (classic Pearson); see the module docstring.
    min_overlap:
        Pairs with fewer co-rated rows than this get similarity 0.0 —
        a single common rater yields a degenerate (always ±1 or 0/0)
        correlation, so the default is 2.

    Returns
    -------
    numpy.ndarray
        ``(n_cols, n_cols)`` symmetric matrix with unit diagonal
        (except columns with no or constant ratings, which get 0 off-
        diagonal and 1 on the diagonal by convention), values in
        ``[-1, 1]``.

    Notes
    -----
    With ``global_mean`` centering, let ``Rc = (R - colmean) * W``;
    then for columns *a, b* over their co-rated rows ``U``::

        num[a,b]  = sum_{u in U} Rc[u,a] * Rc[u,b]      = (Rc.T @ Rc)[a,b]
        den1[a,b] = sum_{u in U} Rc[u,a]^2              = (Rc^2).T @ W
        den2[a,b] = sum_{u in U} Rc[u,b]^2              = W.T @ (Rc^2)

    so the whole matrix is three BLAS calls.  ``corated_mean`` uses the
    six-Gram-product identity ``cov = Sxy - Sx*Sy/n`` instead.
    """
    R, W = _masked_columns(values, mask)
    n = W.T @ W  # co-rated counts

    if centering == "global_mean":
        counts = W.sum(axis=0)
        with np.errstate(invalid="ignore"):
            col_means = np.where(counts > 0, R.sum(axis=0) / np.maximum(counts, 1.0), 0.0)
        Rc = (R - col_means[None, :]) * W
        Rc2 = Rc * Rc
        num = Rc.T @ Rc
        den1 = Rc2.T @ W
        den2 = W.T @ Rc2
        denom = np.sqrt(den1 * den2)
    elif centering == "corated_mean":
        Sxy = R.T @ R
        Sx = R.T @ W
        Sy = Sx.T
        R2 = R * R
        Sxx = R2.T @ W
        Syy = Sxx.T
        with np.errstate(invalid="ignore", divide="ignore"):
            inv_n = np.where(n > 0, 1.0 / np.maximum(n, 1.0), 0.0)
            num = Sxy - Sx * Sy * inv_n
            varx = Sxx - Sx * Sx * inv_n
            vary = Syy - Sy * Sy * inv_n
        # Tiny negative variances from floating-point cancellation.
        np.maximum(varx, 0.0, out=varx)
        np.maximum(vary, 0.0, out=vary)
        denom = np.sqrt(varx * vary)
    else:  # pragma: no cover - guarded by Literal type but kept for runtime safety
        raise ValueError(f"unknown centering {centering!r}")

    with np.errstate(invalid="ignore", divide="ignore"):
        sim = np.where(denom > 0.0, num / np.where(denom > 0.0, denom, 1.0), 0.0)
    sim[n < min_overlap] = 0.0
    np.clip(sim, -1.0, 1.0, out=sim)
    np.fill_diagonal(sim, 1.0)
    return sim


def item_pcc(
    values: np.ndarray,
    mask: np.ndarray,
    *,
    centering: Centering = "global_mean",
    min_overlap: int = 2,
) -> np.ndarray:
    """Item–item PCC (Eq. 5): columns of the user-major matrix."""
    return pairwise_pcc(values, mask, centering=centering, min_overlap=min_overlap)


def user_pcc(
    values: np.ndarray,
    mask: np.ndarray,
    *,
    centering: Centering = "global_mean",
    min_overlap: int = 2,
) -> np.ndarray:
    """User–user PCC (Eq. 6): columns of the transposed matrix."""
    return pairwise_pcc(
        np.ascontiguousarray(values.T),
        np.ascontiguousarray(mask.T),
        centering=centering,
        min_overlap=min_overlap,
    )


def pcc_to_rows(
    query_values: np.ndarray,
    query_mask: np.ndarray,
    values: np.ndarray,
    mask: np.ndarray,
    *,
    centering: Centering = "global_mean",
    min_overlap: int = 2,
) -> np.ndarray:
    """PCC between each query **row** and each reference **row**.

    Used by the online phase (an active user against the candidate
    users) and by clustering (users against centroids): returns an
    ``(n_query, n_ref)`` matrix without materialising the full
    symmetric pairwise matrix.

    Both matrices must share the item axis.  Semantics match
    :func:`pairwise_pcc` applied to the stacked transpose, restricted
    to query-vs-reference pairs.
    """
    qv = check_rating_matrix(query_values, "query_values")
    qm = check_mask(query_mask, qv.shape, "query_mask")
    rv = check_rating_matrix(values, "values")
    rm = check_mask(mask, rv.shape, "mask")
    if qv.shape[1] != rv.shape[1]:
        raise ValueError(
            f"query has {qv.shape[1]} items but reference has {rv.shape[1]}"
        )

    Q = np.where(qm, qv, 0.0)
    Wq = qm.astype(np.float64)
    R = np.where(rm, rv, 0.0)
    Wr = rm.astype(np.float64)
    n = Wq @ Wr.T

    if centering == "global_mean":
        q_counts = Wq.sum(axis=1)
        r_counts = Wr.sum(axis=1)
        with np.errstate(invalid="ignore"):
            q_means = np.where(q_counts > 0, Q.sum(axis=1) / np.maximum(q_counts, 1.0), 0.0)
            r_means = np.where(r_counts > 0, R.sum(axis=1) / np.maximum(r_counts, 1.0), 0.0)
        Qc = (Q - q_means[:, None]) * Wq
        Rc = (R - r_means[:, None]) * Wr
        num = Qc @ Rc.T
        den1 = (Qc * Qc) @ Wr.T
        den2 = Wq @ (Rc * Rc).T
        denom = np.sqrt(den1 * den2)
    elif centering == "corated_mean":
        Sxy = Q @ R.T
        Sx = Q @ Wr.T
        Sy = Wq @ R.T
        Sxx = (Q * Q) @ Wr.T
        Syy = Wq @ (R * R).T
        with np.errstate(invalid="ignore", divide="ignore"):
            inv_n = np.where(n > 0, 1.0 / np.maximum(n, 1.0), 0.0)
            num = Sxy - Sx * Sy * inv_n
            varx = np.maximum(Sxx - Sx * Sx * inv_n, 0.0)
            vary = np.maximum(Syy - Sy * Sy * inv_n, 0.0)
        denom = np.sqrt(varx * vary)
    else:  # pragma: no cover
        raise ValueError(f"unknown centering {centering!r}")

    with np.errstate(invalid="ignore", divide="ignore"):
        sim = np.where(denom > 0.0, num / np.where(denom > 0.0, denom, 1.0), 0.0)
    sim[n < min_overlap] = 0.0
    np.clip(sim, -1.0, 1.0, out=sim)
    return sim
