"""Vector Space Similarity (pure cosine) over masked matrices.

The paper's Section IV-B argues for PCC over Pure Cosine Similarity
(PCS/VSS) for the GIS because cosine "does not consider the diversity
in item ratings" — popular items get systematically higher raw ratings
and cosine rewards that shared offset as similarity.  We implement VSS
so the ablation benchmark (``bench_ablation_similarity``) can quantify
that claim on data with the popularity/quality coupling the generator
plants.

Two variants:

* ``corated=True`` (default) — denominators restricted to co-rated
  rows, the direct uncentered analogue of the paper's PCC and the form
  used by Sarwar et al. [11] for item-based CF.
* ``corated=False`` — classic IR cosine with full-column norms, which
  additionally penalises rarely-rated items.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_mask, check_rating_matrix

__all__ = ["pairwise_cosine", "item_cosine", "user_cosine"]


def pairwise_cosine(
    values: np.ndarray,
    mask: np.ndarray,
    *,
    corated: bool = True,
    min_overlap: int = 1,
) -> np.ndarray:
    """All-pairs cosine similarity between the columns of a masked matrix.

    Parameters
    ----------
    values, mask:
        ``(n_rows, n_cols)`` ratings and rated-mask.
    corated:
        Restrict the denominators to co-rated rows (see module
        docstring).  The numerator is always over co-rated rows — a
        product with an unrated (zeroed) entry contributes nothing.
    min_overlap:
        Pairs with fewer co-rated rows get similarity 0.0.

    Returns
    -------
    numpy.ndarray
        ``(n_cols, n_cols)`` symmetric matrix in ``[0, 1]`` for
        non-negative ratings, unit diagonal.
    """
    values = check_rating_matrix(values)
    mask = check_mask(mask, values.shape)
    R = np.where(mask, values, 0.0)
    W = mask.astype(np.float64)
    n = W.T @ W
    num = R.T @ R
    R2 = R * R
    if corated:
        den1 = R2.T @ W
        den2 = W.T @ R2
        denom = np.sqrt(den1 * den2)
    else:
        norms = np.sqrt(R2.sum(axis=0))
        denom = norms[:, None] * norms[None, :]
    with np.errstate(invalid="ignore", divide="ignore"):
        sim = np.where(denom > 0.0, num / np.where(denom > 0.0, denom, 1.0), 0.0)
    sim[n < min_overlap] = 0.0
    np.clip(sim, -1.0, 1.0, out=sim)
    np.fill_diagonal(sim, 1.0)
    return sim


def item_cosine(
    values: np.ndarray, mask: np.ndarray, *, corated: bool = True, min_overlap: int = 1
) -> np.ndarray:
    """Item–item VSS: columns of the user-major matrix."""
    return pairwise_cosine(values, mask, corated=corated, min_overlap=min_overlap)


def user_cosine(
    values: np.ndarray, mask: np.ndarray, *, corated: bool = True, min_overlap: int = 1
) -> np.ndarray:
    """User–user VSS: columns of the transposed matrix."""
    return pairwise_cosine(
        np.ascontiguousarray(values.T),
        np.ascontiguousarray(mask.T),
        corated=corated,
        min_overlap=min_overlap,
    )
