"""Similarity substrate: masked PCC / cosine kernels and post-processing.

All pairwise similarity computations in the reproduction flow through
this subpackage.  The kernels are exact (no sampling) and fully
vectorised as masked Gram products; see :mod:`repro.similarity.pcc` for
the algebra.
"""

from repro.similarity.extra import (
    adjusted_cosine,
    jaccard,
    mean_squared_difference,
    spearman_rho,
)
from repro.similarity.pcc import Centering, item_pcc, pairwise_pcc, pcc_to_rows, user_pcc
from repro.similarity.significance import (
    apply_threshold,
    overlap_counts,
    significance_weight,
    top_k_indices,
)
from repro.similarity.vss import item_cosine, pairwise_cosine, user_cosine

__all__ = [
    "Centering",
    "adjusted_cosine",
    "apply_threshold",
    "item_cosine",
    "jaccard",
    "mean_squared_difference",
    "item_pcc",
    "overlap_counts",
    "pairwise_cosine",
    "pairwise_pcc",
    "pcc_to_rows",
    "significance_weight",
    "spearman_rho",
    "top_k_indices",
    "user_cosine",
    "user_pcc",
]
