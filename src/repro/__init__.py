"""repro — full reproduction of CFSF (Zhang et al., ICPP 2009).

An efficient Collaborative Filtering approach using Smoothing and
Fusing, plus every baseline and substrate its evaluation depends on.
See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.

Public API highlights
---------------------
:class:`repro.core.CFSF`
    The paper's recommender (offline fit / online predict).
:mod:`repro.baselines`
    SIR, SUR, SF, SCBPCC, EMDP, AM, PD comparators.
:mod:`repro.data`
    Rating matrices, MovieLens loaders, synthetic generator, GivenN
    experimental protocol.
:mod:`repro.eval`
    MAE metric, protocol driver, table reporting.
:mod:`repro.parallel`
    Shared-memory multi-process prediction executor with worker-crash
    recovery.
:mod:`repro.serving`
    Fault-tolerant serving layer: fallback chain, circuit breakers,
    deadlines, hot snapshot reload, fault-injection harness.
:mod:`repro.obs`
    Observability: thread-safe metrics registry (counters, gauges,
    histograms), tracing spans over the offline pipeline, and JSON /
    Prometheus exposition.
"""

from repro.baselines import (
    EMDP,
    MatrixFactorization,
    SCBPCC,
    AspectModel,
    ItemBasedCF,
    MeanPredictor,
    PersonalityDiagnosis,
    Recommender,
    SimilarityFusion,
    SlopeOne,
    UserBasedCF,
)
from repro.core import (
    CFSF,
    CFSFConfig,
    IncrementalGIS,
    apply_time_decay,
    load_model,
    recommend_top_n,
    save_model,
)
from repro.data import (
    GivenNSplit,
    RatingMatrix,
    SyntheticConfig,
    default_dataset,
    make_movielens_like,
    make_split,
    paper_grid,
)
from repro.eval import evaluate, mae, rmse
from repro.obs import MetricsRegistry, use_registry
from repro.parallel import ParallelPredictor
from repro.serving import PredictionService, ServingResult

__version__ = "1.0.0"

__all__ = [
    "AspectModel",
    "CFSF",
    "CFSFConfig",
    "EMDP",
    "GivenNSplit",
    "IncrementalGIS",
    "ItemBasedCF",
    "MatrixFactorization",
    "MeanPredictor",
    "MetricsRegistry",
    "ParallelPredictor",
    "PersonalityDiagnosis",
    "PredictionService",
    "RatingMatrix",
    "Recommender",
    "SCBPCC",
    "ServingResult",
    "SimilarityFusion",
    "SlopeOne",
    "SyntheticConfig",
    "UserBasedCF",
    "__version__",
    "apply_time_decay",
    "default_dataset",
    "evaluate",
    "load_model",
    "mae",
    "make_movielens_like",
    "make_split",
    "paper_grid",
    "recommend_top_n",
    "rmse",
    "save_model",
    "use_registry",
]
