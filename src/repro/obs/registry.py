"""The in-process metrics registry (counters, gauges, histograms, spans).

Observability for a serving system has to satisfy two masters at once:

* **When enabled** it must answer the operational questions a live
  CFSF deployment raises — how many requests, how slow, which
  fallback stage served them, how long a breaker stayed open, where
  the offline fit spends its time (GIS build vs clustering vs
  smoothing, the phases the paper pushes offline precisely because
  they dominate cost).
* **When disabled** it must cost *nothing*: every instrumentation
  site in the hot path guards itself with a single attribute check
  (``registry.enabled``) and the ambient default is a
  :class:`NullRegistry` whose metric handles are shared no-ops.

Design constraints, deliberately:

* **Stdlib only.**  The registry is imported by every layer
  (``serving``, ``parallel``, ``core``, ``cli``); it must not drag
  numpy into contexts that only want a counter, and its snapshots
  must pickle across process boundaries unaided.
* **One lock.**  All mutation goes through a single registry
  :class:`threading.RLock`.  At serving's block granularity (one
  observation per batch, not per request) contention is negligible,
  and it makes :meth:`MetricsRegistry.drain` — snapshot *and* reset,
  atomically — trivially correct, which the cross-process delta
  protocol depends on (no lost or double-counted samples).
* **Injectable clock.**  The same :class:`~repro.serving.faults.
  ManualClock` that makes deadline and backoff behaviour exact under
  test also drives span durations and breaker open-times here.

The delta protocol: a worker process records into its own registry,
:meth:`~MetricsRegistry.drain`\\ s it after each task, and ships the
plain-dict delta home with the task result; the parent
:meth:`~MetricsRegistry.merge`\\ s it.  Counters add, gauges take the
latest value, histograms add bucket counts, spans append.  The dict
is also exactly what the exposition formats
(:mod:`repro.obs.exposition`) consume.
"""

from __future__ import annotations

import threading
import time
from contextvars import ContextVar
from typing import Any, Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Span",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram buckets (seconds), tuned for online-serving
#: latencies: sub-millisecond block predictions up to multi-second
#: offline phases land in distinct buckets.  The sub-millisecond range
#: is deliberately fine-grained — batched serving runs in the
#: 0.1–1 ms band, and quantile estimates interpolate within a bucket,
#: so coarse buckets there would dominate the estimation error of
#: exactly the percentiles the serving benchmarks gate on.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0004, 0.0005, 0.0006, 0.0007, 0.0008, 0.0009, 0.001,
    0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Ambient span stack (names of open spans, outermost first).  Shared
#: across registries: nesting is a property of control flow, not of
#: which registry records the span.
_SPAN_STACK: ContextVar[tuple[str, ...]] = ContextVar("repro_obs_span_stack", default=())


def _coerce_attr(value: Any) -> Any:
    """Make a span/label attribute JSON- and pickle-friendly."""
    if value is None or type(value) in (bool, int, float, str):
        return value
    if hasattr(value, "item"):  # numpy scalars, without importing numpy
        try:
            return value.item()
        except Exception:  # pragma: no cover - exotic array-likes
            pass
    for base in (bool, int, float, str):  # plain subclasses (e.g. IntEnum)
        if isinstance(value, base):
            return base(value)
    return str(value)


def _labels_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count.  Thread-safe via the registry lock."""

    kind = "counter"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict[str, str], lock: threading.RLock) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (>= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self.value += amount

    def _reset(self) -> None:
        self.value = 0.0

    def _snapshot(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down (last write wins on merge)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict[str, str], lock: threading.RLock) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self.value = float(value)

    def add(self, amount: float) -> None:
        """Shift the gauge value by *amount* (may be negative)."""
        with self._lock:
            self.value += amount

    def _reset(self) -> None:
        self.value = 0.0

    def _snapshot(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket histogram with percentile estimates.

    Buckets are upper bounds (ascending); an implicit ``+Inf`` bucket
    catches the tail.  Exact ``sum``/``count``/``min``/``max`` are kept
    alongside, so :meth:`quantile` can clamp its linear interpolation
    to the observed range — the standard Prometheus
    ``histogram_quantile`` estimate, but never outside [min, max].
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count", "min", "max", "_lock")

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        lock: threading.RLock,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram buckets must be non-empty and ascending: {bounds}")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        with self._lock:
            idx = self._bucket_index(value)
            self.counts[idx] += 1
            self.sum += value
            self.count += 1
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def _bucket_index(self, value: float) -> int:
        # Linear scan: bucket lists are short (~15) and this avoids a
        # bisect import dance; observe() is called per batch, not per
        # request.
        for idx, bound in enumerate(self.buckets):
            if value <= bound:
                return idx
        return len(self.buckets)

    @property
    def mean(self) -> float:
        """Exact arithmetic mean of the samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile from bucket counts (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            target = q * self.count
            cumulative = 0.0
            lower = 0.0
            for bound, c in zip(self.buckets, self.counts):
                if c and cumulative + c >= target:
                    frac = (target - cumulative) / c
                    est = lower + (bound - lower) * frac
                    return self._clamp(est)
                if c:
                    cumulative += c
                lower = bound
            # Landed in the +Inf bucket: the best estimate is the max.
            return self._clamp(self.max if self.max is not None else lower)

    def _clamp(self, value: float) -> float:
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    def _reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = None
        self.max = None

    def _snapshot(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class Span:
    """One timed region with parent/child nesting and attributes.

    Entering pushes the span name onto the ambient stack (so inner
    spans know their parent); exiting records ``{name, parent, depth,
    start, duration, attrs}`` into the registry and observes the
    duration in the ``span.<name>`` histogram.
    """

    __slots__ = ("name", "attrs", "_registry", "_start", "_token", "_parent", "_depth")

    def __init__(self, registry: "MetricsRegistry", name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = {k: _coerce_attr(v) for k, v in attrs.items()}
        self._registry = registry

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes mid-span (e.g. iteration counts known late)."""
        for key, value in attrs.items():
            self.attrs[key] = _coerce_attr(value)
        return self

    def __enter__(self) -> "Span":
        stack = _SPAN_STACK.get()
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        self._token = _SPAN_STACK.set(stack + (self.name,))
        self._start = self._registry._clock()
        return self

    def __exit__(self, *exc: object) -> None:
        duration = self._registry._clock() - self._start
        _SPAN_STACK.reset(self._token)
        self._registry._record_span(
            {
                "name": self.name,
                "parent": self._parent,
                "depth": self._depth,
                "start": self._start,
                "duration": duration,
                "attrs": dict(self.attrs),
            }
        )


class MetricsRegistry:
    """Thread-safe home for counters, gauges, histograms, and spans.

    Parameters
    ----------
    clock:
        Time source for span durations (injectable; pair with
        :class:`repro.serving.faults.ManualClock` for exact tests).
    max_spans:
        Bound on retained span records; oldest are dropped first so a
        long-lived service cannot leak memory through tracing.

    Examples
    --------
    >>> reg = MetricsRegistry()
    >>> reg.counter("requests").inc(3)
    >>> with reg.span("fit") as sp:
    ...     _ = sp.set(phase="offline")
    >>> reg.counter("requests").value
    3.0
    >>> reg.snapshot()["spans"][0]["name"]
    'fit'
    """

    enabled = True

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        max_spans: int = 1000,
    ) -> None:
        self._clock = clock
        self.max_spans = int(max_spans)
        self._lock = threading.RLock()
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}
        self._kinds: dict[str, str] = {}
        self._spans: list[dict] = []

    # ------------------------------------------------------------------
    # Metric handles (get-or-create)
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: dict[str, Any], **kwargs):
        if not name:
            raise ValueError("metric name must be non-empty")
        clean = {k: str(v) for k, v in labels.items()}
        key = (name, _labels_key(clean))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                kind = self._kinds.get(name)
                if kind is not None and kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as a {kind}, not a {cls.kind}"
                    )
                metric = cls(name, clean, self._lock, **kwargs)
                self._metrics[key] = metric
                self._kinds[name] = cls.kind
                return metric
            if metric.kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {metric.kind}, "
                    f"not a {cls.kind}"
                )
            if kwargs.get("buckets") is not None and tuple(
                float(b) for b in kwargs["buckets"]
            ) != metric.buckets:
                raise ValueError(
                    f"histogram {name!r} already registered with buckets {metric.buckets}"
                )
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create the counter ``name`` with the given labels."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create the gauge ``name`` with the given labels."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        *,
        buckets: Iterable[float] | None = None,
        **labels: Any,
    ) -> Histogram:
        """Get or create the histogram ``name`` (buckets fixed at creation)."""
        if buckets is None:
            return self._get(Histogram, name, labels)
        return self._get(Histogram, name, labels, buckets=tuple(buckets))

    def span(self, name: str, **attrs: Any) -> Span:
        """A context manager timing a named region (see :class:`Span`)."""
        if not name:
            raise ValueError("span name must be non-empty")
        return Span(self, name, attrs)

    def _record_span(self, record: dict) -> None:
        with self._lock:
            self._spans.append(record)
            if len(self._spans) > self.max_spans:
                del self._spans[: len(self._spans) - self.max_spans]
        self.histogram(f"span.{record['name']}").observe(record["duration"])

    # ------------------------------------------------------------------
    # Snapshot / delta protocol
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-able, picklable view of everything recorded so far."""
        with self._lock:
            out: dict[str, Any] = {"counters": [], "gauges": [], "histograms": []}
            for metric in self._metrics.values():
                out[metric.kind + "s"].append(metric._snapshot())
            out["spans"] = [dict(rec, attrs=dict(rec["attrs"])) for rec in self._spans]
            return out

    def drain(self) -> dict:
        """Snapshot then reset, atomically — the worker-side delta step.

        Counters/histograms restart from zero and spans are cleared, so
        consecutive drains partition the sample stream: merging every
        delta exactly once reconstructs the registry with no loss and
        no double counting.
        """
        with self._lock:
            snap = self.snapshot()
            for metric in self._metrics.values():
                metric._reset()
            self._spans.clear()
            return snap

    def merge(self, delta: dict) -> None:
        """Fold a :meth:`snapshot`/:meth:`drain` delta into this registry.

        Counters add; gauges take the delta's value; histograms add
        bucket counts (bucket bounds must match); spans append.
        """
        if not delta:
            return
        with self._lock:
            for rec in delta.get("counters", ()):
                self.counter(rec["name"], **rec["labels"]).value += rec["value"]
            for rec in delta.get("gauges", ()):
                self.gauge(rec["name"], **rec["labels"]).value = rec["value"]
            for rec in delta.get("histograms", ()):
                hist = self.histogram(
                    rec["name"], buckets=tuple(rec["buckets"]), **rec["labels"]
                )
                for idx, c in enumerate(rec["counts"]):
                    hist.counts[idx] += c
                hist.sum += rec["sum"]
                hist.count += rec["count"]
                if rec["min"] is not None and (hist.min is None or rec["min"] < hist.min):
                    hist.min = rec["min"]
                if rec["max"] is not None and (hist.max is None or rec["max"] > hist.max):
                    hist.max = rec["max"]
            for rec in delta.get("spans", ()):
                self._spans.append(dict(rec))
            if len(self._spans) > self.max_spans:
                del self._spans[: len(self._spans) - self.max_spans]

    def reset(self) -> None:
        """Zero every metric and clear spans (metric handles survive)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._reset()
            self._spans.clear()

    # ------------------------------------------------------------------
    # Introspection conveniences (tests, health endpoints)
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of a counter (0.0 if never touched)."""
        key = (name, _labels_key({k: str(v) for k, v in labels.items()}))
        with self._lock:
            metric = self._metrics.get(key)
            return metric.value if metric is not None else 0.0

    def spans(self, name: str | None = None) -> list[dict]:
        """Recorded span records, optionally filtered by name."""
        with self._lock:
            if name is None:
                return [dict(rec) for rec in self._spans]
            return [dict(rec) for rec in self._spans if rec["name"] == name]

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry(metrics={len(self._metrics)}, "
                f"spans={len(self._spans)})"
            )


# ----------------------------------------------------------------------
# The disabled path: shared no-op handles, one attribute check to skip
# ----------------------------------------------------------------------
class _NullMetric:
    """Accepts every metric operation and does nothing."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0
    min = None
    max = None

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


class _NullSpan:
    """A reusable no-op context manager standing in for :class:`Span`."""

    __slots__ = ()
    name = ""
    attrs: dict = {}

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_METRIC = _NullMetric()
_NULL_SPAN = _NullSpan()


class NullRegistry:
    """The default, disabled registry: every handle is a shared no-op.

    Instrumentation sites check ``registry.enabled`` before doing any
    label formatting or arithmetic, so a disabled system pays one
    attribute load per site.  The handles are still real objects, so
    un-guarded calls (cold paths, tests) are safe too.
    """

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullMetric:
        """The shared no-op metric handle."""
        return _NULL_METRIC

    def gauge(self, name: str, **labels: Any) -> _NullMetric:
        """The shared no-op metric handle."""
        return _NULL_METRIC

    def histogram(self, name: str, *, buckets=None, **labels: Any) -> _NullMetric:
        """The shared no-op metric handle."""
        return _NULL_METRIC

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        """The shared no-op span context manager."""
        return _NULL_SPAN

    def snapshot(self) -> dict:
        """An empty snapshot (same shape as the real one)."""
        return {"counters": [], "gauges": [], "histograms": [], "spans": []}

    def drain(self) -> dict:
        """An empty delta; nothing to reset."""
        return self.snapshot()

    def merge(self, delta: dict) -> None:
        """Discard the delta."""
        pass

    def reset(self) -> None:
        """Nothing to clear."""
        pass

    def counter_value(self, name: str, **labels: Any) -> float:
        """Always 0.0 — nothing is ever recorded."""
        return 0.0

    def spans(self, name: str | None = None) -> list[dict]:
        """Always empty — spans are never recorded."""
        return []

    def __repr__(self) -> str:
        return "NullRegistry()"


#: The shared disabled registry every layer defaults to.
NULL_REGISTRY = NullRegistry()
