"""Exposition formats: JSON snapshot and Prometheus text format.

Two renderings of one :meth:`~repro.obs.registry.MetricsRegistry.
snapshot`:

* :func:`render_json` — the snapshot as a JSON document, spans and
  percentile estimates included.  This is what ``repro metrics
  --format json`` prints and what ``BENCH_*.json`` artefacts are
  derived from.
* :func:`render_prometheus` — the `text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
  scrapers expect: one ``# HELP``/``# TYPE`` pair per family, dotted
  metric names sanitised to underscores, counters suffixed
  ``_total``, histograms expanded to cumulative ``_bucket{le=...}``
  series plus ``_sum``/``_count``.  Spans are not emitted directly —
  their durations already surface as ``span_*`` histograms.
"""

from __future__ import annotations

import json
import re

__all__ = ["render_json", "render_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _snapshot_of(registry_or_snapshot) -> dict:
    if hasattr(registry_or_snapshot, "snapshot"):
        return registry_or_snapshot.snapshot()
    return registry_or_snapshot


def sanitize_name(name: str) -> str:
    """A dotted repro metric name as a legal Prometheus metric name."""
    clean = _NAME_RE.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = sorted(labels.items()) + list(extra)
    if not items:
        return ""
    rendered = ",".join(
        f'{sanitize_name(k)}="{_escape(v)}"' for k, v in items
    )
    return "{" + rendered + "}"


def _escape(value) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_json(registry_or_snapshot, *, indent: int | None = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(_snapshot_of(registry_or_snapshot), indent=indent, sort_keys=True)


def render_prometheus(registry_or_snapshot) -> str:
    """The registry snapshot in the Prometheus text exposition format.

    Guarantees scrapers rely on: each family's ``# HELP`` and
    ``# TYPE`` appear exactly once, samples of a family are
    contiguous, histogram bucket counts are cumulative and end with
    ``le="+Inf"`` equal to ``_count``.

    Examples
    --------
    >>> from repro.obs import MetricsRegistry
    >>> reg = MetricsRegistry()
    >>> reg.counter("serving.requests", stage="primary").inc(2)
    >>> print(render_prometheus(reg))
    # HELP serving_requests_total serving.requests
    # TYPE serving_requests_total counter
    serving_requests_total{stage="primary"} 2
    <BLANKLINE>
    """
    snap = _snapshot_of(registry_or_snapshot)
    lines: list[str] = []

    # Group series by exposition family so HELP/TYPE are emitted once.
    families: dict[str, tuple[str, str, list[dict]]] = {}

    def _family(fam: str, kind: str, original: str) -> list[dict]:
        entry = families.get(fam)
        if entry is None:
            entry = (kind, original, [])
            families[fam] = entry
        return entry[2]

    for rec in snap.get("counters", ()):
        fam = sanitize_name(rec["name"])
        if not fam.endswith("_total"):
            fam += "_total"
        _family(fam, "counter", rec["name"]).append(rec)
    for rec in snap.get("gauges", ()):
        _family(sanitize_name(rec["name"]), "gauge", rec["name"]).append(rec)
    for rec in snap.get("histograms", ()):
        _family(sanitize_name(rec["name"]), "histogram", rec["name"]).append(rec)

    for fam in sorted(families):
        kind, original, series = families[fam]
        lines.append(f"# HELP {fam} {original}")
        lines.append(f"# TYPE {fam} {kind}")
        for rec in series:
            labels = rec["labels"]
            if kind in ("counter", "gauge"):
                lines.append(f"{fam}{_fmt_labels(labels)} {_fmt_value(rec['value'])}")
                continue
            cumulative = 0
            for bound, c in zip(rec["buckets"], rec["counts"]):
                cumulative += c
                le = _fmt_labels(labels, (("le", _fmt_value(bound)),))
                lines.append(f"{fam}_bucket{le} {cumulative}")
            le = _fmt_labels(labels, (("le", "+Inf"),))
            lines.append(f"{fam}_bucket{le} {rec['count']}")
            lines.append(f"{fam}_sum{_fmt_labels(labels)} {_fmt_value(rec['sum'])}")
            lines.append(f"{fam}_count{_fmt_labels(labels)} {rec['count']}")
    return "\n".join(lines) + "\n"
