"""Observability: the metrics registry, tracing spans, and exposition.

The serving layer (PR 1) made the system degrade instead of fail;
this subpackage makes it *visible* — what degraded, how often, and
where the time goes:

* :mod:`~repro.obs.registry` — the thread-safe in-process
  :class:`MetricsRegistry` (counters, gauges, fixed-bucket histograms
  with percentile estimates, tracing spans) plus the picklable
  snapshot/drain/merge delta protocol that carries worker-process
  measurements back to the parent, and the no-op
  :class:`NullRegistry` every layer defaults to.
* :mod:`~repro.obs.spans` — the ambient registry
  (:func:`get_registry` / :func:`set_registry` / :func:`use_registry`)
  and the free :func:`span` context manager the offline pipeline is
  instrumented with (``model.fit`` → ``gis.build`` / ``cluster.fit``
  / ``smooth.apply`` / ``icluster.build``).
* :mod:`~repro.obs.exposition` — :func:`render_json` and
  :func:`render_prometheus`, reachable via ``python -m repro metrics``
  and :meth:`repro.serving.PredictionService.health`.

Everything here is stdlib-only, and with observability disabled (the
default) each instrumentation site costs a single attribute check.
See ``docs/observability.md`` for naming conventions and the span
taxonomy.
"""

from repro.obs.exposition import render_json, render_prometheus
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Span,
)
from repro.obs.spans import get_registry, set_registry, span, use_registry

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "Span",
    "get_registry",
    "render_json",
    "render_prometheus",
    "set_registry",
    "span",
    "use_registry",
]
