"""Ambient registry plumbing and the free ``span`` helper.

The offline pipeline (:func:`repro.core.gis.build_gis`,
:func:`repro.core.clustering.cluster_users`,
:func:`repro.core.smoothing.smooth_ratings`, ``CFSF.fit``) is called
from many entry points — the CLI, the benchmark harness, the eval
protocol driver — and threading a registry argument through every one
of them would put observability into dozens of signatures that have
nothing to do with it.  Instead there is one process-wide *ambient*
registry, defaulting to the no-op :data:`~repro.obs.registry.
NULL_REGISTRY`; instrumentation sites call :func:`span` (or
:func:`get_registry`) and callers that want measurements opt in with
:func:`set_registry` or the scoped :func:`use_registry`.

Explicitly-injected registries (``PredictionService(metrics=...)``)
always win over the ambient one; the ambient default is only the
fallback for sites with no injection seam.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry, NullRegistry, Span, _NullSpan

__all__ = ["get_registry", "set_registry", "use_registry", "span"]

_ambient: MetricsRegistry | NullRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The current ambient registry (the no-op one unless opted in)."""
    return _ambient


def set_registry(registry: MetricsRegistry | NullRegistry | None):
    """Install *registry* as the ambient one; returns the previous.

    Passing ``None`` restores the disabled default.
    """
    global _ambient
    previous = _ambient
    _ambient = NULL_REGISTRY if registry is None else registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | NullRegistry) -> Iterator[MetricsRegistry | NullRegistry]:
    """Scoped :func:`set_registry`: restore the previous registry on exit.

    Examples
    --------
    >>> from repro.obs import MetricsRegistry, use_registry, span
    >>> reg = MetricsRegistry()
    >>> with use_registry(reg):
    ...     with span("work"):
    ...         pass
    >>> [s["name"] for s in reg.spans()]
    ['work']
    """
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def span(name: str, **attrs: Any) -> Span | _NullSpan:
    """Open a span on the ambient registry (no-op when disabled)."""
    return _ambient.span(name, **attrs)
