"""A checkout/return pool of per-worker fusion kernels.

:class:`~repro.core.fusion.FusionKernel` owns reusable scratch buffers
(the Eq. 13 workspace, gather staging, the prepared-user slab), which
makes ``fuse_many`` fast — and **non-re-entrant**.  Pre-concurrency,
the serving layer simply serialised every call; under the ROADMAP's
"heavy traffic" goal that turns the whole service into a single-file
queue.

:class:`KernelPool` removes the serialisation without giving up the
warm buffers: it lends each dispatch worker its own
:meth:`~repro.core.fusion.FusionKernel.clone` — the O(P·Q) derived
matrices are shared read-only, only the scratch is duplicated — so N
workers fuse concurrently and never race.  Kernels are created
lazily: a pool of ``max_workers=8`` that only ever sees two
concurrent dispatches holds two clones.

Checkout latency is recorded in the ``serving.pool.checkout`` obs
histogram and the in-use count in the ``serving.pool.in_use`` gauge,
so pool exhaustion (checkouts queueing on the condition variable)
is visible on the same dashboards as queue depth.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.core.fusion import FusionKernel
from repro.obs import get_registry
from repro.utils.validation import check_positive_int

__all__ = ["KernelPool"]


class KernelPool:
    """Lazily grown pool of cloned fusion kernels (checkout/return).

    Parameters
    ----------
    template:
        The kernel to clone workers from (typically ``model.kernel``
        after :meth:`~repro.core.model.CFSF.warm_online`).
    max_workers:
        Upper bound on live clones.  A checkout beyond the bound
        blocks until another worker returns its kernel — the pool is
        the concurrency throttle for the fusion stage, so this is
        effectively "how many fusion evaluations may run at once".
    clock:
        Injectable time source for the checkout-latency histogram.
    metrics:
        A :class:`~repro.obs.MetricsRegistry`; defaults to the ambient
        registry (a no-op unless observability was opted into).

    Examples
    --------
    >>> from repro.core import CFSF
    >>> from repro.data import make_movielens_like, make_split
    >>> split = make_split(make_movielens_like(seed=0).ratings,
    ...                    n_train_users=300, given_n=10)
    >>> model = CFSF().fit(split.train)
    >>> pool = KernelPool(model.kernel, max_workers=2)
    >>> with pool.checkout() as kernel:
    ...     kernel is not model.kernel
    True
    >>> pool.created
    1
    """

    def __init__(
        self,
        template: FusionKernel,
        max_workers: int = 4,
        *,
        clock: Callable[[], float] = time.perf_counter,
        metrics=None,
    ) -> None:
        if template is None:
            raise ValueError("KernelPool needs a built FusionKernel template")
        self.max_workers = check_positive_int(max_workers, "max_workers")
        self._template = template
        self._clock = clock
        self.metrics = get_registry() if metrics is None else metrics
        self._cond = threading.Condition()
        self._free: list[FusionKernel] = []
        self._created = 0
        self._in_use = 0

    @property
    def created(self) -> int:
        """Clones materialised so far (lazy growth: ≤ max_workers)."""
        return self._created

    @property
    def in_use(self) -> int:
        """Kernels currently checked out."""
        return self._in_use

    @property
    def available(self) -> int:
        """Kernels that a checkout would get without cloning or waiting."""
        return len(self._free)

    def _acquire(self, timeout: float | None) -> FusionKernel:
        t0 = self._clock()
        with self._cond:
            while True:
                if self._free:
                    kernel = self._free.pop()
                    break
                if self._created < self.max_workers:
                    self._created += 1
                    # Clone under the lock: it copies references and
                    # allocates a few empty arrays, so the critical
                    # section stays trivially short while keeping the
                    # created-count accounting exact.
                    kernel = self._template.clone()
                    break
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"no kernel free after {timeout}s "
                        f"({self._created}/{self.max_workers} all checked out)"
                    )
            self._in_use += 1
            in_use = self._in_use
        reg = self.metrics
        if reg.enabled:
            reg.histogram("serving.pool.checkout").observe(self._clock() - t0)
            reg.gauge("serving.pool.in_use").set(in_use)
        return kernel

    def _release(self, kernel: FusionKernel) -> None:
        with self._cond:
            self._free.append(kernel)
            self._in_use -= 1
            in_use = self._in_use
            self._cond.notify()
        reg = self.metrics
        if reg.enabled:
            reg.gauge("serving.pool.in_use").set(in_use)

    @contextmanager
    def checkout(self, timeout: float | None = None) -> Iterator[FusionKernel]:
        """Borrow a kernel for the duration of the ``with`` block.

        Blocks while every clone is checked out (raising
        :class:`TimeoutError` after *timeout* seconds when given).
        The kernel is returned to the free list even when the block
        raises — a failed dispatch must not leak pool capacity.
        """
        kernel = self._acquire(timeout)
        try:
            yield kernel
        finally:
            self._release(kernel)

    def stats(self) -> dict:
        """Pool occupancy snapshot for health endpoints and tests."""
        with self._cond:
            return {
                "max_workers": self.max_workers,
                "created": self._created,
                "in_use": self._in_use,
                "free": len(self._free),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelPool(max_workers={self.max_workers}, "
            f"created={self._created}, in_use={self._in_use})"
        )
