"""Circuit breaker guarding each stage of the fallback chain.

The classic pattern (Nygard, *Release It!*): a stage that keeps
failing should stop being *tried* — every attempt against a broken
dependency costs latency and can cascade.  The breaker tracks
consecutive failures and moves through three states:

``closed``
    Normal operation; calls flow through.  ``failure_threshold``
    consecutive failures trip it open.
``open``
    Calls are refused outright (:meth:`CircuitBreaker.allow` returns
    ``False``).  After a backoff delay the breaker half-opens.
``half_open``
    One probe call is let through.  Success closes the breaker and
    resets the backoff; failure re-opens it with the delay doubled
    (capped at ``max_reset_timeout``).

The re-open delay grows exponentially and carries multiplicative
jitter — ``delay = base * factor**opens * (1 + jitter * U[0,1))`` —
so a fleet of replicas recovering from a shared outage does not probe
the struggling dependency in lockstep.  Both the clock and the jitter
RNG are injectable, which is what makes every transition deterministic
under test (see ``tests/test_serving_breaker.py``).
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable

from repro.obs import get_registry
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["CircuitBreaker", "CircuitState"]


class CircuitState(str, enum.Enum):
    """The three breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with jittered backoff.

    Parameters
    ----------
    name:
        Label used in diagnostics (conventionally the stage name).
    failure_threshold:
        Consecutive failures that trip a closed breaker open.
    reset_timeout:
        Base open-state delay in seconds before the first half-open
        probe.
    backoff_factor:
        Multiplier applied to the delay on every re-open without an
        intervening success.
    max_reset_timeout:
        Upper bound on the (pre-jitter) delay.
    jitter:
        Fractional jitter; the delay is scaled by ``1 + jitter*U[0,1)``.
    clock:
        Monotonic time source (injectable for tests).
    rng:
        Seed or :class:`numpy.random.Generator` for the jitter draw.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` recording the
        ``breaker.transitions`` counter and ``breaker.open.seconds``
        gauge (defaults to the ambient registry — a no-op unless
        observability was opted into).
    """

    def __init__(
        self,
        name: str = "",
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        backoff_factor: float = 2.0,
        max_reset_timeout: float = 60.0,
        jitter: float = 0.2,
        clock: Callable[[], float] = time.monotonic,
        rng=None,
        metrics=None,
    ) -> None:
        self.name = name
        self.failure_threshold = check_positive_int(failure_threshold, "failure_threshold")
        if reset_timeout <= 0.0:
            raise ValueError(f"reset_timeout must be > 0, got {reset_timeout}")
        if backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {backoff_factor}")
        if jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.reset_timeout = float(reset_timeout)
        self.backoff_factor = float(backoff_factor)
        self.max_reset_timeout = float(max_reset_timeout)
        self.jitter = float(jitter)
        self._clock = clock
        self._rng = as_generator(rng)
        self._metrics = get_registry() if metrics is None else metrics
        # One re-entrant mutex per breaker: allow/record calls arrive
        # from every dispatch worker of the concurrent serving front,
        # and a torn state transition (e.g. two threads both tripping)
        # would double-count opens and corrupt the backoff streak.
        # RLock because snapshot() reads via open_seconds()/retry_in().
        self._mutex = threading.RLock()

        self.state = CircuitState.CLOSED
        self.consecutive_failures = 0
        self.failures = 0
        self.successes = 0
        self.open_count = 0          # total times the breaker tripped
        self.open_seconds_total = 0.0  # cumulative time spent open
        self._opened_at: float | None = None
        self._open_streak = 0        # re-opens without a success (drives backoff)
        self._retry_at = 0.0
        self.last_delay = 0.0

    def _set_state(self, new_state: CircuitState) -> None:
        """Transition with open-time accounting and metric recording."""
        if new_state is self.state:
            return
        now = self._clock()
        if self.state is CircuitState.OPEN and self._opened_at is not None:
            self.open_seconds_total += now - self._opened_at
            self._opened_at = None
        if new_state is CircuitState.OPEN:
            self._opened_at = now
        self.state = new_state
        metrics = self._metrics
        if metrics.enabled:
            label = self.name or "unnamed"
            metrics.counter(
                "breaker.transitions", breaker=label, to=new_state.value
            ).inc()
            metrics.gauge("breaker.open.seconds", breaker=label).set(
                self.open_seconds_total
            )

    def open_seconds(self) -> float:
        """Cumulative seconds spent open, including any current stretch."""
        with self._mutex:
            total = self.open_seconds_total
            if self.state is CircuitState.OPEN and self._opened_at is not None:
                total += self._clock() - self._opened_at
            return total

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a call be attempted right now?

        Transitions ``open -> half_open`` as a side effect once the
        backoff delay has elapsed.  Under concurrency exactly one
        caller wins the half-open probe slot per backoff window (the
        transition happens under the breaker mutex), though callers
        already in flight when the breaker trips are not recalled.
        """
        with self._mutex:
            if self.state is CircuitState.OPEN:
                if self._clock() >= self._retry_at:
                    self._set_state(CircuitState.HALF_OPEN)
                    return True
                return False
            return True

    def record_success(self) -> None:
        """A call through this breaker succeeded: close and reset."""
        with self._mutex:
            self.successes += 1
            self.consecutive_failures = 0
            self._open_streak = 0
            self._set_state(CircuitState.CLOSED)

    def record_failure(self) -> None:
        """A call through this breaker failed.

        A half-open probe failure re-opens immediately (with a longer
        delay); in the closed state the breaker trips once
        ``failure_threshold`` consecutive failures accumulate.
        """
        with self._mutex:
            self.failures += 1
            self.consecutive_failures += 1
            if (
                self.state is CircuitState.HALF_OPEN
                or self.consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def retry_in(self) -> float:
        """Seconds until the next half-open probe (0 when not open)."""
        with self._mutex:
            if self.state is not CircuitState.OPEN:
                return 0.0
            return max(0.0, self._retry_at - self._clock())

    # ------------------------------------------------------------------
    def _trip(self) -> None:
        base = min(
            self.reset_timeout * self.backoff_factor**self._open_streak,
            self.max_reset_timeout,
        )
        self.last_delay = base * (1.0 + self.jitter * float(self._rng.random()))
        self._retry_at = self._clock() + self.last_delay
        self._set_state(CircuitState.OPEN)
        self.open_count += 1
        self._open_streak += 1

    def snapshot(self) -> dict:
        """Counters and state for health endpoints / tests (atomic)."""
        with self._mutex:
            return {
                "name": self.name,
                "state": self.state.value,
                "failures": self.failures,
                "successes": self.successes,
                "consecutive_failures": self.consecutive_failures,
                "open_count": self.open_count,
                "open_seconds": self.open_seconds(),
                "retry_in": self.retry_in(),
            }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(name={self.name!r}, state={self.state.value}, "
            f"failures={self.failures}, opens={self.open_count})"
        )
