"""Concurrent micro-batched serving: coalesce, sort, dispatch.

CFSF's local M×K formulation (PAPER.md §IV) makes per-request work
small — small enough that per-*call* overhead (validation, cache
probes, kernel dispatch) dominates a single-request path.  The
standard scaling move for memory-based CF is request-level concurrency
over shared read-only state (cf. Lucene-backed memory CF); this module
adds the missing front:

* :class:`MicroBatcher` accepts requests from any number of caller
  threads, holds them for at most ``max_wait_us`` microseconds (or
  until ``max_batch_size`` accumulate), then dispatches the coalesced
  batch — **user-sorted**, so :meth:`CFSF.predict_many` hits its
  sorted fast path and same-user requests share one prepared state —
  through the owning :class:`~repro.serving.service.PredictionService`.
* Each dispatch borrows a private kernel clone from a
  :class:`~repro.serving.pool.KernelPool`, so concurrent dispatches
  never share the non-re-entrant fusion scratch buffers.
* **Admission control**: the queue is bounded (``max_queue``).  When
  full, policy ``"raise"`` rejects with the typed
  :class:`~repro.serving.errors.OverloadedError`; policy ``"shed"``
  answers immediately through the service's existing fallback chain
  (a zero-deadline dispatch short-circuits to the cheap user-mean
  stage, flagged ``deadline_deferred``) — every request still gets an
  answer, it just skips the queue *and* the expensive primary stage.

Observability (ambient or injected registry):

=================================  ====================================
``serving.batcher.queue_depth``    gauge — pending requests
``serving.batcher.batch_size``     histogram — requests per dispatch
``serving.batcher.coalesce_wait``  histogram — submit→dispatch seconds
``serving.batcher.dispatches``     counter — batches dispatched
``serving.batcher.overloaded``     counter — admissions refused/shed
``serving.pool.checkout``          histogram — kernel checkout wait
``serving.pool.in_use``            gauge — kernels checked out
=================================  ====================================

`benchmarks/bench_serving_throughput.py` measures the result: ≥3× the
RPS of the serialised baseline at 8 client threads, with batched
predictions bit-for-bit equal to the serial path.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.data.matrix import RatingMatrix
from repro.obs import get_registry
from repro.serving.errors import OverloadedError
from repro.serving.pool import KernelPool
from repro.serving.service import PredictionService
from repro.utils.validation import check_positive_int

__all__ = ["BatchedPrediction", "MicroBatcher"]

#: Batch-size histogram buckets (requests per dispatch, powers of two).
#: The default obs buckets are latencies — meaningless for counts.
_BATCH_SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class BatchedPrediction:
    """One request's answer, with its serving provenance."""

    value: float
    fallback_level: int
    stage: str
    degraded: bool
    queue_wait: float  # seconds from submit to dispatch start


@dataclass
class _Pending:
    given: RatingMatrix
    user: int
    item: int
    future: Future
    enqueued_at: float


class MicroBatcher:
    """Coalesce concurrent requests into sorted batches over a kernel pool.

    Parameters
    ----------
    service:
        The :class:`~repro.serving.service.PredictionService` to
        dispatch through (lenient mode recommended: a strict service
        raising on one bad request fails its whole coalesced batch).
    max_batch_size:
        Most requests dispatched per batch.
    max_wait_us:
        Longest a request waits (microseconds) for companions before
        its batch dispatches anyway.  The knob trades tail latency for
        coalescing: 0 dispatches immediately (batching only what is
        already queued), larger values build bigger batches under
        bursty load.
    max_queue:
        Admission bound on pending requests (see *overload_policy*).
    workers:
        Dispatch threads, and the default :class:`KernelPool` size.
        More workers than CPU cores rarely helps: the fusion kernels
        are NumPy-bound and mostly hold the GIL only briefly.
    pool:
        An explicit :class:`~repro.serving.pool.KernelPool` to share
        between batchers; built automatically from ``service.model``'s
        kernel when omitted.  Models without a fusion kernel (plain
        baselines) fall back to serialised dispatch under one mutex —
        correct, just not concurrent.
    overload_policy:
        ``"raise"`` (default) or ``"shed"`` — see the module docstring.
    clock:
        Injectable time source for queue-wait bookkeeping.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` (defaults to ambient).

    Examples
    --------
    >>> from repro.core import CFSF
    >>> from repro.data import make_movielens_like, make_split
    >>> from repro.serving import PredictionService
    >>> split = make_split(make_movielens_like(seed=0).ratings,
    ...                    n_train_users=300, given_n=10)
    >>> service = PredictionService(CFSF().fit(split.train))
    >>> users, items, _ = split.targets_arrays()
    >>> with MicroBatcher(service, workers=2) as batcher:
    ...     value = batcher.predict(split.given, int(users[0]), int(items[0]))
    >>> abs(value - service.predict(split.given, int(users[0]), int(items[0]))) < 1e-12
    True
    """

    def __init__(
        self,
        service: PredictionService,
        *,
        max_batch_size: int = 64,
        max_wait_us: float = 500.0,
        max_queue: int = 1024,
        workers: int = 2,
        pool: KernelPool | None = None,
        overload_policy: str = "raise",
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
    ) -> None:
        if overload_policy not in ("raise", "shed"):
            raise ValueError(
                f"overload_policy must be 'raise' or 'shed', got {overload_policy!r}"
            )
        self.service = service
        self.max_batch_size = check_positive_int(max_batch_size, "max_batch_size")
        if max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {max_wait_us}")
        self.max_wait = float(max_wait_us) * 1e-6
        self.max_queue = check_positive_int(max_queue, "max_queue")
        self.overload_policy = overload_policy
        self._clock = clock
        self.metrics = get_registry() if metrics is None else metrics

        model = service.model
        if pool is not None:
            self._pool = pool
        else:
            kernel = getattr(model, "kernel", None)
            can_borrow = hasattr(model, "borrowed_kernel")
            self._pool = (
                KernelPool(kernel, max_workers=workers, metrics=self.metrics)
                if kernel is not None and can_borrow
                else None
            )
        # Serialised-dispatch fallback for models with no kernel pool.
        self._serial_mutex = threading.Lock()

        self._cond = threading.Condition()
        self._queue: deque[_Pending] = deque()
        self._closed = False
        self.dispatched_batches = 0
        self.dispatched_requests = 0
        self.shed_total = 0
        self.rejected_total = 0
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"microbatch-{i}", daemon=True
            )
            for i in range(check_positive_int(workers, "workers"))
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, given: RatingMatrix, user: int, item: int) -> Future:
        """Enqueue one request; resolves to a :class:`BatchedPrediction`.

        Never blocks.  On a full queue the overload policy decides:
        ``"raise"`` fails fast with :class:`OverloadedError`,
        ``"shed"`` resolves the future immediately from the fallback
        chain (degraded, but answered).
        """
        future: Future = Future()
        reg = self.metrics
        with self._cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            depth = len(self._queue)
            if depth >= self.max_queue:
                overloaded = True
            else:
                overloaded = False
                self._queue.append(
                    _Pending(given, int(user), int(item), future, self._clock())
                )
                self._cond.notify()
        # The queue-depth gauge is refreshed at dispatch (and below on
        # overload) rather than per submit: a per-submit registry write
        # is measurable at micro-batch request rates.
        if overloaded:
            if reg.enabled:
                reg.gauge("serving.batcher.queue_depth").set(depth)
                reg.counter(
                    "serving.batcher.overloaded", policy=self.overload_policy
                ).inc()
            if self.overload_policy == "raise":
                with self._cond:
                    self.rejected_total += 1
                raise OverloadedError(depth, self.max_queue)
            # Shed: a zero-deadline dispatch walks the existing
            # fallback machinery but defers every block to the cheap
            # stage — bounded work, flagged degraded.
            with self._cond:
                self.shed_total += 1
            result = self.service.predict_many(
                given, np.array([user]), np.array([item]), deadline=0.0
            )
            level = int(result.fallback_level[0])
            future.set_result(
                BatchedPrediction(
                    value=float(result.predictions[0]),
                    fallback_level=level,
                    stage=result.stage_names[level],
                    degraded=True,
                    queue_wait=0.0,
                )
            )
        return future

    def predict(
        self, given: RatingMatrix, user: int, item: int, *, timeout: float | None = None
    ) -> float:
        """Blocking convenience wrapper: submit and wait for the value."""
        return self.submit(given, user, item).result(timeout=timeout).value

    # ------------------------------------------------------------------
    # Dispatch workers
    # ------------------------------------------------------------------
    def _collect(self) -> list[_Pending] | None:
        """Block until a batch is ready; ``None`` means shut down."""
        with self._cond:
            while True:
                if not self._queue:
                    if self._closed:
                        return None
                    self._cond.wait()
                    continue
                head = self._queue[0]
                now = self._clock()
                deadline = head.enqueued_at + self.max_wait
                if (
                    len(self._queue) >= self.max_batch_size
                    or self._closed
                    or now >= deadline
                ):
                    return self._pop_batch_locked()
                # Condition.wait runs on real time; self._clock only
                # stamps bookkeeping.  An injected manual clock makes
                # waits degenerate to immediate dispatch, which is the
                # deterministic behaviour tests want.
                self._cond.wait(timeout=max(deadline - now, 0.0))

    def _pop_batch_locked(self) -> list[_Pending]:
        """Pop a same-given run off the queue head (caller holds lock)."""
        first = self._queue.popleft()
        batch = [first]
        while (
            self._queue
            and len(batch) < self.max_batch_size
            and self._queue[0].given is first.given
        ):
            batch.append(self._queue.popleft())
        if self._queue:
            # Leftovers (different given matrix, or overflow): another
            # worker can start on them immediately.
            self._cond.notify()
        return batch

    @contextmanager
    def _dispatch_slot(self) -> Iterator[None]:
        pool = self._pool
        if pool is None:
            with self._serial_mutex:
                yield
        else:
            with pool.checkout() as kernel, self.service.model.borrowed_kernel(kernel):
                yield

    def _dispatch(self, batch: list[_Pending]) -> None:
        t_dispatch = self._clock()
        users = np.fromiter((p.user for p in batch), dtype=np.intp, count=len(batch))
        items = np.fromiter((p.item for p in batch), dtype=np.intp, count=len(batch))
        order = np.argsort(users, kind="stable")
        given = batch[0].given
        reg = self.metrics
        if reg.enabled:
            reg.gauge("serving.batcher.queue_depth").set(len(self._queue))
            reg.histogram(
                "serving.batcher.batch_size", buckets=_BATCH_SIZE_BUCKETS
            ).observe(len(batch))
            coalesce = reg.histogram("serving.batcher.coalesce_wait")
            for pending in batch:
                coalesce.observe(max(t_dispatch - pending.enqueued_at, 0.0))
        try:
            with self._dispatch_slot():
                result = self.service.predict_many(given, users[order], items[order])
        except BaseException as exc:  # noqa: BLE001 - fault must reach every caller
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        with self._cond:
            self.dispatched_batches += 1
            self.dispatched_requests += len(batch)
        if reg.enabled:
            reg.counter("serving.batcher.dispatches").inc()
        for pos, src in enumerate(order.tolist()):
            pending = batch[src]
            level = int(result.fallback_level[pos])
            pending.future.set_result(
                BatchedPrediction(
                    value=float(result.predictions[pos]),
                    fallback_level=level,
                    stage=result.stage_names[level],
                    degraded=bool(result.degraded[pos]),
                    queue_wait=max(t_dispatch - pending.enqueued_at, 0.0),
                )
            )

    def _worker(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            self._dispatch(batch)

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self, *, timeout: float | None = None) -> None:
        """Drain the queue, stop the workers, reject further submits."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        for thread in self._workers:
            thread.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def queue_depth(self) -> int:
        """Requests currently pending."""
        return len(self._queue)

    def stats(self) -> dict:
        """Operational snapshot (batches, coalescing, pool occupancy)."""
        out = {
            "queue_depth": len(self._queue),
            "max_queue": self.max_queue,
            "max_batch_size": self.max_batch_size,
            "max_wait_us": self.max_wait * 1e6,
            "workers": len(self._workers),
            "dispatched_batches": self.dispatched_batches,
            "dispatched_requests": self.dispatched_requests,
            "mean_batch_size": (
                self.dispatched_requests / self.dispatched_batches
                if self.dispatched_batches
                else 0.0
            ),
            "rejected_total": self.rejected_total,
            "shed_total": self.shed_total,
            "closed": self._closed,
        }
        if self._pool is not None:
            out["pool"] = self._pool.stats()
        return out
