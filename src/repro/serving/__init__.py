"""Serving: the fault-tolerant layer between requests and the model.

The paper's O(M·K) online phase is built for live traffic; this
subpackage makes it *operable* under the failures live traffic brings:

* :mod:`~repro.serving.errors` — the typed error taxonomy.
* :mod:`~repro.serving.breaker` — circuit breakers with jittered
  exponential backoff.
* :mod:`~repro.serving.service` — :class:`PredictionService`: input
  validation, per-request deadlines with partial-batch results, the
  CFSF → item-KNN → user-mean → global-mean fallback chain, and hot
  snapshot reload with last-known-good rollback.
* :mod:`~repro.serving.faults` — the deterministic fault-injection
  harness (snapshot corruption, worker death, induced latency,
  poisoned ratings) that the robustness tests drive everything with.
* :mod:`~repro.serving.pool` — :class:`KernelPool`: checkout/return
  pool of cloned fusion kernels (shared read-only matrices, private
  scratch) so concurrent dispatches never race.
* :mod:`~repro.serving.batcher` — :class:`MicroBatcher`: the
  concurrent serving front — coalesces in-flight requests into
  user-sorted batches over the kernel pool, with bounded-queue
  admission control.

See ``docs/robustness.md`` for the operational model and
``docs/performance.md`` for the concurrency/batching design.
"""

from repro.serving.batcher import BatchedPrediction, MicroBatcher
from repro.serving.breaker import CircuitBreaker, CircuitState
from repro.serving.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    InvalidRequestError,
    ModelUnavailableError,
    OverloadedError,
    ServingError,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    WorkerCrashError,
)
from repro.serving.pool import KernelPool
from repro.serving.service import PredictionService, ServingResult, StageFailure

__all__ = [
    "BatchedPrediction",
    "CircuitBreaker",
    "CircuitOpenError",
    "CircuitState",
    "DeadlineExceededError",
    "InvalidRequestError",
    "KernelPool",
    "MicroBatcher",
    "ModelUnavailableError",
    "OverloadedError",
    "PredictionService",
    "ServingError",
    "ServingResult",
    "SnapshotCorruptError",
    "SnapshotError",
    "SnapshotVersionError",
    "StageFailure",
    "WorkerCrashError",
]
