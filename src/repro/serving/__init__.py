"""Serving: the fault-tolerant layer between requests and the model.

The paper's O(M·K) online phase is built for live traffic; this
subpackage makes it *operable* under the failures live traffic brings:

* :mod:`~repro.serving.errors` — the typed error taxonomy.
* :mod:`~repro.serving.breaker` — circuit breakers with jittered
  exponential backoff.
* :mod:`~repro.serving.service` — :class:`PredictionService`: input
  validation, per-request deadlines with partial-batch results, the
  CFSF → item-KNN → user-mean → global-mean fallback chain, and hot
  snapshot reload with last-known-good rollback.
* :mod:`~repro.serving.faults` — the deterministic fault-injection
  harness (snapshot corruption, worker death, induced latency,
  poisoned ratings) that the robustness tests drive everything with.

See ``docs/robustness.md`` for the operational model.
"""

from repro.serving.breaker import CircuitBreaker, CircuitState
from repro.serving.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    InvalidRequestError,
    ModelUnavailableError,
    ServingError,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    WorkerCrashError,
)
from repro.serving.service import PredictionService, ServingResult, StageFailure

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "CircuitState",
    "DeadlineExceededError",
    "InvalidRequestError",
    "ModelUnavailableError",
    "PredictionService",
    "ServingError",
    "ServingResult",
    "SnapshotCorruptError",
    "SnapshotError",
    "SnapshotVersionError",
    "StageFailure",
    "WorkerCrashError",
]
