"""Typed error taxonomy for the serving layer.

Every failure mode a production serving path meets is given a distinct
exception type so that callers (the :class:`~repro.serving.service.
PredictionService` fallback chain, operational dashboards, tests) can
react per *kind* of failure instead of string-matching messages:

===============================  =======================================
:class:`InvalidRequestError`     Malformed input — bad shapes, ids out of
                                 range, NaN / out-of-scale ratings.
:class:`DeadlineExceededError`   A request's latency budget ran out.
:class:`ModelUnavailableError`   No usable model (never loaded, or every
                                 load attempt failed).
:class:`CircuitOpenError`        A chain stage is currently tripped.
:class:`SnapshotError`           Umbrella for snapshot load problems.
:class:`SnapshotCorruptError`    The snapshot file is damaged (bad zip,
                                 missing arrays, checksum mismatch).
:class:`SnapshotVersionError`    Readable snapshot in an unknown format.
:class:`WorkerCrashError`        A pool worker died mid-batch.
:class:`OverloadedError`         The admission queue is full; the
                                 request was refused (or shed to the
                                 fallback chain).
===============================  =======================================

The taxonomy deliberately multiple-inherits from the builtin types the
pre-robustness code raised (``ValueError``, ``RuntimeError``,
``TimeoutError``), so introducing it is backward compatible: callers
that caught ``ValueError`` from :func:`repro.core.persistence.load_model`
still catch :class:`SnapshotCorruptError`.

This module has no dependencies on the rest of :mod:`repro` (or on
NumPy) so any layer — including :mod:`repro.core` — may import it
without cycles.
"""

from __future__ import annotations

__all__ = [
    "ServingError",
    "InvalidRequestError",
    "DeadlineExceededError",
    "ModelUnavailableError",
    "CircuitOpenError",
    "OverloadedError",
    "SnapshotError",
    "SnapshotCorruptError",
    "SnapshotVersionError",
    "WorkerCrashError",
]


class ServingError(Exception):
    """Base class for every error in the serving taxonomy."""


class InvalidRequestError(ServingError, ValueError):
    """A request failed input validation.

    Raised for structurally malformed requests (mismatched array
    shapes), ids outside the trained user/item space, and given
    matrices carrying NaN or out-of-scale ratings.
    """


class DeadlineExceededError(ServingError, TimeoutError):
    """A request (or batch remainder) exceeded its latency budget."""


class ModelUnavailableError(ServingError, RuntimeError):
    """No model is available to serve with (and no last-known-good)."""


class CircuitOpenError(ServingError, RuntimeError):
    """A fallback-chain stage was skipped because its breaker is open."""

    def __init__(self, stage: str, retry_in: float) -> None:
        super().__init__(
            f"circuit for stage {stage!r} is open (retry in {retry_in:.3f}s)"
        )
        self.stage = stage
        self.retry_in = retry_in


class SnapshotError(ServingError, ValueError):
    """Base class for snapshot load/save problems."""


class SnapshotCorruptError(SnapshotError):
    """A snapshot file is damaged and must not be served from.

    Attributes
    ----------
    path:
        The offending snapshot file.
    detail:
        Human-readable description of what failed structurally.
    expected_checksum, actual_checksum:
        Set when the damage was detected by content-digest mismatch
        (both ``None`` when the archive was unreadable outright).
    """

    def __init__(
        self,
        path: str,
        detail: str,
        *,
        expected_checksum: str | None = None,
        actual_checksum: str | None = None,
    ) -> None:
        message = f"corrupt snapshot {path!r}: {detail}"
        if expected_checksum is not None:
            message += (
                f" (expected checksum {expected_checksum[:12]}..., "
                f"got {(actual_checksum or '?')[:12]}...)"
            )
        super().__init__(message)
        self.path = path
        self.detail = detail
        self.expected_checksum = expected_checksum
        self.actual_checksum = actual_checksum


class SnapshotVersionError(SnapshotError):
    """A snapshot was written by an unknown format version."""


class WorkerCrashError(ServingError, RuntimeError):
    """A process-pool worker died while holding part of a batch."""


class OverloadedError(ServingError, RuntimeError):
    """The serving front's admission queue is full.

    Raised by :meth:`repro.serving.batcher.MicroBatcher.submit` when
    the bounded queue holds ``max_queue`` pending requests and the
    overload policy is ``"raise"``.  Backpressure beats buffering: an
    unbounded queue converts overload into unbounded latency for
    every caller, while a typed rejection lets the client shed load,
    retry elsewhere, or accept the degraded (fallback-chain) answer.

    Attributes
    ----------
    queue_depth:
        Pending requests at the moment of rejection.
    max_queue:
        The configured admission bound.
    """

    def __init__(self, queue_depth: int, max_queue: int) -> None:
        super().__init__(
            f"serving queue is full ({queue_depth}/{max_queue} pending); "
            "request refused"
        )
        self.queue_depth = queue_depth
        self.max_queue = max_queue
