"""Deterministic fault injection for the serving stack.

Every degradation path in :mod:`repro.serving` is exercised by tests
rather than trusted on faith; this module supplies the faults.  All
injectors are deterministic (seeded byte flips, countdown-based
failures, flag-file worker kills) so a failing robustness test
reproduces exactly.

Injectable faults
-----------------
``corrupt_snapshot`` / ``truncate_snapshot``
    Damage a saved model file in place (seeded XOR byte flips, or
    truncation) to drive the checksum / bad-archive paths of
    :func:`repro.core.persistence.load_model`.
``poison_given``
    Return a copy of a given matrix carrying NaN or out-of-range
    observed ratings, *bypassing* :class:`~repro.data.matrix.
    RatingMatrix` validation — simulating an upstream ingestion bug.
``FlakyRecommender`` / ``SlowRecommender``
    Wrap any recommender to fail its first *n* ``predict_many`` calls,
    or to add induced latency, while proxying everything else (so the
    CFSF-specific fallback stages still see ``.gis`` etc.).
``KillWorkerOnce`` / ``KillWorkerAlways`` / ``SleepInWorker``
    Picklable worker hooks for :class:`~repro.parallel.executor.
    ParallelPredictor`: kill a pool worker mid-batch (exactly once,
    coordinated through a flag file, or on every task) or add latency
    inside workers.
``ManualClock``
    A controllable time source shared by the service, breakers, and
    slow wrappers, making deadline and backoff behaviour exact.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.matrix import RatingMatrix
from repro.utils.rng import as_generator

__all__ = [
    "corrupt_snapshot",
    "truncate_snapshot",
    "poison_given",
    "FlakyRecommender",
    "SlowRecommender",
    "KillWorkerOnce",
    "KillWorkerAlways",
    "SleepInWorker",
    "ManualClock",
]


# ----------------------------------------------------------------------
# Snapshot corruption
# ----------------------------------------------------------------------
def corrupt_snapshot(path: str, *, n_bytes: int = 64, offset: int | None = None,
                     seed: int = 0) -> None:
    """Flip ``n_bytes`` bytes of the file at *path* in place.

    The damaged range starts at *offset* (default: the middle of the
    file, which lands inside a compressed array member rather than the
    zip directory) and each byte is XORed with a seeded random nonzero
    value, so the corruption is deterministic per ``(path size, seed)``.
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"cannot corrupt empty file {path!r}")
    rng = as_generator(seed)
    start = size // 2 if offset is None else offset
    start = max(0, min(start, size - 1))
    n = min(n_bytes, size - start)
    with open(path, "r+b") as fh:
        fh.seek(start)
        original = bytearray(fh.read(n))
        flips = rng.integers(1, 256, size=len(original), dtype=np.uint8)
        damaged = bytes(b ^ int(f) for b, f in zip(original, flips))
        fh.seek(start)
        fh.write(damaged)
        fh.flush()
        os.fsync(fh.fileno())


def truncate_snapshot(path: str, *, keep_fraction: float = 0.5) -> None:
    """Truncate the file at *path* to ``keep_fraction`` of its size."""
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(int(size * keep_fraction))
        fh.flush()
        os.fsync(fh.fileno())


# ----------------------------------------------------------------------
# Malformed ratings
# ----------------------------------------------------------------------
def poison_given(
    given: RatingMatrix,
    entries: Sequence[tuple[int, int, float]],
) -> RatingMatrix:
    """A copy of *given* with raw ``(user, item, value)`` entries forced in.

    Unlike :meth:`RatingMatrix.with_ratings`, the values are **not**
    validated — NaN, inf and out-of-scale ratings pass straight
    through, simulating a corrupted upstream feed.  The returned object
    is a genuine :class:`RatingMatrix` (same slots, non-writeable
    arrays) whose invariants are deliberately broken.
    """
    values = given.values.copy()
    mask = given.mask.copy()
    for user, item, value in entries:
        values[user, item] = value
        mask[user, item] = True
    values.flags.writeable = False
    mask.flags.writeable = False
    poisoned = RatingMatrix.__new__(RatingMatrix)
    poisoned._values = values
    poisoned._mask = mask
    poisoned.rating_scale = given.rating_scale
    poisoned._hash = None
    return poisoned


# ----------------------------------------------------------------------
# Recommender wrappers
# ----------------------------------------------------------------------
class _RecommenderProxy:
    """Attribute-proxying base so wrappers stay usable as the primary
    stage of a fallback chain (``.gis``, ``._train``, ... resolve to the
    wrapped model)."""

    def __init__(self, inner) -> None:
        self.inner = inner

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


class FlakyRecommender(_RecommenderProxy):
    """Fail the first ``fail_times`` ``predict_many`` calls, then heal.

    Parameters
    ----------
    inner:
        The wrapped (fitted) recommender.
    fail_times:
        Number of initial calls that raise; ``None`` fails forever.
    exc_factory:
        Zero-argument callable producing the exception to raise.
    """

    def __init__(self, inner, *, fail_times: int | None = 3,
                 exc_factory=lambda: RuntimeError("injected stage failure")) -> None:
        super().__init__(inner)
        self.fail_times = fail_times
        self.exc_factory = exc_factory
        self.calls = 0
        self.failures_injected = 0

    def predict_many(self, given, users, items):
        self.calls += 1
        if self.fail_times is None or self.failures_injected < self.fail_times:
            self.failures_injected += 1
            raise self.exc_factory()
        return self.inner.predict_many(given, users, items)


class SlowRecommender(_RecommenderProxy):
    """Add ``delay`` seconds of induced latency per ``predict_many``.

    The sleep function is injectable; pair it with
    :meth:`ManualClock.sleep` for instant, deterministic "slowness".
    """

    def __init__(self, inner, *, delay: float, sleep=time.sleep) -> None:
        super().__init__(inner)
        self.delay = float(delay)
        self._sleep = sleep
        self.calls = 0

    def predict_many(self, given, users, items):
        self.calls += 1
        self._sleep(self.delay)
        return self.inner.predict_many(given, users, items)


# ----------------------------------------------------------------------
# Worker hooks (picklable — they cross the process boundary)
# ----------------------------------------------------------------------
@dataclass
class KillWorkerOnce:
    """Kill exactly one pool worker, once, coordinated via a flag file.

    :meth:`arm` creates the flag; the first worker whose task runs the
    hook atomically claims the flag (``os.unlink``) and dies with
    ``os._exit`` — an abrupt death the pool cannot intercept, exactly
    like an OOM kill.  Respawned pools find no flag and proceed, so a
    retried batch completes deterministically.
    """

    flag_path: str
    exit_code: int = 1

    def arm(self) -> "KillWorkerOnce":
        with open(self.flag_path, "w") as fh:
            fh.write("armed")
        return self

    @property
    def armed(self) -> bool:
        return os.path.exists(self.flag_path)

    def __call__(self, users: np.ndarray, items: np.ndarray) -> None:
        try:
            os.unlink(self.flag_path)
        except FileNotFoundError:
            return
        os._exit(self.exit_code)


@dataclass
class KillWorkerAlways:
    """Kill the worker on every task — drives the inline-fallback path."""

    exit_code: int = 1

    def __call__(self, users: np.ndarray, items: np.ndarray) -> None:
        os._exit(self.exit_code)


@dataclass
class SleepInWorker:
    """Induce fixed latency inside each worker task."""

    seconds: float

    def __call__(self, users: np.ndarray, items: np.ndarray) -> None:
        time.sleep(self.seconds)


# ----------------------------------------------------------------------
# Deterministic time
# ----------------------------------------------------------------------
class ManualClock:
    """A hand-cranked monotonic clock for deterministic timing tests.

    Use instances both as the ``clock`` of services/breakers and (via
    :meth:`sleep`) as the sleep function of slow wrappers and reload
    backoff, so "time passing" is exact and instantaneous.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time only moves forward")
        self.now += seconds

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        self.advance(max(0.0, seconds))
