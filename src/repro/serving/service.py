"""The fault-tolerant prediction service.

:class:`PredictionService` wraps any fitted
:class:`~repro.baselines.base.Recommender` with the serving behaviours
a production deployment needs and the bare model does not have:

1. **Input validation** mapped to the typed taxonomy of
   :mod:`repro.serving.errors`.  In the default lenient mode invalid
   requests (ids out of range) are *answered* — with the global-mean
   stage — and flagged, because Eq. 15's protocol (and any live SLA)
   wants an answer per request; ``strict=True`` raises instead.
   Given matrices carrying NaN or out-of-scale ratings (an upstream
   ingestion bug) are sanitised: the offending cells are dropped from
   the mask and the affected users' requests are served from the
   cleaned profile, flagged as degraded.
2. **Per-request deadlines with partial-batch results.**  Requests are
   served in per-user blocks; once the batch's latency budget is
   spent, the remaining blocks short-circuit to the cheap user-mean
   stage instead of wedging the caller.
3. **A graceful-degradation fallback chain** — CFSF fusion → item-KNN
   over the GIS only → user mean → global mean — where every stage is
   guarded by a :class:`~repro.serving.breaker.CircuitBreaker`.  A
   stage that keeps failing is skipped (open circuit) until its
   jittered exponential backoff lets a probe through.  The final
   stage is a stored scalar and cannot fail, so **every request gets a
   prediction** no matter which layers are down.
4. **Hot snapshot reload with last-known-good rollback.**
   :meth:`PredictionService.reload` loads a new snapshot with bounded
   retry/backoff; a corrupt or unreadable snapshot leaves the service
   running on the previous model.

The clock and sleep functions are injectable so that deadline and
backoff behaviour is deterministic under test (see
:class:`repro.serving.faults.ManualClock`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.data.matrix import RatingMatrix
from repro.obs import get_registry
from repro.serving.breaker import CircuitBreaker
from repro.serving.errors import (
    InvalidRequestError,
    ModelUnavailableError,
    SnapshotError,
)
from repro.utils.cache import LRUCache

__all__ = ["PredictionService", "ServingResult", "StageFailure"]

#: Cap on per-result error diagnostics (a melting stage must not make
#: every response carry an unbounded error list).
_MAX_ERRORS_PER_CALL = 32


@dataclass(frozen=True)
class StageFailure:
    """One failed stage attempt, for diagnostics."""

    stage: str
    error: str
    n_requests: int


@dataclass(frozen=True)
class ServingResult:
    """Predictions plus per-request degradation bookkeeping.

    ``fallback_level`` indexes into ``stage_names``: level 0 is the
    primary model, higher levels are progressively simpler estimators.
    """

    predictions: np.ndarray
    fallback_level: np.ndarray
    stage_names: tuple[str, ...]
    invalid: np.ndarray
    sanitized: np.ndarray
    deadline_deferred: np.ndarray
    deadline_hit: bool
    elapsed: float
    errors: tuple[StageFailure, ...] = field(default=())

    @property
    def degraded(self) -> np.ndarray:
        """Per-request: was anything other than the primary path used?"""
        return (
            (self.fallback_level > 0)
            | self.invalid
            | self.sanitized
            | self.deadline_deferred
        )

    @property
    def degraded_fraction(self) -> float:
        """Fraction of the batch that was served degraded (0.0-1.0)."""
        n = self.predictions.size
        return float(self.degraded.sum() / n) if n else 0.0

    def level_counts(self) -> dict[str, int]:
        """Requests served per stage name."""
        counts = np.bincount(self.fallback_level, minlength=len(self.stage_names))
        return {name: int(c) for name, c in zip(self.stage_names, counts)}

    def __len__(self) -> int:
        return self.predictions.size


@dataclass
class _Stage:
    name: str
    fn: Callable[[RatingMatrix, np.ndarray, np.ndarray], np.ndarray]
    infallible: bool = False


class PredictionService:
    """Serve predictions through a guarded fallback chain.

    Parameters
    ----------
    model:
        A fitted recommender (stage 0).  May be omitted when
        *snapshot_path* is given.
    snapshot_path:
        Default snapshot for :meth:`reload`; when *model* is ``None``
        the service boots from it (raising
        :class:`~repro.serving.errors.ModelUnavailableError` if no
        usable snapshot exists).
    strict:
        When ``True``, invalid requests raise
        :class:`~repro.serving.errors.InvalidRequestError` instead of
        being served by the fallback stage.
    failure_threshold / reset_timeout / backoff_factor /
    max_reset_timeout / jitter / breaker_seed:
        Circuit-breaker tuning, shared by all stages.
    reload_retries / reload_backoff:
        Bounded retry policy for snapshot loads (backoff doubles per
        attempt).
    request_cache_size:
        Capacity of the LRU request cache.  Primary-stage predictions
        are memoised per ``(given, user, item, model_version)``; the
        version in the key plus an explicit clear on model install
        means a snapshot reload can never serve stale values.  Only
        stage-0 results are cached (fallback answers reflect transient
        conditions).  ``0`` disables caching.
    clock / sleep:
        Injectable time sources (see :class:`~repro.serving.faults.
        ManualClock`).
    metrics:
        A :class:`~repro.obs.MetricsRegistry` to record request
        counts, latency histograms, per-stage fallback counters, and
        breaker transitions into.  Defaults to the ambient registry
        (:func:`repro.obs.get_registry`), which is the no-op
        :data:`~repro.obs.NULL_REGISTRY` unless observability was
        opted into — so the hot path pays one attribute check.

    Examples
    --------
    >>> from repro.core import CFSF
    >>> from repro.data import make_movielens_like, make_split
    >>> split = make_split(make_movielens_like(seed=0).ratings,
    ...                    n_train_users=300, given_n=10)
    >>> service = PredictionService(CFSF().fit(split.train))
    >>> users, items, _ = split.targets_arrays()
    >>> result = service.predict_many(split.given, users[:8], items[:8])
    >>> len(result), bool(result.degraded.any())
    (8, False)
    """

    def __init__(
        self,
        model=None,
        *,
        snapshot_path: str | None = None,
        strict: bool = False,
        failure_threshold: int = 3,
        reset_timeout: float = 1.0,
        backoff_factor: float = 2.0,
        max_reset_timeout: float = 60.0,
        jitter: float = 0.2,
        breaker_seed: int = 0,
        reload_retries: int = 3,
        reload_backoff: float = 0.05,
        request_cache_size: int = 8192,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        metrics=None,
    ) -> None:
        self.metrics = get_registry() if metrics is None else metrics
        self.snapshot_path = snapshot_path
        self.strict = bool(strict)
        self.reload_retries = reload_retries
        self.reload_backoff = float(reload_backoff)
        self._clock = clock
        self._sleep = sleep
        self._breaker_kwargs = dict(
            failure_threshold=failure_threshold,
            reset_timeout=reset_timeout,
            backoff_factor=backoff_factor,
            max_reset_timeout=max_reset_timeout,
            jitter=jitter,
        )
        self._breaker_seed = breaker_seed
        self._breakers: dict[str, CircuitBreaker] = {}
        self._sanitize_memo: tuple[int, RatingMatrix, np.ndarray] | None = None
        # Guards the cumulative operational counters and the sanitize
        # memo.  The obs registry and the request LRU carry their own
        # locks; the bare `self.x_total += n` updates below do not —
        # under the concurrent serving front two dispatch threads
        # read-modify-write the same int and lose increments.  The
        # critical sections are a handful of int adds, so one mutex
        # (not striping) is measurably contention-free at batch
        # granularity.
        self._state_lock = threading.Lock()
        self._request_cache: LRUCache | None = (
            LRUCache(maxsize=request_cache_size) if request_cache_size > 0 else None
        )
        # Per-call metric handles, resolved once: registry lookups are
        # dict ops, but they sit on the per-batch hot path.
        self._m_requests = self.metrics.counter("serving.requests")
        self._m_latency = self.metrics.histogram("serving.request.latency")

        # Cumulative operational counters.
        self.requests_total = 0
        self.deadline_deferred_total = 0
        self.invalid_total = 0
        self.sanitized_total = 0
        self.degraded_total = 0
        self.model_version = 0
        self.reloads_ok = 0
        self.reloads_failed = 0
        self.last_reload_error: Exception | None = None

        self.model = None
        if model is not None:
            self._install_model(model)
        elif snapshot_path is not None:
            loaded = self._load_snapshot(snapshot_path)
            if loaded is None:
                raise ModelUnavailableError(
                    f"could not load initial snapshot {snapshot_path!r}"
                ) from self.last_reload_error
            self._install_model(loaded)
        else:
            raise ModelUnavailableError("need a fitted model or a snapshot_path")

    # ------------------------------------------------------------------
    # Model installation and the fallback chain
    # ------------------------------------------------------------------
    def _install_model(self, model) -> None:
        train = getattr(model, "_train", None)
        if train is None:
            raise ModelUnavailableError(
                f"{type(model).__name__} is not fitted; fit() it before serving"
            )
        self.model = model
        self._n_items = train.n_items
        self._scale = train.rating_scale
        self._global_mean = float(train.global_mean())
        self._stages = self._build_stages(model)
        for idx, stage in enumerate(self._stages):
            if stage.name not in self._breakers:
                self._breakers[stage.name] = CircuitBreaker(
                    stage.name,
                    clock=self._clock,
                    rng=self._breaker_seed + idx,
                    metrics=self.metrics,
                    **self._breaker_kwargs,
                )
        self.model_version += 1
        self._sanitize_memo = None
        # The version is part of every cache key, so old entries can
        # never be *served* after a reload; clearing frees them eagerly.
        if self._request_cache is not None:
            self._request_cache.clear()

    def _build_stages(self, model) -> list[_Stage]:
        lo, hi = self._scale
        gmean = self._global_mean

        stages = [_Stage(str(model.name), model.predict_many)]

        gis = getattr(model, "gis", None)
        if gis is not None:
            sim = gis.sim

            def item_knn(given: RatingMatrix, users: np.ndarray, items: np.ndarray) -> np.ndarray:
                out = np.empty(users.size, dtype=np.float64)
                umeans = given.user_means(fill=gmean)
                order = np.argsort(users, kind="stable")
                bounds = np.nonzero(np.diff(users[order]))[0] + 1
                for block in np.split(np.arange(users.size)[order], bounds):
                    u = int(users[block[0]])
                    rated_idx, rated_vals = given.user_profile(u)
                    q = items[block]
                    if rated_idx.size == 0:
                        out[block] = umeans[u]
                        continue
                    sims = np.maximum(sim[np.ix_(q, rated_idx)], 0.0)
                    sims[q[:, None] == rated_idx[None, :]] = 0.0
                    denom = sims.sum(axis=1)
                    numer = sims @ rated_vals
                    out[block] = np.where(
                        denom > 0.0,
                        numer / np.where(denom > 0.0, denom, 1.0),
                        umeans[u],
                    )
                return np.clip(out, lo, hi)

            stages.append(_Stage("item_knn", item_knn))

        def user_mean(given: RatingMatrix, users: np.ndarray, items: np.ndarray) -> np.ndarray:
            return np.clip(given.user_means(fill=gmean)[users], lo, hi)

        def global_mean(given: RatingMatrix, users: np.ndarray, items: np.ndarray) -> np.ndarray:
            return np.full(users.size, gmean)

        stages.append(_Stage("user_mean", user_mean, infallible=True))
        stages.append(_Stage("global_mean", global_mean, infallible=True))
        return stages

    @property
    def stage_names(self) -> tuple[str, ...]:
        """Names of the chain's stages, primary first."""
        return tuple(stage.name for stage in self._stages)

    # ------------------------------------------------------------------
    # Snapshot reload
    # ------------------------------------------------------------------
    def _load_snapshot(self, path: str):
        """Load with bounded retry/backoff; ``None`` when all fail."""
        # Imported lazily: persistence sits in repro.core, which imports
        # this package's error types — a module-level import would cycle.
        from repro.core.persistence import load_model

        delay = self.reload_backoff
        last: Exception | None = None
        for attempt in range(max(1, self.reload_retries)):
            try:
                return load_model(path)
            except (SnapshotError, OSError, ValueError) as exc:
                last = exc
                if attempt + 1 < max(1, self.reload_retries):
                    self._sleep(delay)
                    delay *= 2.0
        self.last_reload_error = last
        return None

    def reload(self, path: str | None = None) -> bool:
        """Hot-swap the served model from a snapshot.

        Returns ``True`` on success.  On failure (corrupt, missing, or
        unreadable snapshot, after ``reload_retries`` attempts) the
        service keeps serving from the last-known-good model and
        returns ``False``; the failure is kept in
        ``last_reload_error``.
        """
        target = path or self.snapshot_path
        if target is None:
            raise ValueError("no snapshot path given and none configured")
        loaded = self._load_snapshot(target)
        if loaded is None:
            self.reloads_failed += 1
            if self.metrics.enabled:
                self.metrics.counter("serving.reload.failed").inc()
            if self.model is None:  # pragma: no cover - constructor guards this
                raise ModelUnavailableError(
                    f"snapshot {target!r} unusable and no last-known-good model"
                ) from self.last_reload_error
            return False
        try:
            self._install_model(loaded)
        except ModelUnavailableError:
            self.reloads_failed += 1
            if self.metrics.enabled:
                self.metrics.counter("serving.reload.failed").inc()
            return False
        self.reloads_ok += 1
        if self.metrics.enabled:
            self.metrics.counter("serving.reload.ok").inc()
        return True

    # ------------------------------------------------------------------
    # Validation and sanitisation
    # ------------------------------------------------------------------
    def _sanitize_given(self, given: RatingMatrix) -> tuple[RatingMatrix, np.ndarray]:
        """Drop NaN / out-of-scale observed ratings from *given*.

        Returns the (possibly original) matrix and a per-user boolean
        flagging users whose profile was repaired.  Memoised on object
        identity: the common serving pattern re-sends one given matrix
        for many batches, and preserving identity keeps the model's
        per-user caches warm.
        """
        with self._state_lock:
            memo = self._sanitize_memo
        if memo is not None and memo[0] == id(given):
            return memo[1], memo[2]
        lo, hi = self._scale
        values, mask = given.values, given.mask
        with np.errstate(invalid="ignore"):
            bad = mask & (~np.isfinite(values) | (values < lo) | (values > hi))
        if bad.any():
            cleaned = RatingMatrix(
                np.where(bad, 0.0, values), mask & ~bad, rating_scale=given.rating_scale
            )
            poisoned_users = bad.any(axis=1)
        else:
            cleaned, poisoned_users = given, np.zeros(given.n_users, dtype=bool)
        with self._state_lock:
            self._sanitize_memo = (id(given), cleaned, poisoned_users)
            # Hold a reference to the source so id() cannot be recycled.
            self._sanitize_src = given
        return cleaned, poisoned_users

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def predict(self, given: RatingMatrix, user: int, item: int,
                *, deadline: float | None = None) -> float:
        """Single-request convenience wrapper."""
        result = self.predict_many(
            given, np.array([user]), np.array([item]), deadline=deadline
        )
        return float(result.predictions[0])

    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
        *,
        deadline: float | None = None,
    ) -> ServingResult:
        """Serve a batch; every request is answered, degraded or not.

        Parameters
        ----------
        given:
            Active users' revealed profiles (items must align with the
            trained item space).
        users, items:
            Parallel request arrays.
        deadline:
            Latency budget in seconds for the whole batch.  When it
            runs out mid-batch, unserved per-user blocks fall through
            to the cheap user-mean stage and are flagged
            ``deadline_deferred``.
        """
        t0 = self._clock()
        if self.model is None:  # pragma: no cover - constructor guards this
            raise ModelUnavailableError("service has no model installed")
        try:
            users = np.asarray(users, dtype=np.intp)
            items = np.asarray(items, dtype=np.intp)
        except (TypeError, ValueError) as exc:
            raise InvalidRequestError(f"non-integer request arrays: {exc}") from exc
        if users.shape != items.shape or users.ndim != 1:
            raise InvalidRequestError(
                f"users {users.shape} and items {items.shape} must be parallel 1-D arrays"
            )

        n = users.size
        stage_names = self.stage_names
        last_level = len(self._stages) - 1
        predictions = np.full(n, self._global_mean, dtype=np.float64)
        levels = np.full(n, last_level, dtype=np.intp)
        deferred = np.zeros(n, dtype=bool)
        errors: list[StageFailure] = []

        # --- validation -------------------------------------------------
        # Four scalar reductions cover the overwhelmingly common
        # all-valid batch; the per-element mask arithmetic only runs
        # when some request is actually out of range.
        if n and (
            int(users.min()) >= 0
            and int(users.max()) < given.n_users
            and int(items.min()) >= 0
            and int(items.max()) < self._n_items
        ):
            invalid = np.zeros(n, dtype=bool)
            n_invalid = 0
        else:
            invalid = (
                (users < 0)
                | (users >= given.n_users)
                | (items < 0)
                | (items >= self._n_items)
            )
            n_invalid = int(invalid.sum())
        if given.n_items != self._n_items:
            if self.strict:
                raise InvalidRequestError(
                    f"given has {given.n_items} items but model serves {self._n_items}"
                )
            invalid[:] = True
            n_invalid = n
        if self.strict and n_invalid:
            offender = int(np.nonzero(invalid)[0][0])
            raise InvalidRequestError(
                f"request {offender} (user={users[offender]}, item={items[offender]}) "
                "is out of range"
            )
        with self._state_lock:
            self.invalid_total += n_invalid

        sanitized_req = np.zeros(n, dtype=bool)
        deadline_hit = False
        cache_hits = cache_misses = 0
        valid_idx = (
            np.arange(n, dtype=np.intp) if not n_invalid else np.nonzero(~invalid)[0]
        )
        if valid_idx.size:
            cleaned, poisoned_users = self._sanitize_given(given)
            if poisoned_users.any():
                sanitized_req[valid_idx] = poisoned_users[users[valid_idx]]

            # --- request cache lookup ---------------------------------
            # Keys are built from plain-int lists (one tolist() pass)
            # rather than per-element np scalar casts; on the hot path
            # the difference is measurable at batch sizes this small.
            cache = self._request_cache
            gkey = ver = 0
            u_list = i_list = None
            if cache is not None:
                gkey, ver = hash(cleaned), self.model_version
                u_list = users.tolist()
                i_list = items.tolist()
                remaining = []
                for ridx in valid_idx.tolist():
                    val = cache.get((gkey, u_list[ridx], i_list[ridx], ver))
                    if val is None:
                        remaining.append(ridx)
                    else:
                        predictions[ridx] = val
                        levels[ridx] = 0
                work_idx = np.asarray(remaining, dtype=np.intp)
                cache_hits = valid_idx.size - work_idx.size
                cache_misses = work_idx.size
            else:
                work_idx = valid_idx

            # Without a deadline, first try the primary stage on the
            # whole batch at once — the model's batched kernel fuses
            # every request in one pass.  If the primary fails (or its
            # breaker is open), or a deadline needs mid-batch deferral,
            # fall back to per-user blocks so faults and budget cuts
            # stay isolated per user.
            if deadline is None and work_idx.size:
                fast = self._predict_primary(
                    cleaned, users[work_idx], items[work_idx], errors
                )
                if fast is not None:
                    predictions[work_idx] = fast
                    levels[work_idx] = 0
                    if cache is not None:
                        for ridx, val in zip(work_idx.tolist(), fast.tolist()):
                            cache.put((gkey, u_list[ridx], i_list[ridx], ver), val)
                    work_idx = np.empty(0, dtype=np.intp)
            if work_idx.size:
                w_users = users[work_idx]
                order = np.argsort(w_users, kind="stable")
                bounds = np.nonzero(np.diff(w_users[order]))[0] + 1
                blocks = np.split(work_idx[order], bounds)
            else:
                blocks = []
            cheap = self._cheap_level()
            for block in blocks:
                if (
                    deadline is not None
                    and self._clock() - t0 >= deadline
                ):
                    deadline_hit = True
                    predictions[block] = self._stages[cheap].fn(
                        cleaned, users[block], items[block]
                    )
                    levels[block] = cheap
                    deferred[block] = True
                    continue
                predictions[block], level = self._predict_block(
                    cleaned, users[block], items[block], errors
                )
                levels[block] = level
                if cache is not None and level == 0:
                    for ridx in block.tolist():
                        cache.put(
                            (gkey, u_list[ridx], i_list[ridx], ver),
                            float(predictions[ridx]),
                        )

        elapsed = self._clock() - t0
        n_deferred = int(deferred.sum()) if deadline_hit else 0
        n_sanitized = int(sanitized_req.sum())
        if n_invalid or n_deferred or n_sanitized:
            n_degraded = int(
                ((levels > 0) | invalid | sanitized_req | deferred).sum()
            )
        else:
            n_degraded = int(np.count_nonzero(levels))
        with self._state_lock:
            self.requests_total += n
            self.deadline_deferred_total += n_deferred
            self.sanitized_total += n_sanitized
            self.degraded_total += n_degraded
        reg = self.metrics
        if reg.enabled:
            self._m_requests.inc(n)
            self._m_latency.observe(elapsed)
            counts = np.bincount(levels, minlength=len(stage_names))
            for name, count in zip(stage_names, counts):
                if count:
                    reg.counter("serving.fallback", stage=name).inc(int(count))
            if n_invalid:
                reg.counter("serving.invalid").inc(n_invalid)
            if n_sanitized:
                reg.counter("serving.sanitized").inc(n_sanitized)
            if n_deferred:
                reg.counter("serving.deadline.deferred").inc(n_deferred)
            if n_degraded:
                reg.counter("serving.degraded").inc(n_degraded)
            if cache_hits:
                reg.counter("serving.cache.hits").inc(cache_hits)
            if cache_misses:
                reg.counter("serving.cache.misses").inc(cache_misses)
        return ServingResult(
            predictions=np.clip(predictions, *self._scale),
            fallback_level=levels,
            stage_names=stage_names,
            invalid=invalid,
            sanitized=sanitized_req,
            deadline_deferred=deferred,
            deadline_hit=deadline_hit,
            elapsed=elapsed,
            errors=tuple(errors[:_MAX_ERRORS_PER_CALL]),
        )

    def _cheap_level(self) -> int:
        """Stage index used for deadline-deferred requests."""
        for idx, stage in enumerate(self._stages):
            if stage.name == "user_mean":
                return idx
        return len(self._stages) - 1  # pragma: no cover - chain always has it

    def _predict_primary(
        self,
        given: RatingMatrix,
        users: np.ndarray,
        items: np.ndarray,
        errors: list[StageFailure],
    ) -> np.ndarray | None:
        """One whole-batch attempt at stage 0; ``None`` means fall back.

        The caller then retries through the per-user block walk, so a
        primary fault degrades to exactly the old fault-isolation
        granularity instead of failing the batch.
        """
        stage = self._stages[0]
        breaker = self._breakers[stage.name]
        if not breaker.allow():
            return None
        try:
            out = np.asarray(stage.fn(given, users, items), dtype=np.float64)
            if out.shape != users.shape or not np.isfinite(out).all():
                raise InvalidRequestError(
                    f"stage {stage.name!r} produced non-finite or misshapen output"
                )
        except Exception as exc:  # noqa: BLE001 - the chain absorbs stage faults
            breaker.record_failure()
            if self.metrics.enabled:
                self.metrics.counter("serving.stage.failures", stage=stage.name).inc()
            if len(errors) < _MAX_ERRORS_PER_CALL:
                errors.append(
                    StageFailure(stage.name, f"{type(exc).__name__}: {exc}", users.size)
                )
            return None
        breaker.record_success()
        return out

    def _predict_block(
        self,
        given: RatingMatrix,
        users: np.ndarray,
        items: np.ndarray,
        errors: list[StageFailure],
    ) -> tuple[np.ndarray, int]:
        """Walk the chain for one per-user block; never raises."""
        for level, stage in enumerate(self._stages):
            breaker = self._breakers[stage.name]
            if not breaker.allow():
                continue
            try:
                out = np.asarray(stage.fn(given, users, items), dtype=np.float64)
                if out.shape != users.shape or not np.isfinite(out).all():
                    raise InvalidRequestError(
                        f"stage {stage.name!r} produced non-finite or misshapen output"
                    )
            except Exception as exc:  # noqa: BLE001 - the chain absorbs stage faults
                breaker.record_failure()
                if self.metrics.enabled:
                    self.metrics.counter("serving.stage.failures", stage=stage.name).inc()
                if len(errors) < _MAX_ERRORS_PER_CALL:
                    errors.append(
                        StageFailure(stage.name, f"{type(exc).__name__}: {exc}", users.size)
                    )
                continue
            breaker.record_success()
            return out, level
        # Every stage failed or is open; the stored scalar still serves.
        return np.full(users.size, self._global_mean), len(self._stages) - 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def breaker_states(self) -> dict[str, str]:
        """Current circuit state per stage."""
        return {name: br.state.value for name, br in self._breakers.items()}

    def health(self) -> dict:
        """Operational snapshot for dashboards and tests.

        The original keys are kept backward compatible.  Cumulative
        degradation counters and per-breaker open-durations ride
        along; when a real metrics registry is attached the counters
        are sourced from it (one measurement path shared with the
        exposition formats) and a ``latency`` percentile summary of
        the ``serving.request.latency`` histogram is included.
        """
        reg = self.metrics
        health = {
            "model": None if self.model is None else str(self.model.name),
            "model_version": self.model_version,
            "stages": list(self.stage_names),
            "breakers": {n: b.snapshot() for n, b in self._breakers.items()},
            "requests_total": self.requests_total,
            "invalid_total": self.invalid_total,
            "deadline_deferred_total": self.deadline_deferred_total,
            "sanitized_total": self.sanitized_total,
            "degraded_total": self.degraded_total,
            "breaker_open_seconds": {
                n: b.open_seconds() for n, b in self._breakers.items()
            },
            "reloads_ok": self.reloads_ok,
            "reloads_failed": self.reloads_failed,
            "last_reload_error": (
                None if self.last_reload_error is None else repr(self.last_reload_error)
            ),
            "metrics_enabled": reg.enabled,
        }
        if self._request_cache is not None:
            rc = self._request_cache
            health["request_cache"] = {
                "entries": len(rc),
                "maxsize": rc.maxsize,
                "hits": rc.hits,
                "misses": rc.misses,
                "hit_rate": rc.hit_rate,
            }
        if reg.enabled:
            health["requests_total"] = int(reg.counter("serving.requests").value)
            health["invalid_total"] = int(reg.counter("serving.invalid").value)
            health["deadline_deferred_total"] = int(
                reg.counter("serving.deadline.deferred").value
            )
            health["sanitized_total"] = int(reg.counter("serving.sanitized").value)
            health["degraded_total"] = int(reg.counter("serving.degraded").value)
            latency = reg.histogram("serving.request.latency")
            health["latency"] = {
                "count": latency.count,
                "mean": latency.mean,
                "p50": latency.quantile(0.50),
                "p95": latency.quantile(0.95),
                "p99": latency.quantile(0.99),
            }
        return health
