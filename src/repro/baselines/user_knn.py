"""SUR — the user-based CF baseline (Eq. 2 of the paper).

User-based CF predicts the active user's rating of item *a* from the
ratings that *like-minded training users* gave to the same item.  Two
forms are provided:

* ``mean_offset=True`` (default) — Resnick's formula, the standard
  form for PCC-based user CF and the one the paper's own SUR' component
  uses in Eq. 12::

      r̂(b, a) = r̄_b + Σ_u sim(b, u) · (r(u, a) − r̄_u) / Σ_u |sim(b, u)|

* ``mean_offset=False`` — the plain weighted average of Eq. 2.

Like-mindedness between an active user (known only through their GivenN
profile) and every training user is a masked PCC over the co-rated
items, computed per prediction batch with
:func:`repro.similarity.pcc_to_rows` — the whole-matrix search the
paper's scalability critique of memory-based CF is about.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import Recommender, fallback_baseline
from repro.data.matrix import RatingMatrix
from repro.similarity import Centering, pcc_to_rows

__all__ = ["UserBasedCF"]


class UserBasedCF(Recommender):
    """User-based CF with PCC similarity (the paper's SUR baseline).

    Parameters
    ----------
    k:
        Use at most the *k* most-similar training users per active
        user (``None`` = all users with similarity above ``min_sim``).
        Selection is per active user, over the users who rated the
        target item.
    min_sim:
        Ignore neighbours with similarity ``<= min_sim``.
    mean_offset:
        Resnick mean-offset form (default) vs the plain weighted
        average of Eq. 2; see the module docstring.
    centering:
        PCC centering convention (see :mod:`repro.similarity`).
    min_overlap:
        Minimum co-rated items for a user–user similarity to count;
        with Given5 profiles, 2 is the workable default.
    """

    def __init__(
        self,
        *,
        k: int | None = None,
        min_sim: float = 0.0,
        mean_offset: bool = True,
        centering: Centering = "global_mean",
        min_overlap: int = 2,
    ) -> None:
        if k is not None and k < 1:
            raise ValueError(f"k must be >= 1 or None, got {k}")
        self.k = k
        self.min_sim = float(min_sim)
        self.mean_offset = bool(mean_offset)
        self.centering: Centering = centering
        self.min_overlap = int(min_overlap)
        self._user_means: np.ndarray | None = None
        self._dev: np.ndarray | None = None

    @property
    def name(self) -> str:
        return "SUR"

    def fit(self, train: RatingMatrix) -> "UserBasedCF":
        """Precompute per-user means and mean-centred deviations."""
        super().fit(train)
        self._user_means = train.user_means()
        dev = (train.values - self._user_means[:, None]) * train.mask
        self._dev = dev
        return self

    def _similarities(self, given: RatingMatrix) -> np.ndarray:
        """(n_active, n_train) PCC between given profiles and train users."""
        train = self._require_fitted()
        return pcc_to_rows(
            given.values,
            given.mask,
            train.values,
            train.mask,
            centering=self.centering,
            min_overlap=self.min_overlap,
        )

    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        users, items = self._check_request(given, users, items)
        if users.size == 0:
            return np.empty(0, dtype=np.float64)
        train = self._require_fitted()
        assert self._user_means is not None and self._dev is not None
        sims_all = self._similarities(given)
        given_means = given.user_means(fill=train.global_mean())
        fallback = fallback_baseline(train, given, users, items)
        out = np.empty(users.shape, dtype=np.float64)

        order = np.argsort(users, kind="stable")
        boundaries = np.nonzero(np.diff(users[order]))[0] + 1
        for block in np.split(np.arange(users.size)[order], boundaries):
            b = users[block[0]]
            s = sims_all[b].copy()  # (P,)
            s[s <= self.min_sim] = 0.0
            if self.k is not None and np.count_nonzero(s) > self.k:
                kth = np.partition(s, -self.k)[-self.k]
                s[s < kth] = 0.0
            q_items = items[block]
            rater_mask = train.mask[:, q_items]  # (P, nq)
            weights = s[:, None] * rater_mask
            denom = np.abs(weights).sum(axis=0)
            if self.mean_offset:
                numer = (s[:, None] * self._dev[:, q_items] * rater_mask).sum(axis=0)
                with np.errstate(invalid="ignore", divide="ignore"):
                    offs = np.where(denom > 0.0, numer / np.where(denom > 0.0, denom, 1.0), 0.0)
                pred = given_means[b] + offs
            else:
                numer = (weights * train.values[:, q_items]).sum(axis=0)
                with np.errstate(invalid="ignore", divide="ignore"):
                    pred = np.where(denom > 0.0, numer / np.where(denom > 0.0, denom, 1.0), 0.0)
            pred = np.where(denom > 0.0, pred, fallback[block])
            out[block] = pred
        return self._clip(out)
