"""Trivial mean predictors: the sanity floor under every table.

Not part of the paper's comparison, but any reproduction needs them:
if a sophisticated method fails to beat the item-mean predictor, the
experiment harness (not the method) is usually broken.  The test suite
asserts exactly that ordering.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro.baselines.base import Recommender
from repro.data.matrix import RatingMatrix

__all__ = ["MeanPredictor"]


class MeanPredictor(Recommender):
    """Predict a constant per user, item, or globally.

    Parameters
    ----------
    kind:
        ``"global"`` — training global mean for everything.
        ``"item"`` — the item's training mean.
        ``"user"`` — the active user's mean over their *given* ratings.
        ``"user_item"`` — the EMDP-style blend
        ``0.5 * user_mean + 0.5 * item_mean``.
    """

    def __init__(self, kind: Literal["global", "item", "user", "user_item"] = "item") -> None:
        if kind not in ("global", "item", "user", "user_item"):
            raise ValueError(f"unknown kind {kind!r}")
        self.kind = kind
        self._item_means: np.ndarray | None = None
        self._global_mean: float = 0.0

    @property
    def name(self) -> str:
        return f"Mean[{self.kind}]"

    def fit(self, train: RatingMatrix) -> "MeanPredictor":
        super().fit(train)
        self._global_mean = train.global_mean()
        self._item_means = train.item_means(fill=self._global_mean)
        return self

    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        users, items = self._check_request(given, users, items)
        assert self._item_means is not None
        if self.kind == "global":
            out = np.full(users.shape, self._global_mean)
        elif self.kind == "item":
            out = self._item_means[items]
        elif self.kind == "user":
            out = given.user_means(fill=self._global_mean)[users]
        else:  # user_item
            user_means = given.user_means(fill=self._global_mean)
            out = 0.5 * user_means[users] + 0.5 * self._item_means[items]
        return self._clip(out)
