"""SCBPCC — Scalable Cluster-Based smoothing CF (Xue et al., SIGIR 2005).

The paper CFSF extends: cluster users with K-means, smooth unrated data
within clusters (CFSF reuses exactly this smoothing — our
implementation shares :mod:`repro.core.clustering` and
:mod:`repro.core.smoothing` with CFSF), then run *user-based* CF where

* neighbour *pre-selection* uses the clusters: the active user's top
  clusters are located first and candidates come only from them,
* neighbour similarity uses a hybrid weighting between original and
  smoothed ratings (the idea CFSF's Eq. 11 ε generalises),
* prediction is a Resnick-style weighted deviation sum over the top-K
  neighbours, reading smoothed values where the neighbour did not rate
  the item.

CFSF's advance over SCBPCC (per its Section II-C) is the *item*
dimension: SCBPCC has no GIS, no SIR'/SUIR' and no local item–user
matrix; also SCBPCC re-identifies neighbours over the whole candidate
population each time.  The Fig. 5 reproduction times this difference.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import Recommender, fallback_baseline
from repro.core.clustering import UserClusters, cluster_users
from repro.core.icluster import user_cluster_affinity
from repro.core.selection import select_top_k_users
from repro.core.smoothing import SmoothedRatings, smooth_ratings
from repro.data.matrix import RatingMatrix
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["SCBPCC"]


class SCBPCC(Recommender):
    """Cluster-based smoothing + user-based CF (Xue et al. 2005).

    Parameters
    ----------
    n_clusters:
        Number of user clusters (their paper and CFSF both use ~30).
    top_k:
        Neighbourhood size for prediction (their paper uses 20–50;
        default 25 to mirror the CFSF comparison).
    epsilon:
        Hybrid weight of original vs smoothed ratings (their
        ``lambda``; CFSF's Eq. 11 ε).  Default 0.35 mirrors CFSF's w.
    n_candidate_clusters:
        How many of the active user's best clusters supply neighbour
        candidates.  ``None`` scans all clusters — the configuration
        the CFSF paper criticises as under-optimised ("SCBPCC could be
        further improved in scalability"); the default keeps it, so
        the Fig. 5 timing comparison is faithful.
    seed, max_iter:
        K-means controls.
    """

    def __init__(
        self,
        *,
        n_clusters: int = 30,
        top_k: int = 25,
        epsilon: float = 0.35,
        n_candidate_clusters: int | None = None,
        seed: int = 0,
        max_iter: int = 30,
    ) -> None:
        check_positive_int(n_clusters, "n_clusters")
        check_positive_int(top_k, "top_k")
        check_fraction(epsilon, "epsilon")
        if n_candidate_clusters is not None:
            check_positive_int(n_candidate_clusters, "n_candidate_clusters")
        self.n_clusters = n_clusters
        self.top_k = top_k
        self.epsilon = epsilon
        self.n_candidate_clusters = n_candidate_clusters
        self.seed = seed
        self.max_iter = max_iter
        self.clusters: UserClusters | None = None
        self.smoothed: SmoothedRatings | None = None

    @property
    def name(self) -> str:
        return "SCBPCC"

    def fit(self, train: RatingMatrix) -> "SCBPCC":
        """Offline: cluster and smooth (shared machinery with CFSF)."""
        super().fit(train)
        self.clusters = cluster_users(
            train, self.n_clusters, seed=self.seed, max_iter=self.max_iter
        )
        self.smoothed = smooth_ratings(train, self.clusters.labels, self.clusters.n_clusters)
        return self

    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        users, items = self._check_request(given, users, items)
        if users.size == 0:
            return np.empty(0, dtype=np.float64)
        train = self._require_fitted()
        smoothed = self.smoothed
        assert smoothed is not None and self.clusters is not None
        fallback = fallback_baseline(train, given, users, items)
        out = np.empty(users.shape, dtype=np.float64)
        labels = smoothed.labels

        order = np.argsort(users, kind="stable")
        boundaries = np.nonzero(np.diff(users[order]))[0] + 1
        for block in np.split(np.arange(users.size)[order], boundaries):
            b = int(users[block[0]])
            items_idx, ratings = given.user_profile(b)
            if items_idx.size == 0:
                out[block] = fallback[block]
                continue
            mean_b = float(ratings.mean())

            # Cluster pre-selection via the Eq. 9-style affinity.
            affinity = user_cluster_affinity(
                given.values[b : b + 1],
                given.mask[b : b + 1],
                np.array([mean_b]),
                smoothed.deviations,
                smoothed.deviation_counts,
            )[0]
            ranking = np.argsort(-affinity, kind="stable")
            if self.n_candidate_clusters is not None:
                chosen = ranking[: self.n_candidate_clusters]
                candidates = np.nonzero(np.isin(labels, chosen))[0]
            else:
                candidates = np.arange(train.n_users, dtype=np.intp)
            if candidates.size == 0:
                out[block] = fallback[block]
                continue

            top = select_top_k_users(
                items_idx,
                ratings - mean_b,
                candidates,
                smoothed,
                k=self.top_k,
                epsilon=self.epsilon,
            )
            q_items = items[block]
            K_users = top.users
            s_u = np.maximum(top.similarities, 0.0)
            r_col = smoothed.values[np.ix_(K_users, q_items)]
            obs_col = smoothed.observed_mask[np.ix_(K_users, q_items)]
            w_col = np.where(obs_col, self.epsilon, 1.0 - self.epsilon)
            w = w_col * s_u[:, None]
            den = w.sum(axis=0)
            offsets = r_col - smoothed.user_means[K_users][:, None]
            num = (w * offsets).sum(axis=0)
            with np.errstate(invalid="ignore", divide="ignore"):
                pred = np.where(den > 0.0, mean_b + num / np.where(den > 0.0, den, 1.0), 0.0)
            out[block] = np.where(den > 0.0, pred, fallback[block])
        return self._clip(out)
