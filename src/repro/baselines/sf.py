"""SF — Similarity Fusion (Wang, de Vries & Reinders, SIGIR 2006).

The UI-based comparator the paper derives its Eq. 4 from: predict from
all three rating sources — the same user on similar items (SIR), similar
users on the same item (SUR), and similar users on similar items
(SUIR) — fused with two interpolation weights, but computed over the
*entire* matrix with top-N neighbour lists and no clustering or
smoothing.  This is precisely the "accurate but slow" end of the
paper's design space: SF touches the full user population per request
(its online cost is what Fig. 5 contrasts CFSF against conceptually).

Our implementation normalises ratings on both sides (user-mean offsets
for the user dimension, item-mean offsets for the item dimension),
which matches Wang et al.'s use of normalised ratings, and weights the
SUIR cells with the same soft-minimum pair similarity CFSF adopts as
its Eq. 13.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import Recommender, fallback_baseline
from repro.core.fusion import fusion_weights
from repro.data.matrix import RatingMatrix
from repro.similarity import item_pcc, pcc_to_rows, top_k_indices
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["SimilarityFusion"]


class SimilarityFusion(Recommender):
    """SF: whole-matrix fusion of SIR, SUR and SUIR (Wang et al. 2006).

    Parameters
    ----------
    top_k_users, top_m_items:
        Neighbour-list sizes for the user and item dimensions (their
        paper explores 20–60; defaults 50/50).
    lam, delta:
        Interpolation weights with the same roles as CFSF's Eq. 14
        (their paper's λ and δ; defaults follow their reported best
        region λ≈0.7, δ≈0.15).
    """

    def __init__(
        self,
        *,
        top_k_users: int = 50,
        top_m_items: int = 50,
        lam: float = 0.7,
        delta: float = 0.15,
    ) -> None:
        check_positive_int(top_k_users, "top_k_users")
        check_positive_int(top_m_items, "top_m_items")
        check_fraction(lam, "lam")
        check_fraction(delta, "delta")
        self.top_k_users = top_k_users
        self.top_m_items = top_m_items
        self.lam = lam
        self.delta = delta
        self._item_sim: np.ndarray | None = None
        self._item_nbr: np.ndarray | None = None
        self._user_means: np.ndarray | None = None
        self._item_means: np.ndarray | None = None
        self._dev: np.ndarray | None = None

    @property
    def name(self) -> str:
        return "SF"

    def fit(self, train: RatingMatrix) -> "SimilarityFusion":
        """Precompute the item–item PCC and its top-M neighbour lists."""
        super().fit(train)
        sim = item_pcc(train.values, train.mask)
        np.fill_diagonal(sim, -np.inf)
        order = np.argsort(-sim, axis=1, kind="stable")[:, : self.top_m_items]
        np.fill_diagonal(sim, 1.0)
        self._item_sim = sim
        self._item_nbr = order.astype(np.intp)
        self._user_means = train.user_means()
        self._item_means = train.item_means()
        self._dev = (train.values - self._user_means[:, None]) * train.mask
        return self

    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        users, items = self._check_request(given, users, items)
        if users.size == 0:
            return np.empty(0, dtype=np.float64)
        train = self._require_fitted()
        assert self._item_sim is not None and self._item_nbr is not None
        assert self._user_means is not None and self._item_means is not None
        assert self._dev is not None
        w_sir, w_sur, w_suir = fusion_weights(self.lam, self.delta)

        # Whole-population active-vs-train similarities (the SF cost).
        sims_all = pcc_to_rows(given.values, given.mask, train.values, train.mask)
        gmean = train.global_mean()
        given_means = given.user_means(fill=gmean)
        fallback = fallback_baseline(train, given, users, items)
        out = np.empty(users.shape, dtype=np.float64)

        order = np.argsort(users, kind="stable")
        boundaries = np.nonzero(np.diff(users[order]))[0] + 1
        for block in np.split(np.arange(users.size)[order], boundaries):
            b = int(users[block[0]])
            q_items = items[block]
            mean_b = given_means[b]
            rated_idx, rated_vals = given.user_profile(b)

            # Top-K users for this active profile (positive sims only).
            s_row = np.maximum(sims_all[b], 0.0)
            top_users = top_k_indices(s_row, self.top_k_users)
            top_users = top_users[s_row[top_users] > 0.0]
            s_u = s_row[top_users]

            # ---- SIR term (item dimension, item-mean offsets) -------
            if rated_idx.size:
                si = np.maximum(self._item_sim[np.ix_(q_items, rated_idx)], 0.0)
                den = si.sum(axis=1)
                num = si @ (rated_vals - self._item_means[rated_idx])
                with np.errstate(invalid="ignore", divide="ignore"):
                    sir = np.where(
                        den > 0.0,
                        self._item_means[q_items] + num / np.where(den > 0.0, den, 1.0),
                        mean_b,
                    )
                sir_ok = den > 0.0
            else:
                sir = np.full(q_items.shape, mean_b)
                sir_ok = np.zeros(q_items.shape, dtype=bool)

            # ---- SUR term (user dimension, user-mean offsets) -------
            if top_users.size:
                raters = train.mask[np.ix_(top_users, q_items)]
                w = s_u[:, None] * raters
                den = w.sum(axis=0)
                num = (s_u[:, None] * self._dev[np.ix_(top_users, q_items)]).sum(axis=0)
                with np.errstate(invalid="ignore", divide="ignore"):
                    sur = np.where(
                        den > 0.0, mean_b + num / np.where(den > 0.0, den, 1.0), mean_b
                    )
                sur_ok = den > 0.0
            else:
                sur = np.full(q_items.shape, mean_b)
                sur_ok = np.zeros(q_items.shape, dtype=bool)

            # ---- SUIR term (both dimensions, double offsets) --------
            if top_users.size:
                nbr = self._item_nbr[q_items]                     # (nq, M)
                s_i = np.maximum(self._item_sim[q_items[:, None], nbr], 0.0)
                si3 = s_i[:, None, :]                             # (nq, 1, M)
                su3 = s_u[None, :, None]                          # (1, K, 1)
                dd = np.sqrt(si3 * si3 + su3 * su3)
                with np.errstate(invalid="ignore", divide="ignore"):
                    pair = np.where(dd > 0.0, si3 * su3 / np.where(dd > 0.0, dd, 1.0), 0.0)
                rated_cells = train.mask[top_users[:, None, None], nbr[None, :, :]]
                vals = train.values[top_users[:, None, None], nbr[None, :, :]]
                dev = (
                    vals
                    - self._user_means[top_users][:, None, None]
                    - (self._item_means[nbr][None, :, :] - gmean)
                )
                w3 = pair * np.transpose(rated_cells, (1, 0, 2))
                den3 = w3.sum(axis=(1, 2))
                num3 = (w3 * np.transpose(dev, (1, 0, 2))).sum(axis=(1, 2))
                anchor = mean_b + (self._item_means[q_items] - gmean)
                with np.errstate(invalid="ignore", divide="ignore"):
                    suir = np.where(
                        den3 > 0.0, anchor + num3 / np.where(den3 > 0.0, den3, 1.0), mean_b
                    )
                suir_ok = den3 > 0.0
            else:
                suir = np.full(q_items.shape, mean_b)
                suir_ok = np.zeros(q_items.shape, dtype=bool)

            pred = w_sir * sir + w_sur * sur + w_suir * suir
            none_ok = ~(sir_ok | sur_ok | suir_ok)
            pred = np.where(none_ok, fallback[block], pred)
            out[block] = pred
        return self._clip(out)
