"""PD — Personality Diagnosis (Pennock et al., UAI 2000).

The hybrid memory/model comparator in Table III.  PD assumes every
user has a latent "true" personality — their noise-free rating vector —
and observed ratings are the truth plus Gaussian noise::

    p(r_obs(u, i) = x | r_true(u, i) = y) ∝ exp(−(x − y)² / 2σ²)

Treating each *training user* as a candidate personality for the active
user, the posterior over the active user's rating of item *a* is::

    p(r(b, a) = x) ∝ Σ_u  p(x | r(u, a)) · Π_{i ∈ given(b)} p(r(b,i) | r(u,i))

where the product runs over the given items the training user also
rated (users sharing no item contribute a flat likelihood).  Prediction
returns either the posterior mode (``mode="argmax"`` — the original
paper's choice, which predicts a valid discrete rating) or the
posterior mean (``mode="mean"`` — lower MAE; default, since Table III
scores MAE).

Implementation: per active user the log-likelihood of all P training
personalities is one masked matrix product; per queried item the
posterior over the discrete rating values is a weighted histogram.
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro.baselines.base import Recommender, fallback_baseline
from repro.data.matrix import RatingMatrix

__all__ = ["PersonalityDiagnosis"]


class PersonalityDiagnosis(Recommender):
    """Personality Diagnosis (Pennock et al. 2000).

    Parameters
    ----------
    sigma:
        Gaussian noise scale of the personality model (their paper
        uses σ in the order of 1 rating step).
    mode:
        ``"mean"`` (posterior expectation; default) or ``"argmax"``
        (most probable discrete rating — the original formulation).
    rating_values:
        The discrete rating alphabet; defaults to 1..5.
    """

    def __init__(
        self,
        *,
        sigma: float = 1.0,
        mode: Literal["mean", "argmax"] = "mean",
        rating_values: Sequence[float] | None = None,
    ) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {sigma}")
        if mode not in ("mean", "argmax"):
            raise ValueError(f"mode must be 'mean' or 'argmax', got {mode!r}")
        self.sigma = float(sigma)
        self.mode = mode
        self.rating_values = (
            np.asarray(rating_values, dtype=np.float64)
            if rating_values is not None
            else np.arange(1.0, 6.0)
        )

    @property
    def name(self) -> str:
        return "PD"

    def fit(self, train: RatingMatrix) -> "PersonalityDiagnosis":
        """PD is lazy — fitting just stores the personalities."""
        super().fit(train)
        return self

    def _log_weights(self, given: RatingMatrix, b: int) -> np.ndarray:
        """``(P,)`` log-likelihood of each training personality for
        active user *b*, from the co-rated given items."""
        train = self._require_fitted()
        idx, vals = given.user_profile(b)
        if idx.size == 0:
            return np.zeros(train.n_users)
        diffs = vals[None, :] - train.values[:, idx]        # (P, f)
        co = train.mask[:, idx]
        # Unshared items contribute a constant factor (flat likelihood),
        # i.e. zero in log space.
        return -0.5 * ((diffs**2) * co).sum(axis=1) / (self.sigma**2)

    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        users, items = self._check_request(given, users, items)
        if users.size == 0:
            return np.empty(0, dtype=np.float64)
        train = self._require_fitted()
        fallback = fallback_baseline(train, given, users, items)
        vals_axis = self.rating_values
        out = np.empty(users.shape, dtype=np.float64)

        order = np.argsort(users, kind="stable")
        boundaries = np.nonzero(np.diff(users[order]))[0] + 1
        for block in np.split(np.arange(users.size)[order], boundaries):
            b = int(users[block[0]])
            q_items = items[block]
            logw = self._log_weights(given, b)
            w = np.exp(logw - logw.max())                   # (P,)

            raters = train.mask[:, q_items]                  # (P, nq)
            r_cells = train.values[:, q_items]
            # posterior[x, q] = Σ_u w_u · raters · exp(−(x − r(u,q))²/2σ²)
            diff = vals_axis[:, None, None] - r_cells[None, :, :]   # (X, P, nq)
            lik = np.exp(-0.5 * diff**2 / self.sigma**2) * raters[None, :, :]
            posterior = np.einsum("p,xpq->xq", w, lik)       # (X, nq)
            tot = posterior.sum(axis=0)
            ok = tot > 0.0
            if self.mode == "mean":
                with np.errstate(invalid="ignore", divide="ignore"):
                    pred = (vals_axis @ posterior) / np.where(ok, tot, 1.0)
            else:
                pred = vals_axis[np.argmax(posterior, axis=0)]
            out[block] = np.where(ok, pred, fallback[block])
        return self._clip(out)
