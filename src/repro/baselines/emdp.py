"""EMDP — Effective Missing Data Prediction (Ma, King & Lyu, SIGIR 2007).

The strongest memory-based comparator in the paper's Table III.  EMDP:

1. Computes user–user and item–item PCC, both *significance-devalued*
   by the co-rating count (``min(n, γ)/γ``).
2. Keeps only neighbours whose similarity exceeds a threshold — ``η``
   for users, ``θ`` for items.
3. **Predicts the missing data in the training matrix itself**: each
   unrated (u, i) is filled by fusing a user-based and an item-based
   Resnick estimate with weight ``λ`` when both neighbour sets are
   non-empty, by the available one when only one is, and left missing
   when neither is (their Eqs. 10–13).
4. Answers online requests with the same fused formula computed over
   the (partially) filled matrix.

The CFSF paper's critique (Section II-A): per-item/per-user thresholds
make EMDP computationally heavy and badly chosen thresholds can leave
users with no prediction — CFSF gets the same best-neighbour effect by
top-M/top-K selection instead.

Defaults follow Ma et al.: ``λ=0.7, γ=30, η=θ=0.5``.  The threshold
sensitivity the CFSF paper criticises is real and measured in
``bench_ablation_emdp_thresholds``: on this substrate η=θ≈0.1 makes
EMDP rival CFSF, while the published thresholds leave it mid-pack.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import Recommender, fallback_baseline
from repro.data.matrix import RatingMatrix
from repro.similarity import (
    item_pcc,
    overlap_counts,
    pcc_to_rows,
    significance_weight,
    user_pcc,
)
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["EMDP"]


class EMDP(Recommender):
    """Effective Missing Data Prediction (Ma et al. 2007).

    Parameters
    ----------
    lam:
        Fusion weight of the user-based term (their λ; 0.7 in the
        source paper).
    eta:
        User-similarity threshold η.
    theta:
        Item-similarity threshold θ.
    gamma:
        Significance-weighting knee γ (co-ratings needed for a
        similarity to count at full strength).
    fill_training:
        Run step 3 (missing-data prediction inside the training
        matrix).  Disabling it degrades EMDP to a thresholded
        two-source fusion; the ablation benchmarks use this switch.
    """

    def __init__(
        self,
        *,
        lam: float = 0.7,
        eta: float = 0.5,
        theta: float = 0.5,
        gamma: int = 30,
        fill_training: bool = True,
    ) -> None:
        check_fraction(lam, "lam")
        check_fraction(eta, "eta")
        check_fraction(theta, "theta")
        check_positive_int(gamma, "gamma")
        self.lam = lam
        self.eta = eta
        self.theta = theta
        self.gamma = gamma
        self.fill_training = bool(fill_training)
        self._item_sim: np.ndarray | None = None
        self._filled_values: np.ndarray | None = None
        self._filled_mask: np.ndarray | None = None
        self._user_means: np.ndarray | None = None
        self._item_means: np.ndarray | None = None

    @property
    def name(self) -> str:
        return "EMDP"

    # ------------------------------------------------------------------
    def fit(self, train: RatingMatrix) -> "EMDP":
        """Compute similarities and fill the training matrix's holes."""
        super().fit(train)
        self._user_means = train.user_means()
        self._item_means = train.item_means()

        item_sim = item_pcc(train.values, train.mask)
        item_sim = significance_weight(
            item_sim, overlap_counts(train.mask, axis="columns"), gamma=self.gamma
        )
        np.fill_diagonal(item_sim, 0.0)  # an item never neighbours itself
        item_sim[item_sim <= self.theta] = 0.0
        self._item_sim = item_sim

        if self.fill_training:
            user_sim = user_pcc(train.values, train.mask)
            user_sim = significance_weight(
                user_sim, overlap_counts(train.mask, axis="rows"), gamma=self.gamma
            )
            np.fill_diagonal(user_sim, 0.0)
            user_sim[user_sim <= self.eta] = 0.0
            filled, filled_mask = self._fill_matrix(train, user_sim)
            self._filled_values = filled
            self._filled_mask = filled_mask
        else:
            self._filled_values = np.where(train.mask, train.values, 0.0)
            self._filled_mask = train.mask.copy()
        return self

    def _fill_matrix(
        self, train: RatingMatrix, user_sim: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Their Eqs. 10–13: fuse user/item estimates for every hole.

        Fully vectorised: both estimates for *all* cells come from two
        masked matrix products, then the per-cell availability logic
        picks the fused / single-source / missing outcome.
        """
        assert self._item_sim is not None
        assert self._user_means is not None and self._item_means is not None
        values, mask = train.values, train.mask
        dev_u = (values - self._user_means[:, None]) * mask

        # User-based estimate for every (u, i): weighted deviations of
        # the similar users who rated i.
        num_u = user_sim @ dev_u
        den_u = user_sim @ mask.astype(np.float64)
        has_u = den_u > 0.0
        with np.errstate(invalid="ignore", divide="ignore"):
            est_u = self._user_means[:, None] + num_u / np.where(has_u, den_u, 1.0)

        # Item-based estimate: weighted deviations of the similar items
        # the user rated.
        dev_i = (values - self._item_means[None, :]) * mask
        num_i = dev_i @ self._item_sim  # (P, Q)
        den_i = mask.astype(np.float64) @ self._item_sim
        has_i = den_i > 0.0
        with np.errstate(invalid="ignore", divide="ignore"):
            est_i = self._item_means[None, :] + num_i / np.where(has_i, den_i, 1.0)

        lam = self.lam
        fused = np.where(
            has_u & has_i,
            lam * est_u + (1.0 - lam) * est_i,
            np.where(has_u, est_u, np.where(has_i, est_i, 0.0)),
        )
        filled_mask = mask | has_u | has_i
        filled = np.where(mask, values, np.where(has_u | has_i, fused, 0.0))
        lo, hi = train.rating_scale
        filled = np.where(filled_mask, np.clip(filled, lo, hi), 0.0)
        return filled, filled_mask

    # ------------------------------------------------------------------
    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        users, items = self._check_request(given, users, items)
        if users.size == 0:
            return np.empty(0, dtype=np.float64)
        train = self._require_fitted()
        assert self._item_sim is not None
        assert self._filled_values is not None and self._filled_mask is not None
        assert self._item_means is not None

        # Active-vs-train similarities over the *original* profiles,
        # significance-devalued by the co-rating count, thresholded.
        sims = pcc_to_rows(given.values, given.mask, train.values, train.mask)
        n_co = (given.mask.astype(np.float64) @ train.mask.astype(np.float64).T)
        sims = sims * (np.minimum(n_co, self.gamma) / self.gamma)
        sims[sims <= self.eta] = 0.0

        gmean = train.global_mean()
        given_means = given.user_means(fill=gmean)
        fallback = fallback_baseline(train, given, users, items)
        filled_dev = (self._filled_values - np.where(
            self._filled_mask.any(axis=1)[:, None],
            # mean over filled row entries
            self._filled_values.sum(axis=1)[:, None]
            / np.maximum(self._filled_mask.sum(axis=1), 1)[:, None],
            gmean,
        )) * self._filled_mask
        out = np.empty(users.shape, dtype=np.float64)

        order = np.argsort(users, kind="stable")
        boundaries = np.nonzero(np.diff(users[order]))[0] + 1
        for block in np.split(np.arange(users.size)[order], boundaries):
            b = int(users[block[0]])
            q_items = items[block]
            s = sims[b]  # (P,)

            # User-based term over the filled matrix.
            raters = self._filled_mask[:, q_items]
            w = s[:, None] * raters
            den_u = w.sum(axis=0)
            num_u = (s[:, None] * filled_dev[:, q_items]).sum(axis=0)
            with np.errstate(invalid="ignore", divide="ignore"):
                est_u = given_means[b] + num_u / np.where(den_u > 0.0, den_u, 1.0)
            has_u = den_u > 0.0

            # Item-based term over the user's given ratings.
            rated_idx, rated_vals = given.user_profile(b)
            if rated_idx.size:
                s_items = self._item_sim[np.ix_(q_items, rated_idx)]
                den_i = s_items.sum(axis=1)
                num_i = s_items @ (rated_vals - self._item_means[rated_idx])
                with np.errstate(invalid="ignore", divide="ignore"):
                    est_i = self._item_means[q_items] + num_i / np.where(
                        den_i > 0.0, den_i, 1.0
                    )
                has_i = den_i > 0.0
            else:
                est_i = np.zeros(q_items.shape)
                has_i = np.zeros(q_items.shape, dtype=bool)

            lam = self.lam
            pred = np.where(
                has_u & has_i,
                lam * est_u + (1.0 - lam) * est_i,
                np.where(has_u, est_u, np.where(has_i, est_i, fallback[block])),
            )
            out[block] = pred
        return self._clip(out)
