"""Baselines: every comparator of the paper's Tables II and III.

==============  =====================================================
``SIR``         :class:`~repro.baselines.item_knn.ItemBasedCF` —
                item-based PCC CF (Eq. 1; Sarwar et al. 2001).
``SUR``         :class:`~repro.baselines.user_knn.UserBasedCF` —
                user-based PCC CF (Eq. 2).
``SF``          :class:`~repro.baselines.sf.SimilarityFusion` —
                whole-matrix similarity fusion (Wang et al. 2006).
``SCBPCC``      :class:`~repro.baselines.scbpcc.SCBPCC` —
                cluster-based smoothing CF (Xue et al. 2005).
``EMDP``        :class:`~repro.baselines.emdp.EMDP` —
                effective missing-data prediction (Ma et al. 2007).
``AM``          :class:`~repro.baselines.aspect_model.AspectModel` —
                latent-class pLSA CF (Hofmann 2004).
``PD``          :class:`~repro.baselines.pd.PersonalityDiagnosis` —
                personality diagnosis (Pennock et al. 2000).
==============  =====================================================

plus :class:`~repro.baselines.matrix_factorization.MatrixFactorization`
(the related-work family the paper cites as [12]/[20]), the sanity
references :class:`~repro.baselines.means.MeanPredictor`
and :class:`~repro.baselines.slope_one.SlopeOne`, and the shared
:class:`~repro.baselines.base.Recommender` interface that CFSF itself
implements.
"""

from repro.baselines.aspect_model import AspectModel
from repro.baselines.base import NotFittedError, Recommender, fallback_baseline
from repro.baselines.emdp import EMDP
from repro.baselines.item_knn import ItemBasedCF
from repro.baselines.matrix_factorization import MatrixFactorization
from repro.baselines.means import MeanPredictor
from repro.baselines.pd import PersonalityDiagnosis
from repro.baselines.scbpcc import SCBPCC
from repro.baselines.sf import SimilarityFusion
from repro.baselines.slope_one import SlopeOne
from repro.baselines.user_knn import UserBasedCF

__all__ = [
    "AspectModel",
    "EMDP",
    "ItemBasedCF",
    "MatrixFactorization",
    "MeanPredictor",
    "NotFittedError",
    "PersonalityDiagnosis",
    "Recommender",
    "SCBPCC",
    "SimilarityFusion",
    "SlopeOne",
    "UserBasedCF",
    "fallback_baseline",
]
