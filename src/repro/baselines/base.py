"""The common recommender interface.

Every algorithm in the reproduction — CFSF itself and all seven
comparators from Tables II/III — implements this interface so the
evaluation protocol (:mod:`repro.eval.protocol`) can drive them
uniformly.

The interface mirrors the paper's offline/online split:

* :meth:`Recommender.fit` consumes the *training* matrix only (the
  ``ML_100``/``ML_200``/``ML_300`` prefix).  Anything expensive — the
  GIS, clustering, smoothing, EM — happens here.
* :meth:`Recommender.predict_many` answers online requests for *active
  users who are not part of the training matrix*.  An active user is
  described by a row of the ``given`` matrix (their GivenN revealed
  ratings over the same item space).  This models the paper's protocol
  where active users first "rate a certain number of items" and are
  then served.

Predictions are clipped to the training matrix's rating scale; when an
algorithm has no information at all for a (user, item) pair it must
still return a finite fallback (conventionally blending the user's
given-mean and the item's training-mean) — Eq. 15's MAE is computed
over *every* held-out rating, so returning NaN would silently drop
targets and flatter the metric.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.data.matrix import RatingMatrix

__all__ = ["Recommender", "NotFittedError", "fallback_baseline"]


class NotFittedError(RuntimeError):
    """Raised when prediction is requested before :meth:`Recommender.fit`."""


class Recommender(abc.ABC):
    """Abstract base class for all recommenders in the reproduction."""

    #: Set by :meth:`fit`; checked by :meth:`_require_fitted`.
    _train: RatingMatrix | None = None

    @property
    def name(self) -> str:
        """Display name used in report tables (class name by default)."""
        return type(self).__name__

    @abc.abstractmethod
    def fit(self, train: RatingMatrix) -> "Recommender":
        """Run the offline phase on the training matrix.

        Returns ``self`` for chaining.  Implementations must call
        ``super().fit(train)`` (or set ``self._train``) so that the
        fitted-state check and scale clipping work.
        """
        self._train = train
        return self

    @abc.abstractmethod
    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        """Predict ratings for parallel arrays of (active user row, item).

        Parameters
        ----------
        given:
            Active users' revealed profiles; ``users`` indexes its rows.
            Item columns must align with the training matrix.
        users, items:
            Parallel index arrays; the result has the same length.

        Returns
        -------
        numpy.ndarray
            Finite float predictions, clipped to the rating scale.
        """

    def predict(self, given: RatingMatrix, user: int, item: int) -> float:
        """Single-pair convenience wrapper over :meth:`predict_many`."""
        return float(
            self.predict_many(given, np.array([user]), np.array([item]))[0]
        )

    # ------------------------------------------------------------------
    # Shared helpers for subclasses
    # ------------------------------------------------------------------
    def _require_fitted(self) -> RatingMatrix:
        """Return the training matrix or raise :class:`NotFittedError`."""
        if self._train is None:
            raise NotFittedError(
                f"{type(self).__name__}.predict_many called before fit()"
            )
        return self._train

    def _check_request(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate a prediction request against the fitted state."""
        train = self._require_fitted()
        if given.n_items != train.n_items:
            raise ValueError(
                f"given has {given.n_items} items but model was fit on {train.n_items}"
            )
        users = np.asarray(users, dtype=np.intp)
        items = np.asarray(items, dtype=np.intp)
        if users.shape != items.shape or users.ndim != 1:
            raise ValueError("users and items must be parallel 1-D arrays")
        if users.size and (users.min() < 0 or users.max() >= given.n_users):
            raise ValueError("user index out of range of the given matrix")
        if items.size and (items.min() < 0 or items.max() >= train.n_items):
            raise ValueError("item index out of range")
        return users, items

    def _clip(self, predictions: np.ndarray) -> np.ndarray:
        """Clip predictions into the training rating scale."""
        return self._require_fitted().clip(predictions)


def fallback_baseline(
    train: RatingMatrix,
    given: RatingMatrix,
    users: np.ndarray,
    items: np.ndarray,
) -> np.ndarray:
    """The zero-information prediction every algorithm falls back to.

    ``0.5 * (active user's given-mean) + 0.5 * (item's training mean)``,
    each term defaulting to the global training mean when empty.  This
    is the standard fallback in the EMDP paper (their Eq. 12 with
    lambda = 0.5) and keeps MAE finite for cold items.
    """
    gmean = train.global_mean()
    user_means = given.user_means(fill=gmean)
    item_means = train.item_means(fill=gmean)
    return 0.5 * user_means[users] + 0.5 * item_means[items]
