"""AM — the Aspect Model / latent-class CF (Hofmann, TOIS 2004).

The model-based comparator in Table III.  A pLSA-style mixture: each
user mixes ``Z`` latent aspects, and each aspect has a Gaussian rating
distribution per item::

    p(r | u, i) = Σ_z p(z | u) · N(r; μ_{z,i}, σ_{z,i})

Trained with EM over the observed triplets; active users (who are not
in the training set) are *folded in*: the item parameters stay fixed
and a few E/M rounds estimate only the new user's mixture ``p(z|u)``
from their given ratings — Hofmann's standard fold-in.  Prediction is
the posterior mean ``Σ_z p(z|u) μ_{z,a}``.

The paper's Table III shows AM as the weakest comparator, degrading
sharply on small training sets (ML_100: 0.963 at Given5) — with few
users the per-aspect, per-item Gaussians are under-determined.  The
reproduction preserves that failure mode; the variance floor and the
uniform smoothing prior below are what keep it merely weak rather than
degenerate.  The default (light) regularisation reproduces that
fragility; raising ``prior_strength``/``min_sigma`` turns AM into a
respectable mid-pack method, which the ablation suite measures.

Implementation is fully vectorised over the observed-triplet arrays;
one EM iteration is O(n_ratings * Z).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import Recommender, fallback_baseline
from repro.data.matrix import RatingMatrix
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["AspectModel"]


class AspectModel(Recommender):
    """Latent-class (pLSA) CF with Gaussian ratings (Hofmann 2004).

    Parameters
    ----------
    n_aspects:
        Number of latent classes ``Z`` (Hofmann explores 20–100).
    n_iter:
        EM iterations on the training set.
    n_fold_in_iter:
        E/M rounds used to fold in an active user.
    min_sigma:
        Variance floor for the per-(aspect, item) Gaussians — without
        it, an aspect-item cell backed by a single rating collapses to
        a delta and dominates every posterior.
    prior_strength:
        Dirichlet-style smoothing mass added to the M-step counts.
    seed:
        Initialisation seed.
    """

    def __init__(
        self,
        *,
        n_aspects: int = 20,
        n_iter: int = 40,
        n_fold_in_iter: int = 10,
        min_sigma: float = 0.2,
        prior_strength: float = 0.05,
        seed: int = 0,
    ) -> None:
        check_positive_int(n_aspects, "n_aspects")
        check_positive_int(n_iter, "n_iter")
        check_positive_int(n_fold_in_iter, "n_fold_in_iter")
        if min_sigma <= 0:
            raise ValueError(f"min_sigma must be > 0, got {min_sigma}")
        if prior_strength < 0:
            raise ValueError(f"prior_strength must be >= 0, got {prior_strength}")
        self.n_aspects = n_aspects
        self.n_iter = n_iter
        self.n_fold_in_iter = n_fold_in_iter
        self.min_sigma = float(min_sigma)
        self.prior_strength = float(prior_strength)
        self.seed = seed
        self._mu: np.ndarray | None = None      # (Z, Q)
        self._sigma: np.ndarray | None = None   # (Z, Q)
        self._log_likelihoods: list[float] = []

    @property
    def name(self) -> str:
        return "AM"

    @property
    def log_likelihood_trace(self) -> list[float]:
        """Per-EM-iteration training log-likelihood (tests assert it is
        non-decreasing up to numerical tolerance)."""
        return list(self._log_likelihoods)

    # ------------------------------------------------------------------
    def _gauss_logpdf(self, r: np.ndarray, items: np.ndarray) -> np.ndarray:
        """``(n_obs, Z)`` log N(r; mu_{z,item}, sigma_{z,item})."""
        assert self._mu is not None and self._sigma is not None
        mu = self._mu[:, items].T       # (n, Z)
        sigma = self._sigma[:, items].T
        return (
            -0.5 * np.log(2.0 * np.pi)
            - np.log(sigma)
            - 0.5 * ((r[:, None] - mu) / sigma) ** 2
        )

    def fit(self, train: RatingMatrix) -> "AspectModel":
        """EM over the observed training triplets."""
        super().fit(train)
        rng = as_generator(self.seed)
        users_obs, items_obs = np.nonzero(train.mask)
        r_obs = train.values[users_obs, items_obs]
        P, Q, Z = train.n_users, train.n_items, self.n_aspects
        n = r_obs.size

        # Init: random responsibilities.
        resp = rng.dirichlet(np.ones(Z), size=n)
        p_z_u = np.full((P, Z), 1.0 / Z)
        gmean = train.global_mean()
        self._log_likelihoods = []

        for _ in range(self.n_iter):
            # ---- M step ------------------------------------------------
            # p(z|u): normalised responsibility mass per user.
            mass_u = np.zeros((P, Z))
            np.add.at(mass_u, users_obs, resp)
            mass_u += self.prior_strength / Z
            p_z_u = mass_u / mass_u.sum(axis=1, keepdims=True)

            # mu, sigma per (z, item) with smoothing toward the global mean.
            mass_i = np.zeros((Q, Z))
            np.add.at(mass_i, items_obs, resp)
            wsum_r = np.zeros((Q, Z))
            np.add.at(wsum_r, items_obs, resp * r_obs[:, None])
            prior = self.prior_strength
            mu = ((wsum_r + prior * gmean) / (mass_i + prior)).T        # (Z, Q)
            wsum_sq = np.zeros((Q, Z))
            np.add.at(
                wsum_sq, items_obs, resp * (r_obs[:, None] - mu[:, items_obs].T) ** 2
            )
            var = ((wsum_sq + prior * 1.0) / (mass_i + prior)).T
            sigma = np.sqrt(np.maximum(var, self.min_sigma**2))
            self._mu, self._sigma = mu, sigma

            # ---- E step ------------------------------------------------
            log_lik = self._gauss_logpdf(r_obs, items_obs) + np.log(
                np.maximum(p_z_u[users_obs], 1e-300)
            )
            mx = log_lik.max(axis=1, keepdims=True)
            w = np.exp(log_lik - mx)
            tot = w.sum(axis=1, keepdims=True)
            resp = w / tot
            self._log_likelihoods.append(float((np.log(tot[:, 0]) + mx[:, 0]).sum()))
        return self

    # ------------------------------------------------------------------
    def fold_in(self, given: RatingMatrix) -> np.ndarray:
        """Estimate ``p(z|u)`` for each active user (items fixed).

        Returns an ``(n_active, Z)`` mixture matrix.
        """
        self._require_fitted()
        assert self._mu is not None
        users_obs, items_obs = np.nonzero(given.mask)
        r_obs = given.values[users_obs, items_obs]
        n_active, Z = given.n_users, self.n_aspects
        p_z_u = np.full((n_active, Z), 1.0 / Z)
        if r_obs.size == 0:
            return p_z_u
        base = self._gauss_logpdf(r_obs, items_obs)  # fixed across iterations
        for _ in range(self.n_fold_in_iter):
            log_lik = base + np.log(np.maximum(p_z_u[users_obs], 1e-300))
            mx = log_lik.max(axis=1, keepdims=True)
            w = np.exp(log_lik - mx)
            resp = w / w.sum(axis=1, keepdims=True)
            mass = np.zeros((n_active, Z))
            np.add.at(mass, users_obs, resp)
            mass += self.prior_strength / Z
            p_z_u = mass / mass.sum(axis=1, keepdims=True)
        return p_z_u

    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        users, items = self._check_request(given, users, items)
        train = self._require_fitted()
        assert self._mu is not None
        p_z_u = self.fold_in(given)
        pred = np.einsum("nz,zn->n", p_z_u[users], self._mu[:, items])
        # Items never rated in training keep prior-smoothed mu ~ global
        # mean; blend with the standard fallback for stability there.
        cold = train.item_counts()[items] == 0
        if cold.any():
            fb = fallback_baseline(train, given, users, items)
            pred = np.where(cold, fb, pred)
        return self._clip(pred)
