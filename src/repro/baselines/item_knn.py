"""SIR — the item-based CF baseline (Eq. 1 of the paper).

Item-based CF (Sarwar et al. [11], Amazon [2]) predicts the active
user's rating of item *a* from the ratings *the same user* gave to
items similar to *a*::

    r̂(b, a) = Σ_{i ∈ SI} sim(a, i) · r(b, i) / Σ_{i ∈ SI} sim(a, i)

where ``SI`` is the set of items the active user rated, optionally
restricted to the *k* most similar with positive similarity.  The
similarity is the item–item PCC of Eq. 5, computed over the training
matrix at fit time — this is the "memory-based" cost profile the paper
criticises: the offline Gram product touches the full matrix and the
model keeps the dense Q x Q similarity.

Under the GivenN protocol the active user has only 5–20 rated items,
so SIR is weakly informed by construction — the paper's Table II shows
it trailing SUR and CFSF, which the reproduction preserves.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import Recommender, fallback_baseline
from repro.data.matrix import RatingMatrix
from repro.similarity import Centering, item_pcc, overlap_counts, significance_weight

__all__ = ["ItemBasedCF"]


class ItemBasedCF(Recommender):
    """Item-based CF with PCC similarity (the paper's SIR baseline).

    Parameters
    ----------
    k:
        Use at most the *k* most-similar rated items per prediction
        (``None`` = all rated items with positive similarity).
    min_sim:
        Ignore neighbours with similarity ``<= min_sim``; the default
        0.0 keeps only positively correlated items, the standard
        choice for the weighted-average form of Eq. 1 (negative
        weights can push the average outside the rating scale).
    centering:
        Centering convention for the PCC (see :mod:`repro.similarity`).
    significance_gamma:
        When set, apply Herlocker significance weighting with this
        gamma to devalue similarities backed by few co-ratings.
    adjust_item_means:
        When ``True``, use Sarwar's adjusted weighted sum — predict
        deviations from item means rather than raw ratings::

            r̂(b, a) = r̄_a + Σ sim(a, i)·(r(b, i) − r̄_i) / Σ sim(a, i)

        The default ``False`` is the literal Eq. 1 the paper compares
        against (its SIR row).  The adjusted form is substantially
        stronger on data with item-quality offsets and is evaluated in
        the ablation suite.
    """

    def __init__(
        self,
        *,
        k: int | None = None,
        min_sim: float = 0.0,
        centering: Centering = "global_mean",
        significance_gamma: int | None = None,
        adjust_item_means: bool = False,
    ) -> None:
        if k is not None and k < 1:
            raise ValueError(f"k must be >= 1 or None, got {k}")
        self.k = k
        self.min_sim = float(min_sim)
        self.centering: Centering = centering
        self.significance_gamma = significance_gamma
        self.adjust_item_means = bool(adjust_item_means)
        self._sim: np.ndarray | None = None
        self._item_means: np.ndarray | None = None

    @property
    def name(self) -> str:
        return "SIR"

    def fit(self, train: RatingMatrix) -> "ItemBasedCF":
        """Compute the item–item PCC over the training matrix."""
        super().fit(train)
        sim = item_pcc(train.values, train.mask, centering=self.centering)
        if self.significance_gamma is not None:
            counts = overlap_counts(train.mask, axis="columns")
            sim = significance_weight(sim, counts, gamma=self.significance_gamma)
            np.fill_diagonal(sim, 1.0)
        self._sim = sim
        self._item_means = train.item_means()
        return self

    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        users, items = self._check_request(given, users, items)
        if users.size == 0:
            return np.empty(0, dtype=np.float64)
        train = self._require_fitted()
        assert self._sim is not None
        out = np.empty(users.shape, dtype=np.float64)
        fallback = fallback_baseline(train, given, users, items)

        # Group queries by active user: each user's rated-item set is
        # gathered once and every queried item reuses it.
        order = np.argsort(users, kind="stable")
        sorted_users = users[order]
        boundaries = np.nonzero(np.diff(sorted_users))[0] + 1
        for block in np.split(np.arange(users.size)[order], boundaries):
            u = users[block[0]]
            rated_idx, rated_vals = given.user_profile(u)
            q_items = items[block]
            if rated_idx.size == 0:
                out[block] = fallback[block]
                continue
            sims = self._sim[np.ix_(q_items, rated_idx)].copy()  # (nq, nr)
            sims[sims <= self.min_sim] = 0.0
            # Never let the query item predict itself (possible when a
            # caller asks about an item the user already rated).
            sims[q_items[:, None] == rated_idx[None, :]] = 0.0
            if self.k is not None and self.k < rated_idx.size:
                # Keep only the k largest sims per row.
                kth = np.partition(sims, -self.k, axis=1)[:, -self.k][:, None]
                sims[sims < kth] = 0.0
            denom = sims.sum(axis=1)
            if self.adjust_item_means:
                assert self._item_means is not None
                numer = sims @ (rated_vals - self._item_means[rated_idx])
                with np.errstate(invalid="ignore", divide="ignore"):
                    offs = np.where(
                        denom > 0.0, numer / np.where(denom > 0.0, denom, 1.0), 0.0
                    )
                pred = self._item_means[q_items] + offs
            else:
                numer = sims @ rated_vals
                with np.errstate(invalid="ignore", divide="ignore"):
                    pred = np.where(
                        denom > 0.0, numer / np.where(denom > 0.0, denom, 1.0), 0.0
                    )
            pred = np.where(denom > 0.0, pred, fallback[block])
            out[block] = pred
        return self._clip(out)
