"""Regularised matrix factorisation (the related-work family [12], [20]).

The paper's Section II-C cites matrix-factorisation CF (Bell/Koren
2007, Rennie & Srebro 2005) as the other accuracy-oriented line of
work.  It is not part of Tables II/III, but a credible CF library
needs the reference point, and the ablation suite uses it to place
CFSF's accuracy among model-based methods that postdate its
comparators.

The implementation is the standard biased SGD factorisation
("FunkSVD" with user/item biases)::

    r̂(u, i) = μ + b_u + b_i + p_u · q_i

trained by stochastic gradient descent on the observed triplets with
L2 regularisation.  Active users (absent from training) are *folded
in*: item factors stay fixed and the new user's bias and factor vector
are fitted by a few epochs on the given ratings — the exact analogue
of the aspect model's fold-in.

All SGD loops run over shuffled observed-triplet arrays; the inner
update is vectorised per rating (the factor dimension), which at
MovieLens scale is fast enough (~10⁶ updates/s) without compiled code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import Recommender
from repro.data.matrix import RatingMatrix
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["MatrixFactorization"]


class MatrixFactorization(Recommender):
    """Biased SGD matrix factorisation.

    Parameters
    ----------
    n_factors:
        Latent dimensionality (MovieLens-scale sweet spot: 8–40).
    n_epochs:
        Full passes over the training ratings.
    lr:
        SGD learning rate.
    reg:
        L2 regularisation applied to biases and factors.
    n_fold_in_epochs:
        Passes used to fit an active user's bias/factors from their
        given ratings (item side frozen).
    init_sd:
        Initialisation scale of the factor matrices.
    seed:
        Initialisation/shuffling seed.
    """

    def __init__(
        self,
        *,
        n_factors: int = 16,
        n_epochs: int = 30,
        lr: float = 0.01,
        reg: float = 0.05,
        n_fold_in_epochs: int = 20,
        init_sd: float = 0.1,
        seed: int = 0,
    ) -> None:
        check_positive_int(n_factors, "n_factors")
        check_positive_int(n_epochs, "n_epochs")
        check_positive_int(n_fold_in_epochs, "n_fold_in_epochs")
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if reg < 0:
            raise ValueError(f"reg must be >= 0, got {reg}")
        if init_sd <= 0:
            raise ValueError(f"init_sd must be > 0, got {init_sd}")
        self.n_factors = n_factors
        self.n_epochs = n_epochs
        self.lr = float(lr)
        self.reg = float(reg)
        self.n_fold_in_epochs = n_fold_in_epochs
        self.init_sd = float(init_sd)
        self.seed = seed
        self._mu: float = 0.0
        self._item_bias: np.ndarray | None = None
        self._item_factors: np.ndarray | None = None
        self._train_errors: list[float] = []

    @property
    def name(self) -> str:
        return "MF"

    @property
    def training_rmse_trace(self) -> list[float]:
        """Per-epoch training RMSE (tests assert broad decrease)."""
        return list(self._train_errors)

    # ------------------------------------------------------------------
    def fit(self, train: RatingMatrix) -> "MatrixFactorization":
        """SGD over the observed training triplets."""
        super().fit(train)
        rng = as_generator(self.seed)
        users_obs, items_obs = np.nonzero(train.mask)
        r_obs = train.values[users_obs, items_obs]
        P, Q, F = train.n_users, train.n_items, self.n_factors

        self._mu = train.global_mean()
        bu = np.zeros(P)
        bi = np.zeros(Q)
        pu = rng.normal(0.0, self.init_sd, size=(P, F))
        qi = rng.normal(0.0, self.init_sd, size=(Q, F))
        lr, reg = self.lr, self.reg
        self._train_errors = []

        n = r_obs.size
        order = np.arange(n)
        for _ in range(self.n_epochs):
            rng.shuffle(order)
            sq_err = 0.0
            for k in order:
                u = users_obs[k]
                i = items_obs[k]
                pred = self._mu + bu[u] + bi[i] + pu[u] @ qi[i]
                err = r_obs[k] - pred
                sq_err += err * err
                bu[u] += lr * (err - reg * bu[u])
                bi[i] += lr * (err - reg * bi[i])
                pu_u = pu[u]
                pu[u] = pu_u + lr * (err * qi[i] - reg * pu_u)
                qi[i] = qi[i] + lr * (err * pu_u - reg * qi[i])
            self._train_errors.append(float(np.sqrt(sq_err / n)))

        self._item_bias = bi
        self._item_factors = qi
        return self

    # ------------------------------------------------------------------
    def fold_in(self, given: RatingMatrix) -> tuple[np.ndarray, np.ndarray]:
        """Fit (bias, factors) per active user with items frozen.

        Returns ``(biases (n,), factors (n, F))``.
        """
        train = self._require_fitted()
        assert self._item_bias is not None and self._item_factors is not None
        rng = as_generator(self.seed)
        n_active = given.n_users
        bu = np.zeros(n_active)
        pu = rng.normal(0.0, self.init_sd, size=(n_active, self.n_factors))
        lr, reg = self.lr, self.reg
        bi, qi = self._item_bias, self._item_factors

        for row in range(n_active):
            idx, vals = given.user_profile(row)
            if idx.size == 0:
                continue
            for _ in range(self.n_fold_in_epochs):
                for i, r in zip(idx, vals):
                    pred = self._mu + bu[row] + bi[i] + pu[row] @ qi[i]
                    err = r - pred
                    bu[row] += lr * (err - reg * bu[row])
                    pu[row] = pu[row] + lr * (err * qi[i] - reg * pu[row])
        return bu, pu

    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        users, items = self._check_request(given, users, items)
        assert self._item_bias is not None and self._item_factors is not None
        bu, pu = self.fold_in(given)
        pred = (
            self._mu
            + bu[users]
            + self._item_bias[items]
            + np.einsum("nf,nf->n", pu[users], self._item_factors[items])
        )
        return self._clip(pred)
