"""Weighted Slope One (Lemire & Maclachlan, 2005).

Not part of the paper's comparison, but a standard, parameter-free
reference point that any CF harness should carry: it predicts from
average per-item-pair rating differentials::

    dev(a, j) = Σ_{u rated both} (r(u,a) − r(u,j)) / n(a, j)
    r̂(b, a)  = Σ_{j ∈ rated(b)} n(a,j)·(dev(a,j) + r(b,j)) / Σ_j n(a,j)

Its role in the test suite: a sane hybrid must land between the mean
predictors and the tuned neighbourhood methods, giving the integration
tests a second fixed reference besides the means.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import Recommender, fallback_baseline
from repro.data.matrix import RatingMatrix

__all__ = ["SlopeOne"]


class SlopeOne(Recommender):
    """Weighted Slope One predictor."""

    def __init__(self) -> None:
        self._dev: np.ndarray | None = None
        self._counts: np.ndarray | None = None

    @property
    def name(self) -> str:
        return "SlopeOne"

    def fit(self, train: RatingMatrix) -> "SlopeOne":
        """Precompute all pairwise differentials with two Gram products."""
        super().fit(train)
        R = np.where(train.mask, train.values, 0.0)
        W = train.mask.astype(np.float64)
        n = W.T @ W                      # co-rating counts
        s = R.T @ W                      # s[a, j] = Σ_{co-raters} r(u, a)
        diff = s - s.T                   # Σ (r(u,a) − r(u,j))
        with np.errstate(invalid="ignore", divide="ignore"):
            dev = np.where(n > 0, diff / np.maximum(n, 1.0), 0.0)
        self._dev = dev
        self._counts = n
        return self

    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        users, items = self._check_request(given, users, items)
        if users.size == 0:
            return np.empty(0, dtype=np.float64)
        train = self._require_fitted()
        assert self._dev is not None and self._counts is not None
        fallback = fallback_baseline(train, given, users, items)
        out = np.empty(users.shape, dtype=np.float64)

        order = np.argsort(users, kind="stable")
        boundaries = np.nonzero(np.diff(users[order]))[0] + 1
        for block in np.split(np.arange(users.size)[order], boundaries):
            b = int(users[block[0]])
            rated_idx, rated_vals = given.user_profile(b)
            q_items = items[block]
            if rated_idx.size == 0:
                out[block] = fallback[block]
                continue
            n = self._counts[np.ix_(q_items, rated_idx)]      # (nq, f)
            dev = self._dev[np.ix_(q_items, rated_idx)]
            # Exclude the trivial self pair when q is in the given set.
            n = np.where(q_items[:, None] == rated_idx[None, :], 0.0, n)
            den = n.sum(axis=1)
            num = (n * (dev + rated_vals[None, :])).sum(axis=1)
            with np.errstate(invalid="ignore", divide="ignore"):
                pred = np.where(den > 0.0, num / np.where(den > 0.0, den, 1.0), 0.0)
            out[block] = np.where(den > 0.0, pred, fallback[block])
        return self._clip(out)
