"""Command-line interface: ``python -m repro <command>``.

A thin front-end over the experiment runner so the paper's artefacts
can be regenerated without writing Python:

=================  ====================================================
``stats``          Table I dataset statistics.
``table2``         CFSF vs SIR/SUR MAE grid (Table II).
``table3``         CFSF vs the state of the art (Table III).
``sweep``          One-parameter sensitivity curve (Figs. 2-4, 6-8).
``scalability``    Online response-time curve (Fig. 5).
``recommend``      Top-N items for one active user.
``crossval``       k-fold cross-validated MAE with variance.
``tune``           Grid-search CFSF online parameters.
``serve``          Fault-tolerant batch serving through the fallback
                   chain (optionally with injected faults).
``metrics``        Run an instrumented fit + serving pass and print
                   the metrics snapshot (JSON or Prometheus text).
=================  ====================================================

Every command accepts ``--seed`` (default 0) and ``--train-sizes`` /
``--given`` where applicable; run ``python -m repro <command> -h`` for
the full flags.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import Sequence

from repro.baselines import (
    EMDP,
    SCBPCC,
    AspectModel,
    ItemBasedCF,
    PersonalityDiagnosis,
    SimilarityFusion,
    UserBasedCF,
)
from repro.core import CFSF, CFSFConfig, recommend_top_n, save_model
from repro.data import dataset_source, default_dataset, make_split
from repro.eval import (
    ascii_plot,
    cross_validate,
    format_paper_table,
    format_table,
    mae,
    run_grid,
    scalability_sweep,
    sweep_cfsf_parameter,
    tune_cfsf,
)
from repro.serving import PredictionService
from repro.serving.faults import (
    FlakyRecommender,
    SlowRecommender,
    corrupt_snapshot,
    poison_given,
)

__all__ = ["main", "build_parser"]

_TABLE2_METHODS = {
    "CFSF": lambda: CFSF(),
    "SUR": lambda: UserBasedCF(mean_offset=False),
    "SIR": lambda: ItemBasedCF(),
}
_TABLE3_METHODS = {
    "CFSF": lambda: CFSF(),
    "AM": lambda: AspectModel(),
    "EMDP": lambda: EMDP(),
    "SCBPCC": lambda: SCBPCC(),
    "SF": lambda: SimilarityFusion(),
    "PD": lambda: PersonalityDiagnosis(),
}
_SWEEPABLE = {
    "M": "top_m_items",
    "K": "top_k_users",
    "C": "n_clusters",
    "lambda": "lam",
    "delta": "delta",
    "w": "epsilon",
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CFSF (ICPP 2009) reproduction — regenerate the paper's experiments.",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stats", help="Table I dataset statistics")

    for name, help_text in (
        ("table2", "Table II: CFSF vs SIR/SUR"),
        ("table3", "Table III: CFSF vs the state of the art"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument(
            "--train-sizes", type=int, nargs="+", default=[100, 200, 300],
            help="training prefixes (default 100 200 300)",
        )
        p.add_argument(
            "--given", type=int, nargs="+", default=[5, 10, 20],
            help="GivenN values (default 5 10 20)",
        )

    p = sub.add_parser("sweep", help="sensitivity curve for one CFSF parameter")
    p.add_argument("parameter", choices=sorted(_SWEEPABLE), help="which knob")
    p.add_argument("values", type=float, nargs="+", help="values to sweep")
    p.add_argument("--train-size", type=int, default=300)
    p.add_argument("--given-n", type=int, default=10)

    p = sub.add_parser("scalability", help="Fig. 5 online response-time curve")
    p.add_argument("--train-size", type=int, default=300)
    p.add_argument(
        "--fractions", type=float, nargs="+", default=[0.25, 0.5, 0.75, 1.0]
    )

    p = sub.add_parser("crossval", help="k-fold cross-validated MAE")
    p.add_argument("--folds", type=int, default=5)
    p.add_argument("--given-n", type=int, default=10)
    p.add_argument(
        "--methods", nargs="+", default=["CFSF", "EMDP"],
        choices=sorted(_TABLE3_METHODS),
    )

    p = sub.add_parser("tune", help="grid-search CFSF online parameters")
    p.add_argument("--train-size", type=int, default=300)
    p.add_argument("--given-n", type=int, default=10)
    p.add_argument("--lam", type=float, nargs="+", default=[0.2, 0.4, 0.6, 0.8])
    p.add_argument("--delta", type=float, nargs="+", default=[0.1, 0.3, 0.5])
    p.add_argument("--epsilon", type=float, nargs="+", default=[0.35, 0.65, 0.8])

    p = sub.add_parser("recommend", help="top-N items for one active user")
    p.add_argument("--user", type=int, default=0, help="active user row")
    p.add_argument("--n", type=int, default=10, help="list length")
    p.add_argument("--train-size", type=int, default=300)
    p.add_argument("--given-n", type=int, default=10)

    p = sub.add_parser(
        "serve", help="fault-tolerant batch serving through the fallback chain"
    )
    p.add_argument("--train-size", type=int, default=300)
    p.add_argument("--given-n", type=int, default=10)
    p.add_argument(
        "--requests", type=int, default=400, help="number of predictions to serve"
    )
    p.add_argument(
        "--deadline-ms", type=float, default=None,
        help="latency budget for the batch; overruns degrade to cheap stages",
    )
    p.add_argument(
        "--snapshot", default=None,
        help="round-trip the model through this snapshot path before serving",
    )
    p.add_argument(
        "--inject",
        choices=["none", "stage-failure", "latency", "poison-given", "corrupt-snapshot"],
        default="none",
        help="fault to inject before serving (demonstrates degradation)",
    )

    p = sub.add_parser(
        "metrics",
        help="instrumented fit + serving pass; print the metrics snapshot",
    )
    p.add_argument(
        "--format", choices=["json", "prometheus"], default="json",
        help="exposition format (default json)",
    )
    p.add_argument("--train-size", type=int, default=100)
    p.add_argument("--given-n", type=int, default=10)
    p.add_argument(
        "--requests", type=int, default=200, help="number of predictions to serve"
    )
    p.add_argument(
        "--batches", type=int, default=4,
        help="serve the requests in this many batches (populates the "
             "latency histogram with several samples)",
    )
    return parser


def _cmd_stats(args: argparse.Namespace) -> int:
    ratings = default_dataset(seed=args.seed)
    print(f"data source: {dataset_source(seed=args.seed)}")
    print(format_table(["statistic", "value"], ratings.stats().as_rows(),
                       title="Table I: statistics of the dataset"))
    return 0


def _cmd_table(args: argparse.Namespace, methods) -> int:
    ratings = default_dataset(seed=args.seed)
    grid = run_grid(
        ratings,
        methods,
        training_sizes=tuple(args.train_sizes),
        given_sizes=tuple(args.given),
        seed=args.seed,
        progress=print,
    )
    print()
    print(
        format_paper_table(
            grid.mae_map(),
            training_sets=[f"ML_{n}" for n in sorted(args.train_sizes, reverse=True)],
            methods=list(methods),
            given_labels=[f"Given{g}" for g in args.given],
            title="Measured MAE",
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    parameter = _SWEEPABLE[args.parameter]
    values: list = list(args.values)
    if parameter in ("top_m_items", "top_k_users", "n_clusters"):
        values = [int(v) for v in values]
    ratings = default_dataset(seed=args.seed)
    split = make_split(
        ratings, n_train_users=args.train_size, given_n=args.given_n, seed=args.seed
    )
    results = sweep_cfsf_parameter(split, parameter, values, base_config=CFSFConfig())
    rows = [[v, r.mae] for v, r in results]
    print(format_table([args.parameter, "MAE"], rows,
                       title=f"CFSF sensitivity on {split.name}", float_fmt="{:.4f}"))
    print()
    print(ascii_plot([float(v) for v in values],
                     {split.name: [r.mae for _, r in results]},
                     x_label=args.parameter))
    return 0


def _cmd_scalability(args: argparse.Namespace) -> int:
    ratings = default_dataset(seed=args.seed)
    split = make_split(
        ratings, n_train_users=args.train_size, given_n=20, seed=args.seed
    )
    sweep = scalability_sweep(
        split,
        {"CFSF": lambda: CFSF(), "SCBPCC": lambda: SCBPCC()},
        fractions=tuple(args.fractions),
        seed=args.seed,
    )
    rows = []
    for idx, frac in enumerate(args.fractions):
        rows.append(
            [f"{frac:.0%}", sweep["CFSF"][idx][1], sweep["SCBPCC"][idx][1]]
        )
    print(format_table(["testset", "CFSF (s)", "SCBPCC (s)"], rows,
                       title=f"Online (batched) response time, ML_{args.train_size}"))
    return 0


def _cmd_crossval(args: argparse.Namespace) -> int:
    ratings = default_dataset(seed=args.seed)
    rows = []
    for name in args.methods:
        result = cross_validate(
            _TABLE3_METHODS[name],
            ratings,
            n_folds=args.folds,
            given_n=args.given_n,
            seed=args.seed,
        )
        rows.append([name, result.mae_mean, result.mae_std, result.n_folds])
        print(result.summary())
    print()
    print(format_table(["method", "MAE mean", "MAE std", "folds"], rows,
                       title=f"{args.folds}-fold cross-validation, Given{args.given_n}",
                       float_fmt="{:.4f}"))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    ratings = default_dataset(seed=args.seed)
    train = ratings.subset_users(range(args.train_size))
    result = tune_cfsf(
        train,
        {"lam": args.lam, "delta": args.delta, "epsilon": args.epsilon},
        given_n=args.given_n,
        seed=args.seed,
    )
    print(format_table(
        ["rank", "overrides", "validation MAE"],
        [[i + 1, str(t.as_dict()), t.mae] for i, t in enumerate(result.top(5))],
        title=f"Best of {result.n_trials} trials (inner validation split)",
        float_fmt="{:.4f}",
    ))
    best = result.best_config
    print(f"\nbest: lam={best.lam} delta={best.delta} epsilon={best.epsilon} "
          f"(validation MAE {result.best_mae:.4f})")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    ratings = default_dataset(seed=args.seed)
    split = make_split(
        ratings, n_train_users=args.train_size, given_n=args.given_n, seed=args.seed
    )
    model = CFSF().fit(split.train)
    rec = recommend_top_n(model, split.given, args.user, n=args.n)
    print(format_table(["rank", "item", "score"],
                       [[rank + 1, item, score] for rank, (item, score) in enumerate(rec.as_pairs())],
                       title=f"Top-{args.n} for active user {args.user} ({split.name})"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    ratings = default_dataset(seed=args.seed)
    split = make_split(
        ratings, n_train_users=args.train_size, given_n=args.given_n, seed=args.seed
    )
    model = CFSF().fit(split.train)

    snapshot = args.snapshot
    if args.inject == "corrupt-snapshot" and snapshot is None:
        snapshot = os.path.join(tempfile.mkdtemp(prefix="repro-serve-"), "model.npz")
    if snapshot is not None:
        save_model(model, snapshot)
        print(f"snapshot saved to {snapshot}")

    primary = model
    if args.inject == "stage-failure":
        primary = FlakyRecommender(model, fail_times=3)
        print("injected: primary stage fails its first 3 calls")
    elif args.inject == "latency":
        primary = SlowRecommender(model, delay=0.02)
        print("injected: +20ms latency per primary-stage call")

    service = PredictionService(primary, snapshot_path=snapshot)

    if args.inject == "corrupt-snapshot":
        corrupt_snapshot(snapshot)
        ok = service.reload()
        status = "reloaded" if ok else "kept last-known-good model"
        print(
            f"injected: snapshot corrupted on disk -> reload {status} "
            f"({type(service.last_reload_error).__name__})"
        )

    given = split.given
    if args.inject == "poison-given":
        given = poison_given(given, [(0, 0, float("nan")), (1, 1, 99.0)])
        print("injected: NaN and out-of-range ratings in the given matrix")

    users, items, truth = split.targets_arrays()
    n = min(max(args.requests, 1), users.size)
    users, items, truth = users[:n], items[:n], truth[:n]
    deadline = None if args.deadline_ms is None else args.deadline_ms / 1000.0
    result = service.predict_many(given, users, items, deadline=deadline)

    rows = [[name, count] for name, count in result.level_counts().items()]
    print()
    print(format_table(["stage", "requests"], rows,
                       title="Requests served per fallback stage"))
    print(
        f"\nrequests: {len(result)}  degraded: {result.degraded_fraction:.1%}  "
        f"invalid: {int(result.invalid.sum())}  "
        f"deadline deferred: {int(result.deadline_deferred.sum())}  "
        f"elapsed: {result.elapsed * 1000.0:.1f}ms"
    )
    print(f"MAE over served batch: {mae(truth, result.predictions):.4f}")
    states = ", ".join(f"{k}={v}" for k, v in service.breaker_states().items())
    print(f"breakers: {states}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry, render_json, render_prometheus, use_registry

    registry = MetricsRegistry()
    ratings = default_dataset(seed=args.seed)
    split = make_split(
        ratings, n_train_users=args.train_size, given_n=args.given_n, seed=args.seed
    )
    # The offline phase runs under the registry so the fit spans
    # (model.fit -> gis.build / cluster.fit / smooth.apply /
    # icluster.build) land in the snapshot alongside the serving
    # metrics.
    with use_registry(registry):
        model = CFSF().fit(split.train)
    service = PredictionService(model, metrics=registry)

    users, items, _ = split.targets_arrays()
    n = min(max(args.requests, 1), users.size)
    step = max(1, -(-n // max(1, args.batches)))  # ceil division
    for start in range(0, n, step):
        service.predict_many(
            split.given, users[start : start + step], items[start : start + step]
        )

    if args.format == "prometheus":
        print(render_prometheus(registry), end="")
    else:
        print(render_json(registry))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "table2":
        return _cmd_table(args, _TABLE2_METHODS)
    if args.command == "table3":
        return _cmd_table(args, _TABLE3_METHODS)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "scalability":
        return _cmd_scalability(args)
    if args.command == "crossval":
        return _cmd_crossval(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "recommend":
        return _cmd_recommend(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
