"""Shared-memory NumPy arrays for multi-process prediction.

CPython's GIL forces process-level parallelism for CPU-bound NumPy
orchestration code, and processes do not share address spaces — naively
shipping the rating matrix to each worker costs a pickle round-trip per
task.  This module wraps :mod:`multiprocessing.shared_memory` so that
large read-only arrays (the smoothed matrix, the GIS, the given
profiles) are placed in a POSIX shared-memory segment once and mapped
zero-copy by every worker.

The handle (:class:`SharedArraySpec`) is a tiny picklable description
``(segment name, shape, dtype)``; workers call :func:`attach` to get a
NumPy view backed by the same physical pages.

Lifetime rules (the part people get wrong):

* The *creator* owns the segment: call :meth:`SharedArray.close` (or
  use the context manager) to unlink it.  Leaked segments persist until
  reboot on Linux.
* Workers must keep a reference to the attached
  ``SharedMemory`` object alive as long as they use the view;
  :func:`attach` returns both for that reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

__all__ = ["SharedArraySpec", "SharedArray", "attach"]


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable handle to a shared-memory NumPy array."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class SharedArray:
    """A NumPy array living in a shared-memory segment (creator side).

    Examples
    --------
    >>> import numpy as np
    >>> with SharedArray.from_array(np.arange(6.0).reshape(2, 3)) as sa:
    ...     view, handle = attach(sa.spec)
    ...     total = float(view.sum())
    ...     handle.close()
    >>> total
    15.0
    """

    def __init__(self, spec: SharedArraySpec, shm: shared_memory.SharedMemory) -> None:
        self.spec = spec
        self._shm = shm
        self.array: np.ndarray = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf
        )

    @classmethod
    def from_array(cls, source: np.ndarray, *, name: str | None = None) -> "SharedArray":
        """Copy *source* into a fresh shared segment."""
        source = np.ascontiguousarray(source)
        shm = shared_memory.SharedMemory(create=True, size=max(source.nbytes, 1), name=name)
        spec = SharedArraySpec(name=shm.name, shape=source.shape, dtype=source.dtype.str)
        sa = cls(spec, shm)
        sa.array[...] = source
        return sa

    @classmethod
    def zeros(
        cls, shape: tuple[int, ...], dtype: Any = np.float64, *, name: str | None = None
    ) -> "SharedArray":
        """Allocate a zero-filled shared array (e.g. a parallel output)."""
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1), name=name)
        spec = SharedArraySpec(name=shm.name, shape=tuple(shape), dtype=dt.str)
        sa = cls(spec, shm)
        sa.array[...] = 0
        return sa

    def close(self) -> None:
        """Release and unlink the segment (creator responsibility)."""
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked — idempotent close
            pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def attach(spec: SharedArraySpec) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Map an existing segment (worker side).

    Returns ``(view, handle)``; the caller must keep *handle* alive
    while using *view* and ``handle.close()`` when done (close only —
    never unlink from a worker).
    """
    shm = shared_memory.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return view, shm
