"""Parallel substrate: multi-process prediction and offline tiling.

Addresses the paper's Section VI future work ("how CFSF can improve
its scalability in a parallel manner"):

* :class:`~repro.parallel.executor.ParallelPredictor` shards the online
  phase across a process pool (copy-on-write model inheritance, LPT
  load balancing by active user).
* :func:`~repro.parallel.offline.parallel_item_pcc` tiles the GIS
  construction over workers communicating through POSIX shared memory.
* :mod:`~repro.parallel.shared` and :mod:`~repro.parallel.partition`
  are the reusable building blocks.
"""

from repro.parallel.executor import ParallelPredictor, recommended_workers
from repro.parallel.offline import parallel_item_pcc
from repro.parallel.partition import block_partition, cyclic_partition, greedy_partition
from repro.parallel.shared import SharedArray, SharedArraySpec, attach

__all__ = [
    "ParallelPredictor",
    "SharedArray",
    "SharedArraySpec",
    "attach",
    "block_partition",
    "cyclic_partition",
    "greedy_partition",
    "parallel_item_pcc",
    "recommended_workers",
]
