"""Parallel offline phase: tiled item-similarity construction.

The offline phase's dominant cost is the all-pairs item PCC behind the
GIS (three ``Q x Q`` Gram products at MovieLens scale; cubic-ish growth
as catalogues grow).  This module computes the same matrix with
row-block tiles fanned out over a process pool, moving the inputs and
the output through POSIX shared memory (:mod:`repro.parallel.shared`)
so no worker ever pickles a matrix.

The decomposition: with ``Rc`` the mask-centred ratings and ``W`` the
mask (both shared read-only), tile *t* owning item rows ``[j0, j1)``
computes::

    sim[j0:j1, :] = (Rc[:, j0:j1].T @ Rc) / sqrt(den1 * den2)
    den1          = (Rc²)[:, j0:j1].T @ W
    den2          = W[:, j0:j1].T @ (Rc²)

and writes its slice directly into the shared output — no gather step.
Tiles are independent; the parent only synchronises at pool join.

Agreement with the serial kernel is at floating-point rounding level
(tiled BLAS products sum in a different order than the one-shot
product), which the test suite asserts at 1e-12 tolerance.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np

from repro.data.matrix import RatingMatrix
from repro.parallel.partition import block_partition
from repro.parallel.shared import SharedArray, SharedArraySpec, attach
from repro.similarity import Centering
from repro.utils.validation import check_positive_int

__all__ = ["parallel_item_pcc"]


def _tile_worker(
    args: tuple[
        SharedArraySpec, SharedArraySpec, SharedArraySpec, SharedArraySpec, int, int, int
    ]
) -> None:
    """Compute one row-tile of the similarity matrix in shared memory."""
    rc_spec, rc2_spec, w_spec, out_spec, j0, j1, min_overlap = args
    os.environ["OMP_NUM_THREADS"] = "1"
    rc, h1 = attach(rc_spec)
    rc2, h2 = attach(rc2_spec)
    w, h3 = attach(w_spec)
    out, h4 = attach(out_spec)
    try:
        n = w[:, j0:j1].T @ w
        num = rc[:, j0:j1].T @ rc
        den1 = rc2[:, j0:j1].T @ w
        den2 = w[:, j0:j1].T @ rc2
        denom = np.sqrt(den1 * den2)
        with np.errstate(invalid="ignore", divide="ignore"):
            sim = np.where(denom > 0.0, num / np.where(denom > 0.0, denom, 1.0), 0.0)
        sim[n < min_overlap] = 0.0
        np.clip(sim, -1.0, 1.0, out=sim)
        out[j0:j1, :] = sim
    finally:
        for h in (h1, h2, h3, h4):
            h.close()


def parallel_item_pcc(
    train: RatingMatrix,
    *,
    n_workers: int = 2,
    min_overlap: int = 2,
    centering: Centering = "global_mean",
) -> np.ndarray:
    """Item–item PCC computed by a pool of tile workers.

    Produces exactly :func:`repro.similarity.item_pcc` (global-mean
    centering); ``corated_mean`` is not offered here because its
    six-product form gains little from tiling at these sizes.

    Parameters
    ----------
    train:
        Training matrix.
    n_workers:
        Pool size; also the tile count (one tile per worker keeps the
        BLAS calls large).
    min_overlap:
        Minimum co-rating count, as in the serial kernel.
    """
    if centering != "global_mean":
        raise ValueError("parallel_item_pcc supports centering='global_mean' only")
    check_positive_int(n_workers, "n_workers")
    R = np.where(train.mask, train.values, 0.0)
    W = train.mask.astype(np.float64)
    counts = W.sum(axis=0)
    with np.errstate(invalid="ignore"):
        col_means = np.where(counts > 0, R.sum(axis=0) / np.maximum(counts, 1.0), 0.0)
    Rc = (R - col_means[None, :]) * W
    Q = train.n_items

    if n_workers == 1:
        from repro.similarity import item_pcc

        return item_pcc(train.values, train.mask, min_overlap=min_overlap)

    shared_rc = SharedArray.from_array(Rc)
    shared_rc2 = SharedArray.from_array(Rc * Rc)
    shared_w = SharedArray.from_array(W)
    shared_out = SharedArray.zeros((Q, Q))
    try:
        tiles = [p for p in block_partition(Q, n_workers) if p.size]
        tasks = [
            (
                shared_rc.spec,
                shared_rc2.spec,
                shared_w.spec,
                shared_out.spec,
                int(t[0]),
                int(t[-1]) + 1,
                min_overlap,
            )
            for t in tiles
        ]
        ctx = mp.get_context("fork")
        with ctx.Pool(processes=len(tasks)) as pool:
            pool.map(_tile_worker, tasks)
        sim = shared_out.array.copy()
    finally:
        shared_rc.close()
        shared_rc2.close()
        shared_w.close()
        shared_out.close()
    np.fill_diagonal(sim, 1.0)
    return sim
