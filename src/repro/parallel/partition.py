"""Workload partitioning strategies for the parallel executors.

Online CF prediction is embarrassingly parallel across *active users*
(each user's requests share cached state, so a user must not be split
across workers), but users carry unequal work: the number of held-out
items per user varies by an order of magnitude in the GivenN protocol.
Block partitioning of users therefore load-imbalances; the greedy LPT
(longest-processing-time) heuristic on per-user request counts gets
within a few percent of optimal makespan at negligible cost.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["block_partition", "cyclic_partition", "greedy_partition"]


def block_partition(n: int, n_parts: int) -> list[np.ndarray]:
    """Split ``range(n)`` into contiguous blocks of near-equal length.

    The first ``n % n_parts`` blocks get one extra element.  Empty
    blocks are returned when ``n < n_parts`` so callers can zip parts
    with a fixed worker pool.
    """
    check_positive_int(n_parts, "n_parts")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    base, extra = divmod(n, n_parts)
    parts: list[np.ndarray] = []
    start = 0
    for p in range(n_parts):
        size = base + (1 if p < extra else 0)
        parts.append(np.arange(start, start + size, dtype=np.intp))
        start += size
    return parts


def cyclic_partition(n: int, n_parts: int) -> list[np.ndarray]:
    """Deal ``range(n)`` round-robin: part *p* gets ``p, p+P, p+2P, ...``.

    Good when cost correlates with index (e.g. items sorted by
    popularity) — the correlation is spread across parts.
    """
    check_positive_int(n_parts, "n_parts")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return [np.arange(p, n, n_parts, dtype=np.intp) for p in range(n_parts)]


def greedy_partition(costs: np.ndarray, n_parts: int) -> list[np.ndarray]:
    """LPT scheduling: heaviest item first onto the lightest part.

    Parameters
    ----------
    costs:
        Per-element nonnegative work estimates (e.g. held-out items
        per active user).
    n_parts:
        Number of parts (workers).

    Returns
    -------
    list of index arrays, one per part; within a part indices are
    sorted ascending (cache-friendlier gathers).

    Notes
    -----
    LPT's makespan is at most ``4/3 − 1/(3m)`` of optimal — plenty for
    a prediction fan-out where per-task variance dominates anyway.
    """
    check_positive_int(n_parts, "n_parts")
    costs = np.asarray(costs, dtype=np.float64)
    if costs.ndim != 1:
        raise ValueError(f"costs must be 1-D, got ndim={costs.ndim}")
    if (costs < 0).any():
        raise ValueError("costs must be nonnegative")
    order = np.argsort(-costs, kind="stable")
    loads = np.zeros(n_parts)
    buckets: list[list[int]] = [[] for _ in range(n_parts)]
    for idx in order:
        p = int(np.argmin(loads))
        buckets[p].append(int(idx))
        loads[p] += costs[idx]
    return [np.array(sorted(b), dtype=np.intp) for b in buckets]
