"""Multi-process online prediction (Section VI: "in a parallel manner").

The paper names parallel scalability as future work; this module
delivers it for the online phase.  Active users are independent —
their cached state (cluster assignment, top-K selection) is per-user —
so the request stream shards cleanly by user.

Two transport strategies:

* ``fork`` (default on Linux): workers inherit the fitted model's
  arrays copy-on-write.  Zero copies, zero serialisation of the model;
  the only pickled payload per task is an index array.
* ``spawn``-safe explicit sharing is available for the *offline* phase
  via :func:`repro.parallel.offline.parallel_item_pcc`, which moves the
  rating matrix through :mod:`repro.parallel.shared`.

Fault tolerance: the pool is built on
:class:`concurrent.futures.ProcessPoolExecutor`, whose
``BrokenProcessPool`` surfaces abrupt worker deaths (OOM kills,
segfaults, ``os._exit``) instead of hanging the batch the way a raw
``multiprocessing.Pool.map`` does.  On a crash the predictor discards
the broken pool, respawns a fresh one, and retries the whole batch
(prediction is pure, so re-execution is safe); after
``max_pool_retries`` respawns it degrades to inline serial execution
in the parent rather than failing the request.  The
``crash_recoveries`` / ``inline_fallbacks`` counters expose what
happened, and :class:`~repro.serving.errors.WorkerCrashError` is
raised only when even the inline path is impossible (never, in
practice — the model lives in the parent).

Speedups are bounded by BLAS already using multiple threads inside a
single process — set ``OMP_NUM_THREADS=1`` in workers (done by the
initializer) to avoid oversubscription, the standard HPC hygiene.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence

import numpy as np

from repro.baselines.base import Recommender
from repro.data.matrix import RatingMatrix
from repro.obs import NULL_REGISTRY, MetricsRegistry, get_registry
from repro.parallel.partition import greedy_partition
from repro.utils.validation import check_positive_int

__all__ = ["ParallelPredictor", "recommended_workers"]

# Worker-global state, set once per worker by the pool initializer so
# that per-task payloads stay tiny.  (Module-level by necessity:
# multiprocessing cannot pickle closures into initializers.)
_WORKER_MODEL: Recommender | None = None
_WORKER_GIVEN: RatingMatrix | None = None
_WORKER_HOOK: Callable[[np.ndarray, np.ndarray], None] | None = None
# Worker-local registry: tasks record into it and ship drained deltas
# back with their results; a registry object never crosses the process
# boundary, only plain-dict snapshots do.
_WORKER_METRICS = NULL_REGISTRY


def _init_worker(
    model: Recommender,
    given: RatingMatrix,
    hook: Callable[[np.ndarray, np.ndarray], None] | None,
    metrics_enabled: bool = False,
) -> None:
    """Pool initializer: pin state and tame BLAS thread fan-out."""
    global _WORKER_MODEL, _WORKER_GIVEN, _WORKER_HOOK, _WORKER_METRICS
    os.environ["OMP_NUM_THREADS"] = "1"
    os.environ["OPENBLAS_NUM_THREADS"] = "1"
    os.environ["MKL_NUM_THREADS"] = "1"
    _WORKER_MODEL = model
    _WORKER_GIVEN = given
    _WORKER_HOOK = hook
    _WORKER_METRICS = MetricsRegistry() if metrics_enabled else NULL_REGISTRY


def _predict_chunk(
    args: tuple[np.ndarray, np.ndarray, float | None],
) -> tuple[np.ndarray, dict | None]:
    """Worker task: predict one shard of (users, items).

    Returns the predictions plus the drained metric delta (``None``
    when observability is off).  Queue wait is measured on the wall
    clock because the submit stamp comes from the parent process;
    task latency stays on the worker's own ``perf_counter``.
    """
    users, items, submitted_at = args
    assert _WORKER_MODEL is not None and _WORKER_GIVEN is not None
    reg = _WORKER_METRICS
    if reg.enabled and submitted_at is not None:
        reg.histogram("parallel.task.queue_wait").observe(
            max(0.0, time.time() - submitted_at)
        )
    start = time.perf_counter()
    if _WORKER_HOOK is not None:
        _WORKER_HOOK(users, items)
    preds = _WORKER_MODEL.predict_many(_WORKER_GIVEN, users, items)
    if reg.enabled:
        reg.histogram("parallel.task.latency").observe(time.perf_counter() - start)
        reg.counter("parallel.task.requests").inc(int(users.size))
        return preds, reg.drain()
    return preds, None


def recommended_workers(max_workers: int | None = None) -> int:
    """A sane worker count: physical CPUs capped at *max_workers*."""
    n = os.cpu_count() or 1
    if max_workers is not None:
        n = min(n, max_workers)
    return max(1, n)


class ParallelPredictor:
    """Shard ``predict_many`` across a process pool.

    Parameters
    ----------
    model:
        A *fitted* recommender.  With the ``fork`` start method the
        model is inherited copy-on-write; it must not be mutated while
        the predictor is alive.
    n_workers:
        Pool size (default: CPU count).
    start_method:
        ``"fork"`` (default, Linux) or ``"spawn"``.  Spawn pickles the
        model once per worker — correct everywhere but slower to start.
    max_pool_retries:
        How many times a crashed pool is respawned (batch retried)
        before degrading to inline serial prediction in the parent.
    inline_fallback:
        When ``False``, exhausting the respawn budget raises
        :class:`~repro.serving.errors.WorkerCrashError` instead of
        degrading to inline execution (for callers that would rather
        shed the batch than serve it slowly).
    worker_hook:
        Optional picklable callable run inside the worker before each
        task — the seam the fault-injection harness
        (:mod:`repro.serving.faults`) uses to kill workers or induce
        latency deterministically.
    metrics:
        A :class:`~repro.obs.MetricsRegistry` receiving task latency /
        queue-wait histograms (merged back from workers via the delta
        protocol) and pool respawn / inline-fallback counters.
        Defaults to the ambient registry — a no-op unless
        observability was opted into.  Worker deltas from an attempt
        that dies in a crash are discarded wholesale and the retried
        attempt's deltas are merged exactly once, so counts reconcile
        across crashes.

    Examples
    --------
    >>> from repro.core import CFSF
    >>> from repro.data import make_movielens_like, make_split
    >>> split = make_split(make_movielens_like(seed=0).ratings,
    ...                    n_train_users=300, given_n=10)
    >>> model = CFSF().fit(split.train)
    >>> users, items, _ = split.targets_arrays()
    >>> with ParallelPredictor(model, n_workers=2) as pp:
    ...     preds = pp.predict_many(split.given, users[:100], items[:100])
    >>> preds.shape
    (100,)
    """

    def __init__(
        self,
        model: Recommender,
        *,
        n_workers: int | None = None,
        start_method: str = "fork",
        max_pool_retries: int = 2,
        inline_fallback: bool = True,
        worker_hook: Callable[[np.ndarray, np.ndarray], None] | None = None,
        metrics=None,
    ) -> None:
        if start_method not in ("fork", "spawn"):
            raise ValueError(f"start_method must be 'fork' or 'spawn', got {start_method!r}")
        if max_pool_retries < 0:
            raise ValueError(f"max_pool_retries must be >= 0, got {max_pool_retries}")
        self.model = model
        self.n_workers = (
            recommended_workers()
            if n_workers is None
            else check_positive_int(n_workers, "n_workers")
        )
        self.start_method = start_method
        self.max_pool_retries = int(max_pool_retries)
        self.inline_fallback = bool(inline_fallback)
        self.worker_hook = worker_hook
        self.metrics = get_registry() if metrics is None else metrics
        self._pool: ProcessPoolExecutor | None = None
        self._pool_given: RatingMatrix | None = None
        #: Times a broken pool was detected and respawned.
        self.crash_recoveries = 0
        #: Times a batch fell back to inline serial prediction.
        self.inline_fallbacks = 0

    # ------------------------------------------------------------------
    def _ensure_pool(self, given: RatingMatrix) -> ProcessPoolExecutor:
        """(Re)create the pool when the given matrix changes.

        Workers hold the given matrix in their globals, so a new active
        population requires a fresh pool.  The common serving pattern —
        many requests against one population — pays the fork cost once.
        """
        if self._pool is not None and self._pool_given is given:
            return self._pool
        self.close()
        # Build the online kernel (neighbour cache + fusion globals)
        # *before* forking so every worker inherits the warm structures
        # copy-on-write instead of each rebuilding them on first request.
        warm = getattr(self.model, "warm_online", None)
        if callable(warm):
            warm()
        ctx = mp.get_context(self.start_method)
        self._pool = ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(self.model, given, self.worker_hook, self.metrics.enabled),
        )
        self._pool_given = given
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a (possibly broken) pool without waiting on it."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._pool_given = None

    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        """Parallel equivalent of ``model.predict_many`` (bit-identical).

        Requests are sharded by active user with LPT balancing on
        per-user request counts; each worker prediction batch keeps all
        of a user's requests together to preserve the model's per-user
        caching.  Worker crashes are recovered transparently (pool
        respawn, then inline fallback); results are complete either
        way.
        """
        users = np.asarray(users, dtype=np.intp)
        items = np.asarray(items, dtype=np.intp)
        if users.shape != items.shape or users.ndim != 1:
            raise ValueError("users and items must be parallel 1-D arrays")
        if users.size == 0:
            return np.empty(0, dtype=np.float64)
        if self.n_workers == 1:
            return self.model.predict_many(given, users, items)

        unique_users, inverse = np.unique(users, return_inverse=True)
        counts = np.bincount(inverse, minlength=unique_users.size)
        parts = greedy_partition(counts, min(self.n_workers, unique_users.size))

        tasks: list[tuple[np.ndarray, np.ndarray]] = []
        request_slices: list[np.ndarray] = []
        for part in parts:
            if part.size == 0:
                continue
            sel = np.isin(inverse, part)
            idx = np.nonzero(sel)[0]
            tasks.append((users[idx], items[idx]))
            request_slices.append(idx)

        batch_start = time.perf_counter() if self.metrics.enabled else 0.0
        results = self._run_tasks(given, tasks)
        out = np.empty(users.shape, dtype=np.float64)
        for idx, chunk in zip(request_slices, results):
            out[idx] = chunk
        if self.metrics.enabled:
            self.metrics.histogram("parallel.batch.latency").observe(
                time.perf_counter() - batch_start
            )
        return out

    def _run_tasks(
        self,
        given: RatingMatrix,
        tasks: list[tuple[np.ndarray, np.ndarray]],
    ) -> list[np.ndarray]:
        """Run the task list, surviving worker crashes.

        A ``BrokenProcessPool`` means at least one worker died holding
        part of the batch; the safe recovery for a pure function is to
        discard the pool and re-run everything.  Bounded respawns, then
        inline execution — the request is answered regardless.

        Metric deltas piggyback on task results, so an attempt that
        crashes contributes *nothing* (its partial results are thrown
        away un-merged) and the attempt that completes contributes
        exactly one delta per task — crashes cannot lose or
        double-count samples.
        """
        reg = self.metrics
        for _attempt in range(self.max_pool_retries + 1):
            pool = self._ensure_pool(given)
            submitted_at = time.time() if reg.enabled else None
            payload = [(users, items, submitted_at) for users, items in tasks]
            try:
                fetched = list(pool.map(_predict_chunk, payload))
            except BrokenProcessPool:
                self.crash_recoveries += 1
                if reg.enabled:
                    reg.counter("parallel.pool.respawn").inc()
                self._discard_pool()
                continue
            for _preds, delta in fetched:
                if delta is not None:
                    reg.merge(delta)
            return [preds for preds, _delta in fetched]
        if not self.inline_fallback:
            from repro.serving.errors import WorkerCrashError

            raise WorkerCrashError(
                f"pool workers kept dying ({self.max_pool_retries + 1} attempts) "
                "and inline fallback is disabled"
            )
        self.inline_fallbacks += 1
        if reg.enabled:
            reg.counter("parallel.inline.fallback").inc()
        results = []
        for users, items in tasks:
            start = time.perf_counter()
            results.append(self.model.predict_many(given, users, items))
            if reg.enabled:
                reg.histogram("parallel.task.latency").observe(
                    time.perf_counter() - start
                )
                reg.counter("parallel.task.requests").inc(int(users.size))
        return results

    def stats(self) -> dict[str, int]:
        """Crash/fallback counters for health reporting."""
        return {
            "crash_recoveries": self.crash_recoveries,
            "inline_fallbacks": self.inline_fallbacks,
            "pool_alive": int(self._pool is not None),
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_given = None

    def __enter__(self) -> "ParallelPredictor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
