"""Multi-process online prediction (Section VI: "in a parallel manner").

The paper names parallel scalability as future work; this module
delivers it for the online phase.  Active users are independent —
their cached state (cluster assignment, top-K selection) is per-user —
so the request stream shards cleanly by user.

Two transport strategies:

* ``fork`` (default on Linux): workers inherit the fitted model's
  arrays copy-on-write.  Zero copies, zero serialisation of the model;
  the only pickled payload per task is an index array.
* ``spawn``-safe explicit sharing is available for the *offline* phase
  via :func:`repro.parallel.offline.parallel_item_pcc`, which moves the
  rating matrix through :mod:`repro.parallel.shared`.

Speedups are bounded by BLAS already using multiple threads inside a
single process — set ``OMP_NUM_THREADS=1`` in workers (done by the
initializer) to avoid oversubscription, the standard HPC hygiene.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Sequence

import numpy as np

from repro.baselines.base import Recommender
from repro.data.matrix import RatingMatrix
from repro.parallel.partition import greedy_partition
from repro.utils.validation import check_positive_int

__all__ = ["ParallelPredictor", "recommended_workers"]

# Worker-global state, set once per worker by the pool initializer so
# that per-task payloads stay tiny.  (Module-level by necessity:
# multiprocessing cannot pickle closures into initializers.)
_WORKER_MODEL: Recommender | None = None
_WORKER_GIVEN: RatingMatrix | None = None


def _init_worker(model: Recommender, given: RatingMatrix) -> None:
    """Pool initializer: pin state and tame BLAS thread fan-out."""
    global _WORKER_MODEL, _WORKER_GIVEN
    os.environ["OMP_NUM_THREADS"] = "1"
    os.environ["OPENBLAS_NUM_THREADS"] = "1"
    os.environ["MKL_NUM_THREADS"] = "1"
    _WORKER_MODEL = model
    _WORKER_GIVEN = given


def _predict_chunk(args: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
    """Worker task: predict one shard of (users, items)."""
    users, items = args
    assert _WORKER_MODEL is not None and _WORKER_GIVEN is not None
    return _WORKER_MODEL.predict_many(_WORKER_GIVEN, users, items)


def recommended_workers(max_workers: int | None = None) -> int:
    """A sane worker count: physical CPUs capped at *max_workers*."""
    n = os.cpu_count() or 1
    if max_workers is not None:
        n = min(n, max_workers)
    return max(1, n)


class ParallelPredictor:
    """Shard ``predict_many`` across a process pool.

    Parameters
    ----------
    model:
        A *fitted* recommender.  With the ``fork`` start method the
        model is inherited copy-on-write; it must not be mutated while
        the predictor is alive.
    n_workers:
        Pool size (default: CPU count).
    start_method:
        ``"fork"`` (default, Linux) or ``"spawn"``.  Spawn pickles the
        model once per worker — correct everywhere but slower to start.

    Examples
    --------
    >>> from repro.core import CFSF
    >>> from repro.data import make_movielens_like, make_split
    >>> split = make_split(make_movielens_like(seed=0).ratings,
    ...                    n_train_users=300, given_n=10)
    >>> model = CFSF().fit(split.train)
    >>> users, items, _ = split.targets_arrays()
    >>> with ParallelPredictor(model, n_workers=2) as pp:
    ...     preds = pp.predict_many(split.given, users[:100], items[:100])
    >>> preds.shape
    (100,)
    """

    def __init__(
        self,
        model: Recommender,
        *,
        n_workers: int | None = None,
        start_method: str = "fork",
    ) -> None:
        if start_method not in ("fork", "spawn"):
            raise ValueError(f"start_method must be 'fork' or 'spawn', got {start_method!r}")
        self.model = model
        self.n_workers = (
            recommended_workers() if n_workers is None else check_positive_int(n_workers, "n_workers")
        )
        self.start_method = start_method
        self._pool: mp.pool.Pool | None = None
        self._pool_given: RatingMatrix | None = None

    # ------------------------------------------------------------------
    def _ensure_pool(self, given: RatingMatrix) -> mp.pool.Pool:
        """(Re)create the pool when the given matrix changes.

        Workers hold the given matrix in their globals, so a new active
        population requires a fresh pool.  The common serving pattern —
        many requests against one population — pays the fork cost once.
        """
        if self._pool is not None and self._pool_given is given:
            return self._pool
        self.close()
        ctx = mp.get_context(self.start_method)
        self._pool = ctx.Pool(
            processes=self.n_workers,
            initializer=_init_worker,
            initargs=(self.model, given),
        )
        self._pool_given = given
        return self._pool

    def predict_many(
        self,
        given: RatingMatrix,
        users: np.ndarray | Sequence[int],
        items: np.ndarray | Sequence[int],
    ) -> np.ndarray:
        """Parallel equivalent of ``model.predict_many`` (bit-identical).

        Requests are sharded by active user with LPT balancing on
        per-user request counts; each worker prediction batch keeps all
        of a user's requests together to preserve the model's per-user
        caching.
        """
        users = np.asarray(users, dtype=np.intp)
        items = np.asarray(items, dtype=np.intp)
        if users.shape != items.shape or users.ndim != 1:
            raise ValueError("users and items must be parallel 1-D arrays")
        if users.size == 0:
            return np.empty(0, dtype=np.float64)
        if self.n_workers == 1:
            return self.model.predict_many(given, users, items)

        unique_users, inverse = np.unique(users, return_inverse=True)
        counts = np.bincount(inverse, minlength=unique_users.size)
        parts = greedy_partition(counts, min(self.n_workers, unique_users.size))

        tasks: list[tuple[np.ndarray, np.ndarray]] = []
        request_slices: list[np.ndarray] = []
        for part in parts:
            if part.size == 0:
                continue
            sel = np.isin(inverse, part)
            idx = np.nonzero(sel)[0]
            tasks.append((users[idx], items[idx]))
            request_slices.append(idx)

        pool = self._ensure_pool(given)
        results = pool.map(_predict_chunk, tasks)
        out = np.empty(users.shape, dtype=np.float64)
        for idx, chunk in zip(request_slices, results):
            out[idx] = chunk
        return out

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pool_given = None

    def __enter__(self) -> "ParallelPredictor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
