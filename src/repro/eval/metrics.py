"""Evaluation metrics.

The paper evaluates exclusively with MAE (its Eq. 15)::

    MAE = Σ_{(u,i) ∈ T} |r(u,i) − r̂(u,i)| / |T|

computed over every held-out rating of the test set.  RMSE and
coverage are provided as supplementary diagnostics (standard in the CF
literature the paper cites: Herlocker et al. 2004), plus ranking
metrics (precision/recall@N, NDCG@N) for the examples that frame CFSF
as a top-N recommender.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int, check_same_shape

__all__ = ["mae", "rmse", "coverage", "precision_recall_at_n", "ndcg_at_n"]


def mae(truth: np.ndarray, predictions: np.ndarray) -> float:
    """Mean Absolute Error (the paper's Eq. 15).

    NaN predictions are rejected rather than skipped: silently dropping
    unpredictable targets shrinks ``|T|`` and flatters the metric, a
    classic CF-evaluation bug.

    Examples
    --------
    >>> mae(np.array([4.0, 2.0]), np.array([3.0, 2.0]))
    0.5
    """
    truth = np.asarray(truth, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    check_same_shape(truth, predictions, ("truth", "predictions"))
    if truth.size == 0:
        raise ValueError("cannot compute MAE of an empty target set")
    if not np.isfinite(predictions).all():
        raise ValueError("predictions contain non-finite values")
    return float(np.abs(truth - predictions).mean())


def rmse(truth: np.ndarray, predictions: np.ndarray) -> float:
    """Root Mean Squared Error."""
    truth = np.asarray(truth, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    check_same_shape(truth, predictions, ("truth", "predictions"))
    if truth.size == 0:
        raise ValueError("cannot compute RMSE of an empty target set")
    if not np.isfinite(predictions).all():
        raise ValueError("predictions contain non-finite values")
    return float(np.sqrt(((truth - predictions) ** 2).mean()))


def coverage(predictions: np.ndarray, fallback_mask: np.ndarray) -> float:
    """Fraction of targets answered without resorting to the fallback.

    ``fallback_mask`` flags predictions that came from the
    zero-information fallback rather than the model proper; the paper's
    EMDP critique ("inappropriate thresholds may lead to few results")
    is about exactly this quantity.
    """
    predictions = np.asarray(predictions)
    fallback_mask = np.asarray(fallback_mask, dtype=bool)
    check_same_shape(predictions, fallback_mask, ("predictions", "fallback_mask"))
    if predictions.size == 0:
        raise ValueError("cannot compute coverage of an empty prediction set")
    return float(1.0 - fallback_mask.mean())


def precision_recall_at_n(
    truth_items: np.ndarray,
    recommended_items: np.ndarray,
    n: int,
) -> tuple[float, float]:
    """Precision@N and Recall@N for one user.

    Parameters
    ----------
    truth_items:
        Items the user actually liked (ground-truth relevant set).
    recommended_items:
        Ranked recommendation list (best first).
    n:
        Cutoff.
    """
    check_positive_int(n, "n")
    truth_set = set(np.asarray(truth_items).ravel().tolist())
    rec = list(np.asarray(recommended_items).ravel().tolist())[:n]
    if not rec:
        return 0.0, 0.0
    hits = sum(1 for item in rec if item in truth_set)
    precision = hits / len(rec)
    recall = hits / len(truth_set) if truth_set else 0.0
    return precision, recall


def ndcg_at_n(
    truth_items: np.ndarray,
    recommended_items: np.ndarray,
    n: int,
) -> float:
    """Binary-relevance NDCG@N for one user."""
    check_positive_int(n, "n")
    truth_set = set(np.asarray(truth_items).ravel().tolist())
    rec = list(np.asarray(recommended_items).ravel().tolist())[:n]
    if not truth_set or not rec:
        return 0.0
    dcg = sum(1.0 / np.log2(rank + 2.0) for rank, item in enumerate(rec) if item in truth_set)
    ideal_hits = min(len(truth_set), len(rec))
    idcg = sum(1.0 / np.log2(rank + 2.0) for rank in range(ideal_hits))
    return float(dcg / idcg) if idcg > 0 else 0.0
