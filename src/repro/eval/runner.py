"""Experiment runner: the paper's evaluation grid as reusable driver code.

Each benchmark in ``benchmarks/`` is a thin wrapper around a function
here, so the same experiment can also be run from the examples or a
REPL.  The runner owns:

* the Table II/III grid (all methods x ML_100/200/300 x Given5/10/20),
* one-parameter sweeps over CFSF (Figs. 2–4 and 6–8), refitting only
  when the swept parameter touches the offline phase,
* the Fig. 5 scalability sweep over test-set fractions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.baselines.base import Recommender
from repro.core.config import CFSFConfig
from repro.core.model import CFSF
from repro.data.matrix import RatingMatrix
from repro.data.splits import GivenNSplit, paper_grid, subsample_heldout
from repro.eval.protocol import EvaluationResult, evaluate, evaluate_fitted

__all__ = [
    "GridResult",
    "run_grid",
    "sweep_cfsf_parameter",
    "scalability_sweep",
    "OFFLINE_PARAMETERS",
]

#: CFSF config fields that require a refit when swept.
OFFLINE_PARAMETERS = frozenset(
    {
        "n_clusters",
        "gis_threshold",
        "centering",
        "min_overlap",
        "kmeans_max_iter",
        "kmeans_seed",
        "smoothing_shrinkage",
    }
)


@dataclass(frozen=True)
class GridResult:
    """All evaluation results of a Table II/III style run."""

    results: tuple[EvaluationResult, ...]

    def mae_map(self) -> dict[tuple[str, str], float]:
        """``{(split_name, method): mae}`` for the report formatter."""
        return {(r.split_name, r.model_name): r.mae for r in self.results}

    def by_method(self, method: str) -> list[EvaluationResult]:
        """All results of one method, in run order."""
        return [r for r in self.results if r.model_name == method]

    def best_method_per_split(self) -> dict[str, str]:
        """``{split_name: winning method}`` by MAE."""
        best: dict[str, EvaluationResult] = {}
        for r in self.results:
            cur = best.get(r.split_name)
            if cur is None or r.mae < cur.mae:
                best[r.split_name] = r
        return {k: v.model_name for k, v in best.items()}


def run_grid(
    full: RatingMatrix,
    model_factories: Mapping[str, Callable[[], Recommender]],
    *,
    training_sizes: Sequence[int] = (100, 200, 300),
    given_sizes: Sequence[int] = (5, 10, 20),
    n_test_users: int = 200,
    seed: int = 0,
    progress: Callable[[str], None] | None = None,
) -> GridResult:
    """Evaluate every method on every (training size, GivenN) split.

    Parameters
    ----------
    full:
        The 500-user evaluation matrix.
    model_factories:
        ``{name: zero-arg factory}`` — a *fresh* model is built per
        split so no state leaks across cells.
    progress:
        Optional callback receiving one line per completed cell.
    """
    grid = paper_grid(
        full,
        training_sizes=training_sizes,
        given_sizes=given_sizes,
        n_test_users=n_test_users,
        seed=seed,
    )
    results: list[EvaluationResult] = []
    for (n_train, given_n), split in sorted(grid.items(), key=lambda kv: (-kv[0][0], kv[0][1])):
        for name, factory in model_factories.items():
            raw = evaluate(factory(), split)
            # Label with the caller's key, not the model's display name,
            # so two configurations of one class stay distinguishable.
            res = EvaluationResult(
                model_name=name,
                split_name=raw.split_name,
                mae=raw.mae,
                rmse=raw.rmse,
                n_targets=raw.n_targets,
                fit_seconds=raw.fit_seconds,
                predict_seconds=raw.predict_seconds,
            )
            results.append(res)
            if progress is not None:
                progress(
                    f"{split.name:16s} {name:8s} MAE={res.mae:.4f} "
                    f"(fit {res.fit_seconds:.2f}s, predict {res.predict_seconds:.2f}s)"
                )
    return GridResult(results=tuple(results))


def sweep_cfsf_parameter(
    split: GivenNSplit,
    parameter: str,
    values: Iterable,
    *,
    base_config: CFSFConfig | None = None,
) -> list[tuple[object, EvaluationResult]]:
    """Evaluate CFSF across values of one config field (Figs. 2–4, 6–8).

    Online-only parameters (λ, δ, ε, M, K, pools) reuse a single fitted
    model; offline parameters (C, thresholds, centering) refit per
    value.  The returned list preserves the input value order.
    """
    base = base_config or CFSFConfig()
    offline = parameter in OFFLINE_PARAMETERS
    out: list[tuple[object, EvaluationResult]] = []
    shared_model: CFSF | None = None
    if not offline:
        shared_model = CFSF(base)
        shared_model.fit(split.train)
    for value in values:
        cfg = base.with_(**{parameter: value})
        if offline:
            model = CFSF(cfg)
            out.append((value, evaluate(model, split).light()))
        else:
            assert shared_model is not None
            shared_model.config = cfg
            shared_model._cache.clear()
            out.append((value, evaluate_fitted(shared_model, split).light()))
    return out


def scalability_sweep(
    split: GivenNSplit,
    model_factories: Mapping[str, Callable[[], Recommender]],
    *,
    fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    seed: int = 0,
    repeats: int = 1,
) -> dict[str, list[tuple[float, float]]]:
    """Fig. 5: online response time vs test-set fraction.

    Each model is fitted **once** on the split's training matrix; then
    the held-out workload is subsampled at each fraction and only the
    online phase is timed (best of *repeats*).

    Returns ``{method: [(fraction, seconds), ...]}``.
    """
    out: dict[str, list[tuple[float, float]]] = {}
    for name, factory in model_factories.items():
        model = factory()
        model.fit(split.train)
        series: list[tuple[float, float]] = []
        for frac in fractions:
            sub = subsample_heldout(split, frac, seed=seed)
            best = np.inf
            for _ in range(max(1, repeats)):
                res = evaluate_fitted(model, sub)
                best = min(best, res.predict_seconds)
            series.append((frac, float(best)))
        out[name] = series
    return out
