"""The GivenN evaluation protocol driver.

Couples a :class:`~repro.data.splits.GivenNSplit` with any
:class:`~repro.baselines.base.Recommender`: fit on the training matrix,
predict every held-out rating from the active users' given profiles,
and score with the paper's MAE — separating offline (fit) from online
(predict) wall-clock, because Fig. 5 is about the online part only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import Recommender
from repro.data.splits import GivenNSplit
from repro.eval.metrics import mae, rmse

__all__ = ["EvaluationResult", "evaluate", "evaluate_fitted"]


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of one (model, split) evaluation run.

    Attributes
    ----------
    model_name, split_name:
        Labels for reporting.
    mae, rmse:
        Accuracy over all held-out ratings.
    n_targets:
        ``|T|`` of Eq. 15.
    fit_seconds:
        Offline-phase wall-clock (0.0 when a prefitted model was
        supplied).
    predict_seconds:
        Online-phase wall-clock — the quantity Fig. 5 plots.
    predictions:
        The raw predictions, aligned with ``split.targets_arrays()``
        (kept for significance tests and error analyses; drop with
        ``light()`` when accumulating many results).
    """

    model_name: str
    split_name: str
    mae: float
    rmse: float
    n_targets: int
    fit_seconds: float
    predict_seconds: float
    predictions: np.ndarray | None = field(repr=False, default=None)

    def light(self) -> "EvaluationResult":
        """A copy without the prediction payload."""
        return EvaluationResult(
            model_name=self.model_name,
            split_name=self.split_name,
            mae=self.mae,
            rmse=self.rmse,
            n_targets=self.n_targets,
            fit_seconds=self.fit_seconds,
            predict_seconds=self.predict_seconds,
        )

    @property
    def throughput(self) -> float:
        """Predictions per second of online time."""
        return self.n_targets / self.predict_seconds if self.predict_seconds > 0 else 0.0


def evaluate(
    model: Recommender,
    split: GivenNSplit,
    *,
    keep_predictions: bool = False,
) -> EvaluationResult:
    """Fit *model* on the split's training matrix and score it."""
    start = time.perf_counter()
    model.fit(split.train)
    fit_seconds = time.perf_counter() - start
    result = evaluate_fitted(model, split, keep_predictions=keep_predictions)
    return EvaluationResult(
        model_name=result.model_name,
        split_name=result.split_name,
        mae=result.mae,
        rmse=result.rmse,
        n_targets=result.n_targets,
        fit_seconds=fit_seconds,
        predict_seconds=result.predict_seconds,
        predictions=result.predictions,
    )


def evaluate_fitted(
    model: Recommender,
    split: GivenNSplit,
    *,
    keep_predictions: bool = False,
) -> EvaluationResult:
    """Score an already-fitted model (online phase only).

    Used by parameter sweeps that vary online-only parameters without
    refitting, and by the Fig. 5 timing runs where the offline phase
    must not contaminate the measurement.
    """
    users, items, truth = split.targets_arrays()
    start = time.perf_counter()
    predictions = model.predict_many(split.given, users, items)
    predict_seconds = time.perf_counter() - start
    return EvaluationResult(
        model_name=model.name,
        split_name=split.name,
        mae=mae(truth, predictions),
        rmse=rmse(truth, predictions),
        n_targets=truth.size,
        fit_seconds=0.0,
        predict_seconds=predict_seconds,
        predictions=predictions if keep_predictions else None,
    )
