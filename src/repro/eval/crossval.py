"""User-level k-fold cross-validation.

The paper's fixed protocol (train prefix + last-200 test users) gives
one number per cell; k-fold over *users* gives the same number with a
variance estimate, which EXPERIMENTS.md's significance discussion
needs.  Folding is over users (not ratings) to match the paper's
active-user setting: a fold's users are entirely unseen at training
time and are served from GivenN profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.baselines.base import Recommender
from repro.data.matrix import RatingMatrix
from repro.data.splits import GivenNSplit, make_split
from repro.eval.protocol import EvaluationResult, evaluate
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["CrossValResult", "user_kfold_splits", "cross_validate"]


@dataclass(frozen=True)
class CrossValResult:
    """Per-fold and aggregate MAE/RMSE for one recommender."""

    model_name: str
    fold_results: tuple[EvaluationResult, ...] = field(repr=False)

    @property
    def n_folds(self) -> int:
        """Number of folds evaluated."""
        return len(self.fold_results)

    @property
    def mae_mean(self) -> float:
        """Mean MAE across folds."""
        return float(np.mean([r.mae for r in self.fold_results]))

    @property
    def mae_std(self) -> float:
        """Sample standard deviation of the fold MAEs."""
        values = [r.mae for r in self.fold_results]
        return float(np.std(values, ddof=1)) if len(values) > 1 else 0.0

    def summary(self) -> str:
        """``"MAE 0.748 ± 0.006 over 5 folds"``-style line."""
        return (
            f"{self.model_name}: MAE {self.mae_mean:.4f} ± {self.mae_std:.4f} "
            f"over {self.n_folds} folds"
        )


def user_kfold_splits(
    full: RatingMatrix,
    *,
    n_folds: int = 5,
    given_n: int = 10,
    seed: int | np.random.Generator | None = 0,
) -> list[GivenNSplit]:
    """Partition users into *n_folds* test groups and build GivenN splits.

    Each fold's split trains on every user *outside* the fold and
    serves the fold's users as actives.  User order is shuffled once
    (seeded) before folding so arbitrary input orderings don't leak
    structure into folds.
    """
    check_positive_int(n_folds, "n_folds", minimum=2)
    if full.n_users < 2 * n_folds:
        raise ValueError(
            f"need >= {2 * n_folds} users for {n_folds} folds, have {full.n_users}"
        )
    rng = as_generator(seed)
    order = rng.permutation(full.n_users)
    fold_assign = np.array_split(order, n_folds)
    splits: list[GivenNSplit] = []
    for fold_idx, test_users in enumerate(fold_assign):
        train_users = np.setdiff1d(order, test_users)
        # Reorder so the test block is the suffix (make_split's layout).
        reordered = full.subset_users(np.concatenate([train_users, test_users]))
        split = make_split(
            reordered,
            n_train_users=len(train_users),
            given_n=given_n,
            n_test_users=len(test_users),
            seed=rng,
            name=f"fold{fold_idx}/Given{given_n}",
        )
        splits.append(split)
    return splits


def cross_validate(
    model_factory: Callable[[], Recommender],
    full: RatingMatrix,
    *,
    n_folds: int = 5,
    given_n: int = 10,
    seed: int | np.random.Generator | None = 0,
) -> CrossValResult:
    """k-fold cross-validate a recommender (fresh model per fold)."""
    splits = user_kfold_splits(full, n_folds=n_folds, given_n=given_n, seed=seed)
    results = tuple(evaluate(model_factory(), split).light() for split in splits)
    return CrossValResult(model_name=results[0].model_name, fold_results=results)
