"""Hyper-parameter search for CFSF.

The paper states tuned values for MovieLens (Section V-C: C=30, λ=0.8,
δ=0.1, K=25, M=95, w=0.35) without describing the search; any new
deployment has to redo it.  This module provides that machinery:

* an **inner validation split** carved from the training users only
  (the held-out test users stay untouched — tuning on the test set is
  the classic CF-evaluation sin),
* **grid** and seeded **random** search over any subset of
  :class:`~repro.core.config.CFSFConfig` fields,
* **fit sharing**: trials that agree on every offline field (cluster
  count, GIS threshold, centering, ...) reuse one fitted model and
  only re-run the online phase, which makes λ/δ/ε/M/K sweeps hundreds
  of times cheaper than naive refitting.

``examples/parameter_sweep.py`` covers one-dimensional sensitivity;
this module is for the joint search.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.config import CFSFConfig
from repro.core.model import CFSF
from repro.data.matrix import RatingMatrix
from repro.data.splits import make_split
from repro.eval.protocol import evaluate_fitted
from repro.eval.runner import OFFLINE_PARAMETERS
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["Trial", "TuningResult", "tune_cfsf"]


@dataclass(frozen=True)
class Trial:
    """One evaluated configuration."""

    overrides: tuple[tuple[str, object], ...]
    mae: float

    def as_dict(self) -> dict[str, object]:
        """The overrides as a plain dict."""
        return dict(self.overrides)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a search.

    Attributes
    ----------
    best_config:
        The full winning configuration (base + best overrides).
    best_mae:
        Its validation MAE.
    trials:
        Every evaluated trial, in evaluation order.
    """

    best_config: CFSFConfig
    best_mae: float
    trials: tuple[Trial, ...] = field(repr=False)

    @property
    def n_trials(self) -> int:
        """Number of evaluated configurations."""
        return len(self.trials)

    def top(self, n: int = 5) -> list[Trial]:
        """The *n* best trials, ascending MAE."""
        return sorted(self.trials, key=lambda t: t.mae)[:n]


def _combinations(
    param_grid: Mapping[str, Sequence],
    *,
    search: str,
    n_random: int,
    seed,
) -> list[dict[str, object]]:
    names = list(param_grid)
    if search == "grid":
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(param_grid[n] for n in names))
        ]
    if search == "random":
        rng = as_generator(seed)
        combos = []
        for _ in range(n_random):
            combos.append({n: param_grid[n][int(rng.integers(len(param_grid[n])))] for n in names})
        return combos
    raise ValueError(f"search must be 'grid' or 'random', got {search!r}")


def tune_cfsf(
    train: RatingMatrix,
    param_grid: Mapping[str, Sequence],
    *,
    base_config: CFSFConfig | None = None,
    n_valid_users: int = 50,
    given_n: int = 10,
    search: str = "grid",
    n_random: int = 30,
    seed: int | np.random.Generator | None = 0,
) -> TuningResult:
    """Search *param_grid* for the lowest validation MAE.

    Parameters
    ----------
    train:
        The training matrix.  Its last *n_valid_users* rows become the
        inner validation actives; the rest is the inner training set.
    param_grid:
        ``{config_field: candidate values}``.  Fields must exist on
        :class:`~repro.core.config.CFSFConfig`.
    search:
        ``"grid"`` (every combination) or ``"random"`` (*n_random*
        seeded draws from the grid).
    seed:
        Seeds both the inner split's GivenN draw and random search.

    Examples
    --------
    >>> from repro.data import make_movielens_like, SyntheticConfig
    >>> rm = make_movielens_like(SyntheticConfig(
    ...     n_users=80, n_items=60, mean_ratings_per_user=20,
    ...     min_ratings_per_user=12), seed=0).ratings
    >>> result = tune_cfsf(rm, {"lam": [0.2, 0.8]}, n_valid_users=20,
    ...                    given_n=5,
    ...                    base_config=CFSFConfig(n_clusters=4,
    ...                                           top_m_items=10,
    ...                                           top_k_users=5))
    >>> result.n_trials
    2
    """
    base = base_config or CFSFConfig()
    check_positive_int(n_valid_users, "n_valid_users")
    if n_valid_users >= train.n_users:
        raise ValueError(
            f"n_valid_users ({n_valid_users}) must be < n_users ({train.n_users})"
        )
    unknown = [k for k in param_grid if not hasattr(base, k)]
    if unknown:
        raise ValueError(f"unknown CFSFConfig fields: {unknown}")
    if any(len(v) == 0 for v in param_grid.values()):
        raise ValueError("every parameter must offer at least one value")

    rng = as_generator(seed)
    inner = make_split(
        train,
        n_train_users=train.n_users - n_valid_users,
        given_n=given_n,
        n_test_users=n_valid_users,
        seed=rng,
    )

    combos = _combinations(param_grid, search=search, n_random=n_random, seed=rng)
    # Group by the offline-relevant fields so one fit serves a group.
    offline_fields = sorted(OFFLINE_PARAMETERS)

    def offline_key(overrides: dict[str, object]) -> tuple:
        merged = base.with_(**overrides)
        return tuple(getattr(merged, f) for f in offline_fields)

    trials: list[Trial] = []
    fitted: dict[tuple, CFSF] = {}
    for overrides in combos:
        key = offline_key(overrides)
        cfg = base.with_(**overrides)
        model = fitted.get(key)
        if model is None:
            model = CFSF(cfg)
            model.fit(inner.train)
            fitted[key] = model
        model.config = cfg
        model._cache.clear()
        res = evaluate_fitted(model, inner)
        trials.append(Trial(overrides=tuple(sorted(overrides.items())), mae=res.mae))

    best = min(trials, key=lambda t: t.mae)
    return TuningResult(
        best_config=base.with_(**dict(best.overrides)),
        best_mae=best.mae,
        trials=tuple(trials),
    )
