"""Statistical significance of MAE differences between recommenders.

The paper reports point MAE values; a reproduction should also say
whether "CFSF beats X by 0.02" is signal or noise.  Given two
recommenders evaluated on the *same* held-out targets, the per-target
absolute errors form a paired sample, so the standard machinery
applies:

* :func:`paired_comparison` — mean difference, a paired t statistic,
  the Wilcoxon signed-rank test (scipy), and a sign-test summary.
* :func:`bootstrap_mae_ci` — a percentile bootstrap confidence
  interval for one recommender's MAE.

These run inside the Table III benchmark so every "who wins" claim in
EXPERIMENTS.md carries a p-value.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int, check_same_shape

__all__ = ["PairedResult", "paired_comparison", "bootstrap_mae_ci"]


@dataclass(frozen=True)
class PairedResult:
    """Outcome of a paired error comparison (A vs B).

    ``mean_diff < 0`` means A has the lower (better) absolute error.
    """

    mean_diff: float
    t_statistic: float
    t_pvalue: float
    wilcoxon_statistic: float
    wilcoxon_pvalue: float
    n_a_better: int
    n_b_better: int
    n_ties: int

    @property
    def a_wins(self) -> bool:
        """A strictly better on average."""
        return self.mean_diff < 0.0

    def significant(self, alpha: float = 0.05) -> bool:
        """Wilcoxon-significant difference at level *alpha*."""
        return self.wilcoxon_pvalue < alpha


def paired_comparison(
    truth: np.ndarray,
    predictions_a: np.ndarray,
    predictions_b: np.ndarray,
) -> PairedResult:
    """Compare two prediction vectors on the same targets.

    Parameters
    ----------
    truth:
        Held-out true ratings.
    predictions_a, predictions_b:
        The two recommenders' predictions, aligned with *truth*.
    """
    truth = np.asarray(truth, dtype=np.float64)
    a = np.asarray(predictions_a, dtype=np.float64)
    b = np.asarray(predictions_b, dtype=np.float64)
    check_same_shape(truth, a, ("truth", "predictions_a"))
    check_same_shape(truth, b, ("truth", "predictions_b"))
    if truth.size < 2:
        raise ValueError("paired comparison needs at least 2 targets")

    err_a = np.abs(truth - a)
    err_b = np.abs(truth - b)
    diff = err_a - err_b

    t_stat, t_p = stats.ttest_rel(err_a, err_b)
    nonzero = diff[diff != 0.0]
    if nonzero.size:
        w_stat, w_p = stats.wilcoxon(nonzero)
    else:  # identical errors everywhere
        w_stat, w_p = 0.0, 1.0
    return PairedResult(
        mean_diff=float(diff.mean()),
        t_statistic=float(t_stat),
        t_pvalue=float(t_p),
        wilcoxon_statistic=float(w_stat),
        wilcoxon_pvalue=float(w_p),
        n_a_better=int((diff < 0).sum()),
        n_b_better=int((diff > 0).sum()),
        n_ties=int((diff == 0).sum()),
    )


def bootstrap_mae_ci(
    truth: np.ndarray,
    predictions: np.ndarray,
    *,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int | np.random.Generator | None = 0,
) -> tuple[float, float, float]:
    """Percentile-bootstrap CI for the MAE: ``(mae, low, high)``."""
    check_positive_int(n_resamples, "n_resamples")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    truth = np.asarray(truth, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    check_same_shape(truth, predictions, ("truth", "predictions"))
    errors = np.abs(truth - predictions)
    if errors.size == 0:
        raise ValueError("cannot bootstrap an empty target set")
    rng = as_generator(seed)
    idx = rng.integers(0, errors.size, size=(n_resamples, errors.size))
    samples = errors[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(samples, [alpha, 1.0 - alpha])
    return float(errors.mean()), float(low), float(high)
