"""The paper's published numbers, transcribed for side-by-side reports.

EXPERIMENTS.md and the benchmark harness print measured values next to
these.  Absolute agreement is not expected (the substrate is a
calibrated generator, not the authors' MovieLens extract); orderings
and trend shapes are the reproduction targets.
"""

from __future__ import annotations

__all__ = [
    "TABLE2_MAE",
    "TABLE3_MAE",
    "CFSF_DEFAULTS",
    "FIG5_MAX_RESPONSE_SECONDS",
]

#: Table II — MAE of CFSF vs the traditional memory-based approaches.
#: Keyed by (training_set, method, given_label).
TABLE2_MAE: dict[tuple[str, str, str], float] = {
    ("ML_300", "CFSF", "Given5"): 0.743,
    ("ML_300", "CFSF", "Given10"): 0.721,
    ("ML_300", "CFSF", "Given20"): 0.705,
    ("ML_300", "SUR", "Given5"): 0.838,
    ("ML_300", "SUR", "Given10"): 0.814,
    ("ML_300", "SUR", "Given20"): 0.802,
    ("ML_300", "SIR", "Given5"): 0.870,
    ("ML_300", "SIR", "Given10"): 0.838,
    ("ML_300", "SIR", "Given20"): 0.813,
    ("ML_200", "CFSF", "Given5"): 0.769,
    ("ML_200", "CFSF", "Given10"): 0.734,
    ("ML_200", "CFSF", "Given20"): 0.713,
    ("ML_200", "SUR", "Given5"): 0.843,
    ("ML_200", "SUR", "Given10"): 0.822,
    ("ML_200", "SUR", "Given20"): 0.807,
    ("ML_200", "SIR", "Given5"): 0.855,
    ("ML_200", "SIR", "Given10"): 0.834,
    ("ML_200", "SIR", "Given20"): 0.812,
    ("ML_100", "CFSF", "Given5"): 0.781,
    ("ML_100", "CFSF", "Given10"): 0.758,
    ("ML_100", "CFSF", "Given20"): 0.746,
    ("ML_100", "SUR", "Given5"): 0.876,
    ("ML_100", "SUR", "Given10"): 0.847,
    ("ML_100", "SUR", "Given20"): 0.811,
    ("ML_100", "SIR", "Given5"): 0.890,
    ("ML_100", "SIR", "Given10"): 0.801,
    ("ML_100", "SIR", "Given20"): 0.824,
}

#: Table III — MAE of CFSF vs the state-of-the-art approaches.
TABLE3_MAE: dict[tuple[str, str, str], float] = {
    ("ML_300", "CFSF", "Given5"): 0.743,
    ("ML_300", "CFSF", "Given10"): 0.721,
    ("ML_300", "CFSF", "Given20"): 0.705,
    ("ML_300", "AM", "Given5"): 0.820,
    ("ML_300", "AM", "Given10"): 0.822,
    ("ML_300", "AM", "Given20"): 0.796,
    ("ML_300", "EMDP", "Given5"): 0.788,
    ("ML_300", "EMDP", "Given10"): 0.754,
    ("ML_300", "EMDP", "Given20"): 0.746,
    ("ML_300", "SCBPCC", "Given5"): 0.822,
    ("ML_300", "SCBPCC", "Given10"): 0.810,
    ("ML_300", "SCBPCC", "Given20"): 0.778,
    ("ML_300", "SF", "Given5"): 0.804,
    ("ML_300", "SF", "Given10"): 0.761,
    ("ML_300", "SF", "Given20"): 0.769,
    ("ML_300", "PD", "Given5"): 0.827,
    ("ML_300", "PD", "Given10"): 0.815,
    ("ML_300", "PD", "Given20"): 0.789,
    ("ML_200", "CFSF", "Given5"): 0.769,
    ("ML_200", "CFSF", "Given10"): 0.734,
    ("ML_200", "CFSF", "Given20"): 0.713,
    ("ML_200", "AM", "Given5"): 0.849,
    ("ML_200", "AM", "Given10"): 0.837,
    ("ML_200", "AM", "Given20"): 0.815,
    ("ML_200", "EMDP", "Given5"): 0.793,
    ("ML_200", "EMDP", "Given10"): 0.760,
    ("ML_200", "EMDP", "Given20"): 0.751,
    ("ML_200", "SCBPCC", "Given5"): 0.831,
    ("ML_200", "SCBPCC", "Given10"): 0.813,
    ("ML_200", "SCBPCC", "Given20"): 0.784,
    ("ML_200", "SF", "Given5"): 0.827,
    ("ML_200", "SF", "Given10"): 0.773,
    ("ML_200", "SF", "Given20"): 0.783,
    ("ML_200", "PD", "Given5"): 0.836,
    ("ML_200", "PD", "Given10"): 0.815,
    ("ML_200", "PD", "Given20"): 0.792,
    ("ML_100", "CFSF", "Given5"): 0.781,
    ("ML_100", "CFSF", "Given10"): 0.758,
    ("ML_100", "CFSF", "Given20"): 0.746,
    ("ML_100", "AM", "Given5"): 0.963,
    ("ML_100", "AM", "Given10"): 0.922,
    ("ML_100", "AM", "Given20"): 0.887,
    ("ML_100", "EMDP", "Given5"): 0.807,
    ("ML_100", "EMDP", "Given10"): 0.769,
    ("ML_100", "EMDP", "Given20"): 0.765,
    ("ML_100", "SCBPCC", "Given5"): 0.848,
    ("ML_100", "SCBPCC", "Given10"): 0.819,
    ("ML_100", "SCBPCC", "Given20"): 0.789,
    ("ML_100", "SF", "Given5"): 0.847,
    ("ML_100", "SF", "Given10"): 0.774,
    ("ML_100", "SF", "Given20"): 0.792,
    ("ML_100", "PD", "Given5"): 0.849,
    ("ML_100", "PD", "Given10"): 0.817,
    ("ML_100", "PD", "Given20"): 0.808,
}

#: Section V-C.1's stated CFSF parameters for MovieLens.
CFSF_DEFAULTS: dict[str, float] = {
    "C": 30,
    "lambda": 0.8,
    "delta": 0.1,
    "K": 25,
    "M": 95,
    "w": 0.35,
}

#: Section V-D: maximum online response time at ML_300, 100% testset.
FIG5_MAX_RESPONSE_SECONDS: dict[str, float] = {"CFSF": 110.0, "SCBPCC": 260.0}
