"""Evaluation substrate: metrics, the GivenN protocol, and reporting.

The paper's evaluation pipeline end to end: MAE (Eq. 15) and friends
(:mod:`~repro.eval.metrics`), the fit/predict protocol driver
(:mod:`~repro.eval.protocol`), the Table II/III grid and parameter
sweeps (:mod:`~repro.eval.runner`), terminal tables and ASCII figures
(:mod:`~repro.eval.report`), and the transcribed published numbers for
side-by-side comparison (:mod:`~repro.eval.paper_values`).
"""

from repro.eval.metrics import coverage, mae, ndcg_at_n, precision_recall_at_n, rmse
from repro.eval.paper_values import (
    CFSF_DEFAULTS,
    FIG5_MAX_RESPONSE_SECONDS,
    TABLE2_MAE,
    TABLE3_MAE,
)
from repro.eval.protocol import EvaluationResult, evaluate, evaluate_fitted
from repro.eval.report import ascii_plot, format_comparison, format_paper_table, format_table
from repro.eval.significance import PairedResult, bootstrap_mae_ci, paired_comparison
from repro.eval.crossval import CrossValResult, cross_validate, user_kfold_splits
from repro.eval.tuning import Trial, TuningResult, tune_cfsf
from repro.eval.runner import (
    OFFLINE_PARAMETERS,
    GridResult,
    run_grid,
    scalability_sweep,
    sweep_cfsf_parameter,
)

__all__ = [
    "CFSF_DEFAULTS",
    "CrossValResult",
    "EvaluationResult",
    "FIG5_MAX_RESPONSE_SECONDS",
    "GridResult",
    "OFFLINE_PARAMETERS",
    "PairedResult",
    "bootstrap_mae_ci",
    "paired_comparison",
    "TABLE2_MAE",
    "Trial",
    "TuningResult",
    "TABLE3_MAE",
    "ascii_plot",
    "coverage",
    "cross_validate",
    "evaluate",
    "evaluate_fitted",
    "format_comparison",
    "format_paper_table",
    "format_table",
    "mae",
    "ndcg_at_n",
    "precision_recall_at_n",
    "rmse",
    "run_grid",
    "scalability_sweep",
    "sweep_cfsf_parameter",
    "tune_cfsf",
    "user_kfold_splits",
]
