"""Plain-text reporting: tables and line charts for a terminal.

The benchmark harness prints the same artefacts the paper shows —
MAE tables in the exact row/column layout of Tables II/III and ASCII
line plots for the figures — so a reproduction run can be compared to
the paper by eye, with no plotting dependencies.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["format_table", "format_paper_table", "ascii_plot", "format_comparison"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render a fixed-width table.

    Floats are formatted with *float_fmt*; everything else with
    ``str``.  Columns are sized to their widest cell.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float) and not isinstance(cell, bool):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    all_rows = [list(map(str, headers))] + str_rows
    widths = [max(len(r[c]) for r in all_rows) for c in range(len(headers))]
    sep = "  "

    def line(cells: Sequence[str]) -> str:
        return sep.join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(list(map(str, headers))))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_paper_table(
    results: Mapping[tuple[str, str], float],
    *,
    training_sets: Sequence[str],
    methods: Sequence[str],
    given_labels: Sequence[str] = ("Given5", "Given10", "Given20"),
    title: str | None = None,
) -> str:
    """Render the paper's Table II/III layout.

    Parameters
    ----------
    results:
        ``{(training_set, method): {given_label: mae}}`` flattened as
        ``{(f"{training_set}/{given_label}", method): mae}`` — i.e.
        keyed by ``(split_name, method)`` where ``split_name`` is
        ``"ML_300/Given5"`` etc.
    training_sets:
        Row groups, e.g. ``("ML_300", "ML_200", "ML_100")`` (the
        paper lists them largest-first).
    methods:
        Row order within each group (the paper lists CFSF first).
    """
    headers = ["Training set", "Methods", *given_labels]
    rows: list[list[object]] = []
    for ts in training_sets:
        for mi, method in enumerate(methods):
            row: list[object] = [ts if mi == 0 else "", method]
            for g in given_labels:
                key = (f"{ts}/{g}", method)
                row.append(results[key] if key in results else float("nan"))
            rows.append(row)
    return format_table(headers, rows, title=title)


def ascii_plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 68,
    height: int = 16,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "MAE",
) -> str:
    """A minimal multi-series ASCII line chart.

    Each series gets a marker character; points are plotted on a
    ``height x width`` grid with min/max auto-scaling.  Good enough to
    see the U-shapes and elbows of Figs. 2–4 and 6–8 in a terminal.
    """
    markers = "ox+*#@%&"
    xs = np.asarray(list(x), dtype=np.float64)
    all_y = np.concatenate([np.asarray(list(v), dtype=np.float64) for v in series.values()])
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max - y_min < 1e-12:
        y_max = y_min + 1.0
    x_min, x_max = float(xs.min()), float(xs.max())
    if x_max - x_min < 1e-12:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        marker = markers[si % len(markers)]
        for xv, yv in zip(xs, np.asarray(list(ys), dtype=np.float64)):
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((y_max - yv) / (y_max - y_min) * (height - 1)))
            grid[row][col] = marker

    out: list[str] = []
    if title:
        out.append(title)
    out.append(f"{y_max:8.3f} ┐")
    for r, row_chars in enumerate(grid):
        prefix = "         │"
        if r == height - 1:
            prefix = f"{y_min:8.3f} ┘"
        out.append(prefix + "".join(row_chars))
    out.append(" " * 10 + f"{x_min:g}".ljust(width - 8) + f"{x_max:g}")
    if x_label:
        out.append(" " * 10 + x_label)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(series.keys())
    )
    out.append(" " * 10 + legend)
    return "\n".join(out)


def format_comparison(
    paper: Mapping[str, float],
    measured: Mapping[str, float],
    *,
    title: str | None = None,
) -> str:
    """Side-by-side paper-vs-measured table with the delta."""
    rows = []
    for key in paper:
        p = paper[key]
        m = measured.get(key, float("nan"))
        rows.append([key, p, m, m - p])
    return format_table(["Cell", "Paper", "Measured", "Delta"], rows, title=title)
