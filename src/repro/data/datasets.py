"""Dataset registry: one place the examples/benchmarks get data from.

Resolution order for :func:`default_dataset`:

1. A real MovieLens file found on disk (``u.data`` / ``ratings.dat`` in
   the well-known locations probed by
   :func:`repro.data.movielens.find_local_movielens`), subsampled with
   the paper's preprocessing (500 users x 1000 most-rated items).
2. Otherwise the calibrated synthetic generator
   (:func:`repro.data.synthetic.make_movielens_like`).

The resolved matrix is cached per-process so that the many benchmark
entry points do not regenerate it.
"""

from __future__ import annotations

import numpy as np

from repro.data.matrix import RatingMatrix
from repro.data.movielens import find_local_movielens, load_ratings_file, paper_subsample
from repro.data.synthetic import SyntheticConfig, make_movielens_like

__all__ = ["default_dataset", "dataset_source", "clear_dataset_cache"]

_CACHE: dict[tuple, tuple[str, RatingMatrix]] = {}


def default_dataset(
    *,
    seed: int = 0,
    config: SyntheticConfig | None = None,
    prefer_real: bool = True,
) -> RatingMatrix:
    """Return the 500x1000 evaluation matrix (real if available)."""
    key = (seed, config, prefer_real)
    if key not in _CACHE:
        _CACHE[key] = _resolve(seed=seed, config=config, prefer_real=prefer_real)
    return _CACHE[key][1]


def dataset_source(
    *,
    seed: int = 0,
    config: SyntheticConfig | None = None,
    prefer_real: bool = True,
) -> str:
    """Where :func:`default_dataset` got its data: ``"movielens:<path>"``
    or ``"synthetic"``.  Recorded in EXPERIMENTS.md next to the results."""
    key = (seed, config, prefer_real)
    if key not in _CACHE:
        _CACHE[key] = _resolve(seed=seed, config=config, prefer_real=prefer_real)
    return _CACHE[key][0]


def clear_dataset_cache() -> None:
    """Drop all cached matrices (used by tests)."""
    _CACHE.clear()


def _resolve(
    *, seed: int, config: SyntheticConfig | None, prefer_real: bool
) -> tuple[str, RatingMatrix]:
    if prefer_real:
        path = find_local_movielens()
        if path is not None:
            try:
                loaded = load_ratings_file(path)
                matrix = paper_subsample(loaded, seed=seed)
                return f"movielens:{path}", matrix
            except (ValueError, OSError):
                # A malformed or too-small local file falls back to the
                # generator rather than failing the whole harness.
                pass
    dataset = make_movielens_like(config, seed=seed)
    return "synthetic", dataset.ratings


def shuffled_users(
    matrix: RatingMatrix, *, seed: int = 0
) -> RatingMatrix:
    """Return *matrix* with user rows in a seeded random order.

    The paper "randomly extracted" its 500 users before taking ordered
    prefixes; applying this once before building splits removes any
    accidental ordering in a loaded dataset.
    """
    rng = np.random.default_rng(seed)
    order = rng.permutation(matrix.n_users)
    return matrix.subset_users(order)
