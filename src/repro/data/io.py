"""Saving and loading rating matrices.

Two formats:

* ``.npz`` (:func:`save_matrix` / :func:`load_matrix`) — compressed,
  lossless, fast; the format the model snapshots use.  Includes the
  rating scale and an optional per-cell timestamp array.
* triplet CSV (:func:`save_triplets` / :func:`load_triplets`) —
  ``user,item,rating[,timestamp]`` text, interoperable with every CF
  toolkit and with the MovieLens loaders in
  :mod:`repro.data.movielens`.
"""

from __future__ import annotations

import csv
import json
import os

import numpy as np

from repro.data.matrix import RatingMatrix

__all__ = ["save_matrix", "load_matrix", "save_triplets", "load_triplets"]

#: Schema version for the .npz format.
MATRIX_FORMAT_VERSION = 1


def save_matrix(
    matrix: RatingMatrix,
    path: str,
    *,
    timestamps: np.ndarray | None = None,
) -> None:
    """Write a matrix (and optional timestamps) to a compressed .npz."""
    if timestamps is not None and timestamps.shape != matrix.shape:
        raise ValueError(
            f"timestamps shape {timestamps.shape} != matrix shape {matrix.shape}"
        )
    meta = {
        "format_version": MATRIX_FORMAT_VERSION,
        "rating_scale": list(matrix.rating_scale),
        "has_timestamps": timestamps is not None,
    }
    arrays = {"values": matrix.values, "mask": matrix.mask}
    if timestamps is not None:
        arrays["timestamps"] = np.asarray(timestamps, dtype=np.float64)
    tmp = f"{path}.tmp"
    np.savez_compressed(tmp, meta=json.dumps(meta), **arrays)
    produced = tmp if os.path.exists(tmp) else f"{tmp}.npz"
    os.replace(produced, path)


def load_matrix(path: str) -> tuple[RatingMatrix, np.ndarray | None]:
    """Read a matrix written by :func:`save_matrix`.

    Returns ``(matrix, timestamps_or_None)``.
    """
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"]))
        if meta.get("format_version") != MATRIX_FORMAT_VERSION:
            raise ValueError(f"unsupported matrix format {meta.get('format_version')!r}")
        matrix = RatingMatrix(
            archive["values"],
            archive["mask"],
            rating_scale=tuple(meta["rating_scale"]),
        )
        timestamps = archive["timestamps"].copy() if meta["has_timestamps"] else None
    return matrix, timestamps


def save_triplets(
    matrix: RatingMatrix,
    path: str,
    *,
    timestamps: np.ndarray | None = None,
    header: bool = True,
) -> int:
    """Write observed ratings as ``user,item,rating[,timestamp]`` CSV.

    Returns the number of rows written.
    """
    if timestamps is not None and timestamps.shape != matrix.shape:
        raise ValueError(
            f"timestamps shape {timestamps.shape} != matrix shape {matrix.shape}"
        )
    users, items = np.nonzero(matrix.mask)
    values = matrix.values[users, items]
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        if header:
            cols = ["user", "item", "rating"]
            if timestamps is not None:
                cols.append("timestamp")
            writer.writerow(cols)
        for idx in range(users.size):
            row: list = [int(users[idx]), int(items[idx]), float(values[idx])]
            if timestamps is not None:
                row.append(float(timestamps[users[idx], items[idx]]))
            writer.writerow(row)
    return int(users.size)


def load_triplets(
    path: str,
    *,
    n_users: int | None = None,
    n_items: int | None = None,
    rating_scale: tuple[float, float] = (1.0, 5.0),
) -> tuple[RatingMatrix, np.ndarray | None]:
    """Read a CSV written by :func:`save_triplets` (header optional).

    Returns ``(matrix, timestamps_or_None)``; timestamps come back as
    a dense per-cell array (0.0 where unrated) when a fourth column is
    present.
    """
    triplets: list[tuple[int, int, float]] = []
    times: list[float] = []
    has_times = False
    with open(path, "r", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        for lineno, row in enumerate(reader, 1):
            if not row:
                continue
            if lineno == 1 and not row[0].strip().lstrip("-").isdigit():
                has_times = len(row) > 3
                continue  # header
            if len(row) < 3:
                raise ValueError(f"{path}:{lineno}: expected >=3 columns")
            triplets.append((int(row[0]), int(row[1]), float(row[2])))
            if len(row) > 3:
                has_times = True
                times.append(float(row[3]))
            elif has_times:
                raise ValueError(f"{path}:{lineno}: inconsistent timestamp column")
    matrix = RatingMatrix.from_triplets(
        triplets, n_users=n_users, n_items=n_items, rating_scale=rating_scale
    )
    if not has_times or not times:
        return matrix, None
    tstamps = np.zeros(matrix.shape, dtype=np.float64)
    for (u, i, _), t in zip(triplets, times):
        tstamps[u, i] = t
    return matrix, tstamps
