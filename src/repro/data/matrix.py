"""The item–user rating matrix abstraction.

The paper represents user profiles as a ``Q x P`` item–user matrix
``X`` (Section III).  Internally we store the transposed, user-major
``P x Q`` layout (*users on rows, items on columns*) because every hot
kernel in the library — user clustering, per-user smoothing, the online
phase's per-user rating extraction — reads user rows, and row access is
contiguous for C-ordered arrays (see the cache-effects discussion in
the optimisation guide).  Item-major views are exposed where item–item
similarity needs them.

Missing ratings are explicit: a dense float64 ``values`` array paired
with a boolean ``mask`` (``True`` = rated).  At MovieLens scale
(500 x 1000, ~9.4% dense) the dense-plus-mask layout is both smaller
than pointer-chasing sparse formats would suggest and vastly faster for
the masked Gram products that all similarity kernels reduce to.  A CSR
view is provided for algorithms that genuinely iterate nonzeros.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np
from scipy import sparse

from repro.utils.validation import check_mask, check_rating_matrix

__all__ = ["RatingMatrix", "DatasetStats"]


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics in the shape of the paper's Table I."""

    n_users: int
    n_items: int
    n_ratings: int
    avg_ratings_per_user: float
    density: float
    rating_scale: tuple[float, float]

    def as_rows(self) -> list[tuple[str, str]]:
        """Rows for a two-column report table (label, value)."""
        return [
            ("No. of Users", str(self.n_users)),
            ("No. of Items", str(self.n_items)),
            ("No. of ratings", str(self.n_ratings)),
            ("Average no. of rated items per user", f"{self.avg_ratings_per_user:.1f}"),
            ("Density of data", f"{self.density * 100:.2f}%"),
            ("Rating scale", f"{self.rating_scale[0]:g}..{self.rating_scale[1]:g}"),
        ]


class RatingMatrix:
    """Dense masked user-by-item rating matrix.

    Parameters
    ----------
    values:
        2-D array of ratings, users on rows, items on columns.  Entries
        where ``mask`` is ``False`` are ignored (any finite placeholder
        is accepted and normalised to 0.0 for predictable arithmetic).
    mask:
        Boolean array of the same shape; ``True`` marks an observed
        rating.  If omitted, nonzero entries of ``values`` are treated
        as observed — the common convention for 1..5 star data where 0
        means "unrated".
    rating_scale:
        Inclusive (low, high) bounds of valid ratings, used for
        clipping predictions; defaults to MovieLens' (1, 5).

    Notes
    -----
    Instances are *logically immutable*: all mutating operations return
    new instances (:meth:`with_ratings`, :meth:`subset_users`, ...).
    The arrays are flagged non-writeable to catch accidental in-place
    mutation by algorithm code, which would silently corrupt the caches
    layered above this class.
    """

    __slots__ = ("_values", "_mask", "rating_scale", "_hash")

    def __init__(
        self,
        values: np.ndarray,
        mask: np.ndarray | None = None,
        *,
        rating_scale: tuple[float, float] = (1.0, 5.0),
    ) -> None:
        values = check_rating_matrix(values)
        if mask is None:
            mask = values != 0.0
        mask = check_mask(mask, values.shape)
        lo, hi = float(rating_scale[0]), float(rating_scale[1])
        if not lo < hi:
            raise ValueError(f"rating_scale must satisfy low < high, got {rating_scale}")
        observed = values[mask]
        if observed.size and not np.isfinite(observed).all():
            raise ValueError("observed ratings must be finite")
        cleaned = np.where(mask, values, 0.0)
        cleaned.flags.writeable = False
        mask = mask.copy()
        mask.flags.writeable = False
        self._values = cleaned
        self._mask = mask
        self.rating_scale = (lo, hi)
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_triplets(
        cls,
        triplets: Iterable[tuple[int, int, float]],
        *,
        n_users: int | None = None,
        n_items: int | None = None,
        rating_scale: tuple[float, float] = (1.0, 5.0),
    ) -> "RatingMatrix":
        """Build a matrix from ``(user, item, rating)`` triplets.

        Duplicate ``(user, item)`` pairs keep the *last* rating seen,
        matching how recommender logs overwrite re-ratings.
        """
        triplet_list = list(triplets)
        if not triplet_list and (n_users is None or n_items is None):
            raise ValueError("empty triplets require explicit n_users and n_items")
        users = np.array([t[0] for t in triplet_list], dtype=np.intp)
        items = np.array([t[1] for t in triplet_list], dtype=np.intp)
        vals = np.array([t[2] for t in triplet_list], dtype=np.float64)
        if users.size:
            if users.min(initial=0) < 0 or items.min(initial=0) < 0:
                raise ValueError("user and item indices must be non-negative")
        P = int(n_users if n_users is not None else users.max() + 1)
        Q = int(n_items if n_items is not None else items.max() + 1)
        if users.size and (users.max() >= P or items.max() >= Q):
            raise ValueError("triplet index exceeds declared matrix shape")
        values = np.zeros((P, Q), dtype=np.float64)
        mask = np.zeros((P, Q), dtype=bool)
        values[users, items] = vals
        mask[users, items] = True
        return cls(values, mask, rating_scale=rating_scale)

    @classmethod
    def from_csr(
        cls,
        csr: sparse.spmatrix,
        *,
        rating_scale: tuple[float, float] = (1.0, 5.0),
    ) -> "RatingMatrix":
        """Build a matrix from any SciPy sparse matrix (nonzero = rated)."""
        csr = sparse.csr_matrix(csr)
        values = np.asarray(csr.todense(), dtype=np.float64)
        mask = values != 0.0
        return cls(values, mask, rating_scale=rating_scale)

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Read-only ``(P, Q)`` rating array (0.0 where unrated)."""
        return self._values

    @property
    def mask(self) -> np.ndarray:
        """Read-only ``(P, Q)`` boolean rated-mask."""
        return self._mask

    @property
    def shape(self) -> tuple[int, int]:
        """``(n_users, n_items)``."""
        return self._values.shape

    @property
    def n_users(self) -> int:
        """Number of user rows (the paper's ``P``)."""
        return self._values.shape[0]

    @property
    def n_items(self) -> int:
        """Number of item columns (the paper's ``Q``)."""
        return self._values.shape[1]

    @property
    def n_ratings(self) -> int:
        """Total number of observed ratings."""
        return int(self._mask.sum())

    @property
    def density(self) -> float:
        """Fraction of observed cells, the paper's "density of data"."""
        return self.n_ratings / (self.n_users * self.n_items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RatingMatrix):
            return NotImplemented
        return (
            self.shape == other.shape
            and self.rating_scale == other.rating_scale
            and np.array_equal(self._mask, other._mask)
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        # Matrices key the online caches and are immutable, so the
        # (array-summing) hash is computed once and memoised — it sits
        # on the per-request serving path.
        if self._hash is None:
            self._hash = hash((self.shape, self.n_ratings, float(self._values.sum())))
        return self._hash

    def __repr__(self) -> str:
        return (
            f"RatingMatrix(n_users={self.n_users}, n_items={self.n_items}, "
            f"n_ratings={self.n_ratings}, density={self.density:.2%})"
        )

    # ------------------------------------------------------------------
    # Aggregates used throughout the paper's equations
    # ------------------------------------------------------------------
    def user_means(self, *, fill: float | None = None) -> np.ndarray:
        """Per-user mean of observed ratings (``r̄_u`` in the paper).

        Users with no ratings get *fill* (default: the global mean) so
        downstream arithmetic never meets NaN.
        """
        counts = self._mask.sum(axis=1)
        sums = self._values.sum(axis=1)
        default = self.global_mean() if fill is None else float(fill)
        with np.errstate(invalid="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), default)
        return means

    def item_means(self, *, fill: float | None = None) -> np.ndarray:
        """Per-item mean of observed ratings (``r̄_i`` in the paper)."""
        counts = self._mask.sum(axis=0)
        sums = self._values.sum(axis=0)
        default = self.global_mean() if fill is None else float(fill)
        with np.errstate(invalid="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), default)
        return means

    def global_mean(self) -> float:
        """Mean of all observed ratings (midpoint of scale if empty)."""
        n = self.n_ratings
        if n == 0:
            return 0.5 * (self.rating_scale[0] + self.rating_scale[1])
        return float(self._values.sum() / n)

    def user_counts(self) -> np.ndarray:
        """Number of observed ratings per user."""
        return self._mask.sum(axis=1)

    def item_counts(self) -> np.ndarray:
        """Number of observed ratings per item."""
        return self._mask.sum(axis=0)

    def stats(self) -> DatasetStats:
        """Table-I style summary statistics."""
        return DatasetStats(
            n_users=self.n_users,
            n_items=self.n_items,
            n_ratings=self.n_ratings,
            avg_ratings_per_user=self.n_ratings / self.n_users,
            density=self.density,
            rating_scale=self.rating_scale,
        )

    def clip(self, predictions: np.ndarray) -> np.ndarray:
        """Clip *predictions* into this matrix's rating scale."""
        return np.clip(predictions, self.rating_scale[0], self.rating_scale[1])

    # ------------------------------------------------------------------
    # Views and conversions
    # ------------------------------------------------------------------
    def to_csr(self) -> sparse.csr_matrix:
        """CSR view for algorithms that iterate nonzeros.

        A rating whose value is exactly 0.0 cannot be represented in
        this view; with the default 1..5 scale that never occurs.
        """
        return sparse.csr_matrix(np.where(self._mask, self._values, 0.0))

    def to_triplets(self) -> list[tuple[int, int, float]]:
        """Observed ratings as ``(user, item, rating)`` triplets."""
        users, items = np.nonzero(self._mask)
        vals = self._values[users, items]
        return list(zip(users.tolist(), items.tolist(), vals.tolist()))

    def iter_user_profiles(self) -> Iterator[tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(user_index, rated_item_indices, ratings)`` per user."""
        for u in range(self.n_users):
            idx = np.nonzero(self._mask[u])[0]
            yield u, idx, self._values[u, idx]

    def user_profile(self, user: int) -> tuple[np.ndarray, np.ndarray]:
        """``(rated_item_indices, ratings)`` for one user row."""
        idx = np.nonzero(self._mask[user])[0]
        return idx, self._values[user, idx]

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def subset_users(self, users: Sequence[int] | np.ndarray) -> "RatingMatrix":
        """New matrix containing only the given user rows, in order."""
        users = np.asarray(users, dtype=np.intp)
        return RatingMatrix(
            self._values[users], self._mask[users], rating_scale=self.rating_scale
        )

    def subset_items(self, items: Sequence[int] | np.ndarray) -> "RatingMatrix":
        """New matrix containing only the given item columns, in order."""
        items = np.asarray(items, dtype=np.intp)
        return RatingMatrix(
            self._values[:, items], self._mask[:, items], rating_scale=self.rating_scale
        )

    def with_ratings(
        self, triplets: Iterable[tuple[int, int, float]]
    ) -> "RatingMatrix":
        """New matrix with the given ``(user, item, rating)`` entries added.

        Existing entries at the same positions are overwritten; this is
        the primitive that the incremental-update extension builds on.
        """
        values = self._values.copy()
        mask = self._mask.copy()
        for u, i, r in triplets:
            values[u, i] = r
            mask[u, i] = True
        return RatingMatrix(values, mask, rating_scale=self.rating_scale)

    def without_ratings(
        self, pairs: Iterable[tuple[int, int]]
    ) -> "RatingMatrix":
        """New matrix with the given ``(user, item)`` entries removed."""
        values = self._values.copy()
        mask = self._mask.copy()
        for u, i in pairs:
            values[u, i] = 0.0
            mask[u, i] = False
        return RatingMatrix(values, mask, rating_scale=self.rating_scale)

    def append_users(self, other: "RatingMatrix") -> "RatingMatrix":
        """Stack another matrix's users below this one (same items).

        The online phase of CFSF folds active users into the training
        matrix this way ("CFSF requires him or her to rate a certain
        number of items and then inserts a record", Section IV-A).
        """
        if other.n_items != self.n_items:
            raise ValueError(
                f"item count mismatch: {self.n_items} vs {other.n_items}"
            )
        return RatingMatrix(
            np.vstack([self._values, other._values]),
            np.vstack([self._mask, other._mask]),
            rating_scale=self.rating_scale,
        )
