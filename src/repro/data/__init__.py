"""Data substrate: rating matrices, datasets, and the GivenN protocol.

The paper evaluates on a 500-user x 1000-item MovieLens extract
(Table I).  This subpackage provides the matrix abstraction used by
every algorithm (:class:`~repro.data.matrix.RatingMatrix`), a
calibrated synthetic generator that reproduces the extract's
statistical structure (:mod:`repro.data.synthetic`), loaders for real
MovieLens files when present (:mod:`repro.data.movielens`), and the
ML_100/200/300 x Given5/10/20 experimental protocol
(:mod:`repro.data.splits`).
"""

from repro.data.datasets import clear_dataset_cache, dataset_source, default_dataset
from repro.data.io import load_matrix, load_triplets, save_matrix, save_triplets
from repro.data.matrix import DatasetStats, RatingMatrix
from repro.data.movielens import (
    LoadedRatings,
    find_local_movielens,
    load_ml1m,
    load_ml100k,
    load_ratings_file,
    paper_subsample,
)
from repro.data.stats import (
    activity_histogram,
    gini_coefficient,
    popularity_curve,
    popularity_quality_correlation,
    rating_histogram,
    summarize,
)
from repro.data.perturb import (
    add_cold_items,
    add_cold_users,
    add_noise_ratings,
    drop_ratings,
    shill_items,
)
from repro.data.splits import (
    GIVEN_SIZES,
    TRAINING_SIZES,
    GivenNSplit,
    make_split,
    paper_grid,
    subsample_heldout,
)
from repro.data.synthetic import (
    SyntheticConfig,
    SyntheticDataset,
    make_movielens_like,
    make_timestamped,
)

__all__ = [
    "DatasetStats",
    "GIVEN_SIZES",
    "GivenNSplit",
    "LoadedRatings",
    "RatingMatrix",
    "SyntheticConfig",
    "SyntheticDataset",
    "TRAINING_SIZES",
    "activity_histogram",
    "add_cold_items",
    "add_cold_users",
    "add_noise_ratings",
    "clear_dataset_cache",
    "drop_ratings",
    "gini_coefficient",
    "popularity_curve",
    "popularity_quality_correlation",
    "rating_histogram",
    "shill_items",
    "summarize",
    "dataset_source",
    "default_dataset",
    "find_local_movielens",
    "load_matrix",
    "load_ml100k",
    "load_ml1m",
    "load_ratings_file",
    "load_triplets",
    "make_movielens_like",
    "make_split",
    "make_timestamped",
    "paper_grid",
    "paper_subsample",
    "save_matrix",
    "save_triplets",
    "subsample_heldout",
]
