"""Dataset diagnostics beyond Table I.

The generator is calibrated against MovieLens *statistics*; these
diagnostics are how that calibration is checked and reported:

* :func:`rating_histogram` — the 1..5 value distribution,
* :func:`popularity_curve` — item rating-counts sorted descending
  (the long tail) and its :func:`gini_coefficient`,
* :func:`activity_histogram` — user rating-count distribution,
* :func:`popularity_quality_correlation` — the popular-items-rate-
  higher coupling the paper's PCC-vs-cosine argument rests on,
* :func:`summarize` — everything above as a report dictionary.

Used by the data tests (asserting the generator's shape) and by
``examples/dataset_report.py``.
"""

from __future__ import annotations

import numpy as np

from repro.data.matrix import RatingMatrix

__all__ = [
    "rating_histogram",
    "popularity_curve",
    "gini_coefficient",
    "activity_histogram",
    "popularity_quality_correlation",
    "summarize",
]


def rating_histogram(matrix: RatingMatrix) -> dict[float, int]:
    """Counts per distinct observed rating value, ascending."""
    observed = matrix.values[matrix.mask]
    values, counts = np.unique(observed, return_counts=True)
    return {float(v): int(c) for v, c in zip(values, counts)}


def popularity_curve(matrix: RatingMatrix) -> np.ndarray:
    """Item rating counts sorted descending (the long-tail curve)."""
    return np.sort(matrix.item_counts())[::-1]


def gini_coefficient(counts: np.ndarray) -> float:
    """Gini of a nonnegative count vector (0 = uniform, →1 = skewed)."""
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size == 0:
        raise ValueError("cannot compute Gini of an empty vector")
    if (counts < 0).any():
        raise ValueError("counts must be nonnegative")
    total = counts.sum()
    if total == 0:
        return 0.0
    sorted_counts = np.sort(counts)
    n = counts.size
    cum = np.cumsum(sorted_counts)
    # Standard formula: G = 1 - 2 * sum((cum - x/2)) / (n * total).
    # Clamp to the mathematical range [0, 1): subnormal counts can
    # underflow the x/2 term and push the raw value far outside it.
    gini = 1.0 - 2.0 * (cum - sorted_counts / 2.0).sum() / (n * total)
    return float(min(max(gini, 0.0), 1.0))


def activity_histogram(
    matrix: RatingMatrix, *, bins: int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """User rating-count histogram: ``(bin_edges, counts)``."""
    counts = matrix.user_counts()
    hist, edges = np.histogram(counts, bins=bins)
    return edges, hist


def popularity_quality_correlation(matrix: RatingMatrix, *, min_count: int = 5) -> float:
    """Pearson correlation between item popularity and item mean rating.

    Positive on MovieLens-like data — the property the paper cites
    when preferring PCC over pure cosine for the GIS.
    """
    counts = matrix.item_counts()
    means = matrix.item_means()
    rated = counts >= min_count
    if rated.sum() < 3:
        raise ValueError(f"fewer than 3 items have >= {min_count} ratings")
    return float(np.corrcoef(counts[rated], means[rated])[0, 1])


def summarize(matrix: RatingMatrix) -> dict[str, object]:
    """All diagnostics as one report dictionary."""
    curve = popularity_curve(matrix)
    return {
        "table1": matrix.stats(),
        "rating_histogram": rating_histogram(matrix),
        "popularity_gini": gini_coefficient(curve),
        "top10_item_share": float(curve[:10].sum() / max(curve.sum(), 1)),
        "popularity_quality_corr": popularity_quality_correlation(matrix),
        "median_user_activity": float(np.median(matrix.user_counts())),
    }
