"""Failure injection: controlled corruption of rating matrices.

Robustness testing needs *designed* failure modes, not hopeful fuzz.
These transforms model the ways real recommender data degrades, and
the test suite uses them to check that every algorithm (a) stays
finite and in-scale under each corruption and (b) degrades gracefully
rather than collapsing:

* :func:`drop_ratings` — increased sparsity (the paper's own axis).
* :func:`add_noise_ratings` — label noise: observed ratings replaced
  by uniform random values.
* :func:`add_cold_items` / :func:`add_cold_users` — columns/rows with
  zero ratings appended (catalogue growth, new-user signup).
* :func:`shill_items` — a rating-injection ("shilling") attack: fake
  users who all rate one target item with the maximum score and rate
  popular items averagely for camouflage.

Every transform is pure: it returns a new matrix and, where relevant,
the ground-truth bookkeeping needed by assertions.
"""

from __future__ import annotations

import numpy as np

from repro.data.matrix import RatingMatrix
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "drop_ratings",
    "add_noise_ratings",
    "add_cold_items",
    "add_cold_users",
    "shill_items",
]


def drop_ratings(
    matrix: RatingMatrix,
    fraction: float,
    *,
    seed: int | np.random.Generator | None = 0,
    keep_min_per_user: int = 1,
) -> RatingMatrix:
    """Remove a random *fraction* of observed ratings.

    Each user keeps at least *keep_min_per_user* ratings so that no
    row becomes empty (an empty profile is a separate failure mode,
    covered by :func:`add_cold_users`).
    """
    check_fraction(fraction, "fraction")
    rng = as_generator(seed)
    values = matrix.values.copy()
    mask = matrix.mask.copy()
    for u in range(matrix.n_users):
        rated = np.nonzero(mask[u])[0]
        n_droppable = max(0, rated.size - keep_min_per_user)
        n_drop = min(n_droppable, int(round(rated.size * fraction)))
        if n_drop == 0:
            continue
        drop = rng.choice(rated, size=n_drop, replace=False)
        mask[u, drop] = False
        values[u, drop] = 0.0
    return RatingMatrix(values, mask, rating_scale=matrix.rating_scale)


def add_noise_ratings(
    matrix: RatingMatrix,
    fraction: float,
    *,
    seed: int | np.random.Generator | None = 0,
) -> tuple[RatingMatrix, np.ndarray]:
    """Replace a random *fraction* of observed ratings with uniform noise.

    Returns ``(corrupted_matrix, corrupted_mask)`` where the second
    element marks the poisoned cells (for assertions about what should
    have been learned anyway).
    """
    check_fraction(fraction, "fraction")
    rng = as_generator(seed)
    lo, hi = matrix.rating_scale
    users, items = np.nonzero(matrix.mask)
    n_corrupt = int(round(users.size * fraction))
    corrupted = np.zeros(matrix.shape, dtype=bool)
    values = matrix.values.copy()
    if n_corrupt:
        pick = rng.choice(users.size, size=n_corrupt, replace=False)
        cu, ci = users[pick], items[pick]
        values[cu, ci] = rng.integers(int(lo), int(hi) + 1, size=n_corrupt)
        corrupted[cu, ci] = True
    return (
        RatingMatrix(values, matrix.mask.copy(), rating_scale=matrix.rating_scale),
        corrupted,
    )


def add_cold_items(matrix: RatingMatrix, n_items: int) -> RatingMatrix:
    """Append *n_items* never-rated item columns (catalogue growth)."""
    check_positive_int(n_items, "n_items")
    values = np.hstack([matrix.values, np.zeros((matrix.n_users, n_items))])
    mask = np.hstack([matrix.mask, np.zeros((matrix.n_users, n_items), dtype=bool)])
    return RatingMatrix(values, mask, rating_scale=matrix.rating_scale)


def add_cold_users(matrix: RatingMatrix, n_users: int) -> RatingMatrix:
    """Append *n_users* empty user rows (signup without any rating)."""
    check_positive_int(n_users, "n_users")
    values = np.vstack([matrix.values, np.zeros((n_users, matrix.n_items))])
    mask = np.vstack([matrix.mask, np.zeros((n_users, matrix.n_items), dtype=bool)])
    return RatingMatrix(values, mask, rating_scale=matrix.rating_scale)


def shill_items(
    matrix: RatingMatrix,
    target_item: int,
    n_shills: int,
    *,
    camouflage_items: int = 10,
    seed: int | np.random.Generator | None = 0,
) -> RatingMatrix:
    """Inject a push-attack: *n_shills* fake users max-rate one item.

    Each shill rates ``target_item`` with the scale maximum and the
    *camouflage_items* most-rated items with that item's rounded mean
    (the classic "average attack" profile, hard to filter).

    Returns the enlarged matrix; the shill rows are the last
    ``n_shills`` users.
    """
    check_positive_int(n_shills, "n_shills")
    if not 0 <= target_item < matrix.n_items:
        raise ValueError(f"target_item {target_item} out of range")
    rng = as_generator(seed)
    lo, hi = matrix.rating_scale
    popular = np.argsort(-matrix.item_counts(), kind="stable")[:camouflage_items]
    popular = popular[popular != target_item]
    item_means = matrix.item_means()

    shill_values = np.zeros((n_shills, matrix.n_items))
    shill_mask = np.zeros((n_shills, matrix.n_items), dtype=bool)
    shill_values[:, target_item] = hi
    shill_mask[:, target_item] = True
    for i in popular:
        base = np.clip(np.round(item_means[i]), lo, hi)
        jitter = rng.integers(-1, 2, size=n_shills)
        shill_values[:, i] = np.clip(base + jitter, lo, hi)
        shill_mask[:, i] = True

    return RatingMatrix(
        np.vstack([matrix.values, shill_values]),
        np.vstack([matrix.mask, shill_mask]),
        rating_scale=matrix.rating_scale,
    )
