"""The paper's experimental protocol: training prefixes and GivenN.

Section V-A: from 500 users, the first 100/200/300 form the training
sets ``ML_100``/``ML_200``/``ML_300``; the *last 200 users* are the
test set.  For each test ("active") user, only ``Given5``/``Given10``/
``Given20`` of their ratings are revealed to the recommender; all of
their remaining ratings are held out and predicted, and MAE is computed
over the held-out set (Eq. 15).

This module provides:

* :class:`GivenNSplit` — a frozen view holding the training matrix, the
  *given* matrix (active users x items, only the revealed ratings) and
  the *held-out* matrix (the prediction targets).
* :func:`make_split` — builds one split from a full matrix.
* :func:`paper_grid` — the 3x3 grid of (ML_100/200/300, Given5/10/20)
  splits used by Tables II and III.
* :func:`subsample_heldout` — shrinks the evaluation workload for the
  Fig. 5 test-set-size sweep (10%..100% of the test users).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.data.matrix import RatingMatrix
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "GivenNSplit",
    "make_split",
    "paper_grid",
    "subsample_heldout",
    "TRAINING_SIZES",
    "GIVEN_SIZES",
]

#: Training-set prefixes evaluated in the paper.
TRAINING_SIZES = (100, 200, 300)
#: GivenN values evaluated in the paper.
GIVEN_SIZES = (5, 10, 20)


@dataclass(frozen=True)
class GivenNSplit:
    """One (training set, GivenN) evaluation configuration.

    Attributes
    ----------
    train:
        Rating matrix of the training users (``ML_100``-style prefix).
    given:
        Active users' *revealed* ratings, one row per active user, same
        item columns as ``train``.  Every active user has exactly
        ``given_n`` revealed ratings (users with fewer rated items than
        ``given_n + 1`` are dropped, which cannot happen with the
        paper's >=40-ratings floor).
    heldout:
        Active users' *hidden* ratings — the prediction targets.  Rows
        align with ``given``.
    name:
        Human-readable label, e.g. ``"ML_300/Given10"``.
    """

    train: RatingMatrix
    given: RatingMatrix
    heldout: RatingMatrix
    given_n: int
    name: str = ""
    active_user_ids: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.given.shape != self.heldout.shape:
            raise ValueError("given and heldout must share a shape")
        if self.given.n_items != self.train.n_items:
            raise ValueError("active users must share the training item space")
        overlap = self.given.mask & self.heldout.mask
        if overlap.any():
            raise ValueError("a rating cannot be both given and held out")

    @property
    def n_active_users(self) -> int:
        """Number of active (test) users."""
        return self.given.n_users

    @property
    def n_targets(self) -> int:
        """Number of held-out ratings to predict (``|T|`` in Eq. 15)."""
        return self.heldout.n_ratings

    def iter_targets(self) -> Iterator[tuple[int, int, float]]:
        """Yield ``(active_user_row, item, true_rating)`` targets."""
        users, items = np.nonzero(self.heldout.mask)
        vals = self.heldout.values[users, items]
        yield from zip(users.tolist(), items.tolist(), vals.tolist())

    def targets_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Targets as parallel arrays ``(user_rows, items, ratings)``."""
        users, items = np.nonzero(self.heldout.mask)
        return users, items, self.heldout.values[users, items]


def make_split(
    full: RatingMatrix,
    *,
    n_train_users: int,
    given_n: int,
    n_test_users: int = 200,
    seed: int | np.random.Generator | None = 0,
    name: str | None = None,
) -> GivenNSplit:
    """Build one GivenN split following the paper's protocol.

    The first *n_train_users* rows of *full* become the training matrix
    and the **last** *n_test_users* rows the active users, matching
    "We changed the size of the training set by selecting the first
    100, 200 and 300 users ... We selected the last 200 users as the
    testset."  The *given_n* revealed items per active user are sampled
    uniformly without replacement from that user's rated items.

    Raises
    ------
    ValueError
        If the training prefix and test suffix would overlap, or if an
        active user has fewer than ``given_n + 1`` ratings (no held-out
        target would remain).
    """
    check_positive_int(n_train_users, "n_train_users")
    check_positive_int(given_n, "given_n")
    check_positive_int(n_test_users, "n_test_users")
    if n_train_users + n_test_users > full.n_users:
        raise ValueError(
            f"train prefix ({n_train_users}) and test suffix ({n_test_users}) overlap "
            f"in a matrix of {full.n_users} users"
        )
    rng = as_generator(seed)
    train = full.subset_users(np.arange(n_train_users))
    active_ids = np.arange(full.n_users - n_test_users, full.n_users)
    active = full.subset_users(active_ids)

    given_mask = np.zeros(active.shape, dtype=bool)
    for row in range(active.n_users):
        rated = np.nonzero(active.mask[row])[0]
        if len(rated) < given_n + 1:
            raise ValueError(
                f"active user {active_ids[row]} has only {len(rated)} ratings; "
                f"needs > given_n={given_n}"
            )
        revealed = rng.choice(rated, size=given_n, replace=False)
        given_mask[row, revealed] = True

    heldout_mask = active.mask & ~given_mask
    given = RatingMatrix(
        np.where(given_mask, active.values, 0.0), given_mask, rating_scale=full.rating_scale
    )
    heldout = RatingMatrix(
        np.where(heldout_mask, active.values, 0.0), heldout_mask, rating_scale=full.rating_scale
    )
    label = name if name is not None else f"ML_{n_train_users}/Given{given_n}"
    return GivenNSplit(
        train=train,
        given=given,
        heldout=heldout,
        given_n=given_n,
        name=label,
        active_user_ids=active_ids,
    )


def paper_grid(
    full: RatingMatrix,
    *,
    training_sizes: Sequence[int] = TRAINING_SIZES,
    given_sizes: Sequence[int] = GIVEN_SIZES,
    n_test_users: int = 200,
    seed: int | np.random.Generator | None = 0,
) -> dict[tuple[int, int], GivenNSplit]:
    """The full 3x3 grid of splits behind Tables II and III.

    Returns a dict keyed by ``(n_train_users, given_n)``.  All splits of
    the same ``given_n`` share the revealed-item draws (seeded per
    ``given_n``) so that changing the training size does not also change
    the evaluation targets — the property that makes the columns of
    Table II comparable down the page.
    """
    rng = as_generator(seed)
    given_seeds = {g: int(s) for g, s in zip(given_sizes, rng.integers(0, 2**31, len(given_sizes)))}
    grid: dict[tuple[int, int], GivenNSplit] = {}
    for given_n in given_sizes:
        for n_train in training_sizes:
            grid[(n_train, given_n)] = make_split(
                full,
                n_train_users=n_train,
                given_n=given_n,
                n_test_users=n_test_users,
                seed=given_seeds[given_n],
            )
    return grid


def subsample_heldout(
    split: GivenNSplit,
    fraction: float,
    *,
    seed: int | np.random.Generator | None = 0,
) -> GivenNSplit:
    """Restrict a split to a random *fraction* of its active users.

    Fig. 5 varies the test-set size from 10% to 100% of the last 200
    users; this helper produces those reduced workloads while keeping
    the training matrix untouched.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if fraction == 1.0:
        return split
    rng = as_generator(seed)
    n_keep = max(1, int(round(split.n_active_users * fraction)))
    keep = np.sort(rng.choice(split.n_active_users, size=n_keep, replace=False))
    return GivenNSplit(
        train=split.train,
        given=split.given.subset_users(keep),
        heldout=split.heldout.subset_users(keep),
        given_n=split.given_n,
        name=f"{split.name}@{fraction:.0%}",
        active_user_ids=(
            split.active_user_ids[keep] if split.active_user_ids is not None else None
        ),
    )
