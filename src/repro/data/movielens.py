"""Loaders for the on-disk MovieLens file formats.

The paper evaluates on the GroupLens MovieLens dataset.  This
environment has no network access, so the benchmark harness defaults to
the calibrated synthetic generator (:mod:`repro.data.synthetic`) — but
when a real MovieLens copy is available locally, these loaders let
every experiment run on the genuine data unchanged:

* :func:`load_ml100k` — the ``u.data`` tab-separated format
  (``user \\t item \\t rating \\t timestamp``) of MovieLens-100K.
* :func:`load_ml1m` — the ``ratings.dat`` ``::``-separated format of
  MovieLens-1M.
* :func:`load_ratings_file` — autodetects the two formats.
* :func:`paper_subsample` — reproduces the paper's preprocessing:
  500 users with >= 40 ratings over the 1000 most-rated items.

All loaders re-index users and items densely (original ids are
returned) and produce a :class:`~repro.data.matrix.RatingMatrix`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.data.matrix import RatingMatrix
from repro.utils.rng import as_generator

__all__ = [
    "LoadedRatings",
    "load_ml100k",
    "load_ml1m",
    "load_ratings_file",
    "paper_subsample",
    "find_local_movielens",
]

#: Directories probed by :func:`find_local_movielens`, in order.
SEARCH_PATHS = (
    "/root/data",
    "/root/datasets",
    "/usr/share/movielens",
    os.path.expanduser("~/ml-100k"),
    os.path.expanduser("~/ml-1m"),
    ".",
)


@dataclass(frozen=True)
class LoadedRatings:
    """A loaded rating matrix plus the original id mappings."""

    ratings: RatingMatrix
    user_ids: np.ndarray = field(repr=False)
    item_ids: np.ndarray = field(repr=False)
    timestamps: np.ndarray | None = field(repr=False, default=None)


def _parse_lines(
    path: str, sep: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Parse ``user<sep>item<sep>rating<sep>timestamp`` lines."""
    users: list[int] = []
    items: list[int] = []
    ratings: list[float] = []
    times: list[float] = []
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            parts = line.split(sep)
            if len(parts) < 3:
                raise ValueError(f"{path}:{lineno}: expected >=3 fields, got {len(parts)}")
            users.append(int(parts[0]))
            items.append(int(parts[1]))
            ratings.append(float(parts[2]))
            times.append(float(parts[3]) if len(parts) > 3 else 0.0)
    if not users:
        raise ValueError(f"{path}: no ratings found")
    return (
        np.array(users, dtype=np.int64),
        np.array(items, dtype=np.int64),
        np.array(ratings, dtype=np.float64),
        np.array(times, dtype=np.float64),
    )


def _densify(
    users: np.ndarray, items: np.ndarray, ratings: np.ndarray, times: np.ndarray
) -> LoadedRatings:
    """Re-index ids densely and build the matrix."""
    user_ids, user_idx = np.unique(users, return_inverse=True)
    item_ids, item_idx = np.unique(items, return_inverse=True)
    P, Q = len(user_ids), len(item_ids)
    values = np.zeros((P, Q), dtype=np.float64)
    mask = np.zeros((P, Q), dtype=bool)
    tstamps = np.zeros((P, Q), dtype=np.float64)
    values[user_idx, item_idx] = ratings
    mask[user_idx, item_idx] = True
    tstamps[user_idx, item_idx] = times
    return LoadedRatings(
        ratings=RatingMatrix(values, mask, rating_scale=(1.0, 5.0)),
        user_ids=user_ids,
        item_ids=item_ids,
        timestamps=tstamps if times.any() else None,
    )


def load_ml100k(path: str) -> LoadedRatings:
    """Load a MovieLens-100K ``u.data`` file (tab-separated)."""
    return _densify(*_parse_lines(path, "\t"))


def load_ml1m(path: str) -> LoadedRatings:
    """Load a MovieLens-1M ``ratings.dat`` file (``::``-separated)."""
    return _densify(*_parse_lines(path, "::"))


def load_ratings_file(path: str) -> LoadedRatings:
    """Load a ratings file, autodetecting the 100K vs 1M format."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        first = fh.readline()
    if "::" in first:
        return load_ml1m(path)
    if "\t" in first:
        return load_ml100k(path)
    raise ValueError(f"{path}: unrecognised MovieLens format (no tab or '::' separator)")


def find_local_movielens() -> str | None:
    """Probe well-known locations for a MovieLens ratings file.

    Returns the first existing path among ``u.data`` / ``ratings.dat``
    under :data:`SEARCH_PATHS`, or ``None`` when no local copy exists
    (the usual case in this offline environment).
    """
    for root in SEARCH_PATHS:
        for name in ("u.data", "ratings.dat"):
            candidate = os.path.join(root, name)
            if os.path.isfile(candidate):
                return candidate
    return None


def paper_subsample(
    loaded: LoadedRatings,
    *,
    n_users: int = 500,
    n_items: int = 1000,
    min_ratings: int = 40,
    seed: int | np.random.Generator | None = 0,
) -> RatingMatrix:
    """Reproduce the paper's preprocessing on a full MovieLens dump.

    Section V-A: "We randomly extracted 500 users from MovieLens, where
    each user rated at least 40 movies."  Items are restricted to the
    *n_items* most-rated movies first (MovieLens-100K has 1682 movies;
    the paper's Table I reports 1000), then users are filtered by the
    minimum-rating requirement *within those items* and sampled.

    Raises
    ------
    ValueError
        If fewer than *n_users* users satisfy the rating floor.
    """
    rng = as_generator(seed)
    rm = loaded.ratings
    top_items = np.argsort(-rm.item_counts(), kind="stable")[:n_items]
    rm = rm.subset_items(np.sort(top_items))
    eligible = np.nonzero(rm.user_counts() >= min_ratings)[0]
    if len(eligible) < n_users:
        raise ValueError(
            f"only {len(eligible)} users have >= {min_ratings} ratings; need {n_users}"
        )
    chosen = rng.choice(eligible, size=n_users, replace=False)
    return rm.subset_users(np.sort(chosen))
