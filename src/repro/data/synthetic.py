"""Synthetic MovieLens-like rating data.

The paper's evaluation (Section V-A) uses 500 users drawn from the
GroupLens MovieLens dataset, each having rated at least 40 of 1000
movies, with an average of 94.4 rated items per user and 9.44% density
on a 1..5 integer scale.  This environment has no network access, so
the benchmark harness substitutes a *calibrated generative model* that
reproduces the statistical structure every evaluated mechanism depends
on:

* **Latent taste structure** — users and items live in a low-rank
  latent space organised around ``n_genres`` soft item groups, so that
  like-minded users (user-based CF, clustering) and similar items
  (item-based CF, the GIS) genuinely exist and are discoverable.
* **Rating-style diversity** — each user has an individual bias
  (generosity) and rating variance (enthusiasm spread).  This is
  exactly the "diversity in user rating styles" that CFSF's smoothing
  strategy removes, so it must be present for smoothing to matter.
* **Item popularity skew** — item exposure follows a Zipf-like law and
  popular items receive systematically higher ratings, the property the
  paper cites when preferring PCC over pure cosine for the GIS.
* **MovieLens marginals** — user activity is lognormal with a hard
  40-rating floor, calibrated so that the generated matrix reproduces
  Table I: 500 users, 1000 items, ~94.4 ratings/user, ~9.44% density.

Absolute error levels differ from the authors' real-data numbers (the
noise floor here is a parameter, not history), but orderings between
methods and all trend shapes are preserved; EXPERIMENTS.md records
paper-vs-measured values side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.matrix import RatingMatrix
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["SyntheticConfig", "SyntheticDataset", "make_movielens_like", "make_timestamped"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the generative model; defaults reproduce Table I.

    Attributes
    ----------
    n_users, n_items:
        Matrix dimensions (paper: 500 x 1000).
    n_genres:
        Number of soft item groups; 18 mirrors MovieLens' genre count.
    latent_dim:
        Rank of the user/item preference factors.
    mean_ratings_per_user, min_ratings_per_user:
        Activity calibration (paper: mean 94.4, min 40).
    global_mean:
        Location of the rating distribution before clipping (MovieLens'
        empirical mean is ~3.53).
    user_bias_sd, item_bias_sd:
        Spread of generosity / quality offsets.
    style_scale_range:
        Per-user multiplicative spread of preference strength — the
        rating-style diversity smoothing targets.
    signal_sd:
        Standard deviation contributed by the latent preference term.
    noise_sd:
        Irreducible noise before integer rounding; sets the MAE floor.
    popularity_exponent:
        Zipf exponent of item exposure.
    popularity_quality_coupling:
        How strongly popular items are also better-liked.
    user_group_noise:
        Spread of users around their taste-group centre (smaller =
        tighter, more discoverable like-minded-user structure).
    item_genre_noise:
        Spread of items around their genre centre (smaller = stronger
        item–item similarity structure).
    n_user_groups:
        Number of planted user taste groups (``None`` = one group per
        three genres, floored at 4).
    """

    n_users: int = 500
    n_items: int = 1000
    n_genres: int = 18
    latent_dim: int = 8
    mean_ratings_per_user: float = 94.4
    min_ratings_per_user: int = 40
    global_mean: float = 3.55
    user_bias_sd: float = 0.42
    item_bias_sd: float = 0.38
    style_scale_range: tuple[float, float] = (0.6, 1.6)
    signal_sd: float = 0.55
    noise_sd: float = 0.80
    popularity_exponent: float = 0.9
    popularity_quality_coupling: float = 0.25
    user_group_noise: float = 0.40
    item_genre_noise: float = 0.60
    n_user_groups: int | None = None

    def __post_init__(self) -> None:
        check_positive_int(self.n_users, "n_users")
        check_positive_int(self.n_items, "n_items")
        check_positive_int(self.n_genres, "n_genres")
        check_positive_int(self.latent_dim, "latent_dim")
        check_positive_int(self.min_ratings_per_user, "min_ratings_per_user", minimum=1)
        if self.mean_ratings_per_user < self.min_ratings_per_user:
            raise ValueError("mean_ratings_per_user must be >= min_ratings_per_user")
        if self.mean_ratings_per_user > self.n_items:
            raise ValueError("mean_ratings_per_user cannot exceed n_items")
        lo, hi = self.style_scale_range
        if not 0 < lo <= hi:
            raise ValueError(f"style_scale_range must be 0 < lo <= hi, got {self.style_scale_range}")


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated dataset plus its ground-truth latent state.

    The ground truth (``true_scores``, ``user_group``) is never shown to
    the algorithms; tests use it to verify that the generator actually
    planted recoverable structure (e.g. clustering accuracy above
    chance) and the oracle predictor built from it lower-bounds MAE.
    """

    ratings: RatingMatrix
    true_scores: np.ndarray = field(repr=False)
    user_group: np.ndarray = field(repr=False)
    item_genre: np.ndarray = field(repr=False)
    timestamps: np.ndarray | None = field(repr=False, default=None)

    def oracle_mae(self) -> float:
        """MAE of the noise-free score against the observed ratings.

        No rating-only algorithm can beat this by more than luck; the
        evaluation suite uses it to sanity-check measured MAE levels.
        """
        mask = self.ratings.mask
        clipped = self.ratings.clip(self.true_scores)
        return float(np.abs(self.ratings.values - clipped)[mask].mean())


def _item_popularity(cfg: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like exposure distribution over items, shuffled so that
    popularity is not aligned with item index order."""
    ranks = np.arange(1, cfg.n_items + 1, dtype=np.float64)
    weights = ranks ** (-cfg.popularity_exponent)
    rng.shuffle(weights)
    return weights / weights.sum()


def _user_activity(cfg: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """Per-user rating counts: lognormal, floored, calibrated to mean.

    The lognormal is iteratively rescaled so that after flooring at
    ``min_ratings_per_user`` and capping at ``n_items`` the realised
    mean matches ``mean_ratings_per_user`` to within half a rating.
    """
    sigma = 0.55
    target = cfg.mean_ratings_per_user
    raw = rng.lognormal(mean=0.0, sigma=sigma, size=cfg.n_users)
    scale = target / raw.mean()
    for _ in range(32):
        counts = np.clip(np.round(raw * scale), cfg.min_ratings_per_user, cfg.n_items)
        err = counts.mean() - target
        if abs(err) < 0.5:
            break
        scale *= target / max(counts.mean(), 1.0)
    return counts.astype(np.intp)


def make_movielens_like(
    config: SyntheticConfig | None = None,
    *,
    seed: int | np.random.Generator | None = 0,
) -> SyntheticDataset:
    """Generate a MovieLens-shaped dataset.

    Parameters
    ----------
    config:
        Generator knobs; the default reproduces the paper's Table I.
    seed:
        Root seed or generator for full determinism.

    Returns
    -------
    SyntheticDataset
        The observed :class:`~repro.data.matrix.RatingMatrix` plus the
        hidden ground truth used only by tests and diagnostics.

    Examples
    --------
    >>> ds = make_movielens_like(seed=0)
    >>> ds.ratings.n_users, ds.ratings.n_items
    (500, 1000)
    >>> 0.085 < ds.ratings.density < 0.105
    True
    """
    cfg = config or SyntheticConfig()
    rng = as_generator(seed)

    # --- latent structure -------------------------------------------------
    item_genre = rng.integers(0, cfg.n_genres, size=cfg.n_items)
    genre_centers = rng.normal(0.0, 1.0, size=(cfg.n_genres, cfg.latent_dim))
    item_factors = genre_centers[item_genre] + cfg.item_genre_noise * rng.normal(
        0.0, 1.0, size=(cfg.n_items, cfg.latent_dim)
    )
    # Users belong to taste groups aligned with subsets of genres, so the
    # user-clustering stage of CFSF has something real to find.
    n_groups = (
        cfg.n_user_groups if cfg.n_user_groups is not None else max(4, cfg.n_genres // 3)
    )
    user_group = rng.integers(0, n_groups, size=cfg.n_users)
    group_centers = rng.normal(0.0, 1.0, size=(n_groups, cfg.latent_dim))
    user_factors = group_centers[user_group] + cfg.user_group_noise * rng.normal(
        0.0, 1.0, size=(cfg.n_users, cfg.latent_dim)
    )

    # --- biases and rating styles -----------------------------------------
    user_bias = rng.normal(0.0, cfg.user_bias_sd, size=cfg.n_users)
    popularity = _item_popularity(cfg, rng)
    pop_z = (popularity - popularity.mean()) / (popularity.std() + 1e-12)
    item_bias = (
        rng.normal(0.0, cfg.item_bias_sd, size=cfg.n_items)
        + cfg.popularity_quality_coupling * pop_z
    )
    lo, hi = cfg.style_scale_range
    style_scale = rng.uniform(lo, hi, size=cfg.n_users)

    # --- noise-free scores --------------------------------------------------
    interaction = user_factors @ item_factors.T
    interaction *= cfg.signal_sd / (interaction.std() + 1e-12)
    true_scores = (
        cfg.global_mean
        + user_bias[:, None]
        + item_bias[None, :]
        + style_scale[:, None] * interaction
    )

    # --- observation process ------------------------------------------------
    counts = _user_activity(cfg, rng)
    mask = np.zeros((cfg.n_users, cfg.n_items), dtype=bool)
    # Users preferentially watch popular items *and* items they like:
    # a soft-max blend of popularity and (noise-free) affinity.
    affinity = true_scores - true_scores.mean(axis=1, keepdims=True)
    for u in range(cfg.n_users):
        logits = np.log(popularity) + 0.35 * affinity[u] / (affinity[u].std() + 1e-12)
        p = np.exp(logits - logits.max())
        p /= p.sum()
        chosen = rng.choice(cfg.n_items, size=counts[u], replace=False, p=p)
        mask[u, chosen] = True

    # --- observed ratings -----------------------------------------------------
    noisy = true_scores + rng.normal(0.0, cfg.noise_sd, size=true_scores.shape)
    ratings_int = np.clip(np.round(noisy), 1, 5)
    values = np.where(mask, ratings_int, 0.0)
    ratings = RatingMatrix(values, mask, rating_scale=(1.0, 5.0))

    return SyntheticDataset(
        ratings=ratings,
        true_scores=true_scores,
        user_group=user_group,
        item_genre=item_genre,
    )


def make_timestamped(
    config: SyntheticConfig | None = None,
    *,
    seed: int | np.random.Generator | None = 0,
    drift_sd: float = 0.35,
) -> SyntheticDataset:
    """Generate a dataset whose ratings carry timestamps and drift.

    Supports the paper's future-work direction of exploiting "dates
    associated with the ratings": user tastes drift over a unit time
    horizon, so time-aware weighting (:mod:`repro.core.temporal`) has
    signal to exploit.  Timestamps are uniform in ``[0, 1]`` per rating;
    later ratings are drawn from a drifted preference state.

    Parameters
    ----------
    drift_sd:
        Standard deviation of the per-user preference drift applied at
        time 1.0 relative to time 0.0 (linearly interpolated).
    """
    cfg = config or SyntheticConfig()
    rng = as_generator(seed)
    base = make_movielens_like(cfg, seed=rng)

    mask = base.ratings.mask
    n_obs = int(mask.sum())
    times = np.zeros(mask.shape, dtype=np.float64)
    times[mask] = rng.uniform(0.0, 1.0, size=n_obs)

    drift = rng.normal(0.0, drift_sd, size=base.true_scores.shape)
    drifted_scores = base.true_scores + times * drift
    noisy = drifted_scores + rng.normal(0.0, cfg.noise_sd, size=drifted_scores.shape)
    values = np.where(mask, np.clip(np.round(noisy), 1, 5), 0.0)

    return SyntheticDataset(
        ratings=RatingMatrix(values, mask, rating_scale=(1.0, 5.0)),
        true_scores=drifted_scores,
        user_group=base.user_group,
        item_genre=base.item_genre,
        timestamps=times,
    )
